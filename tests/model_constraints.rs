//! Constraint-by-constraint tests of the scheduling model: each test
//! builds a minimal kernel where exactly one of the paper's constraints
//! (1)–(11) is binding, and checks the schedule respects it.

use eit::arch::{validate_structure, ArchSpec, Geometry};
use eit::core::{schedule, SchedulerOptions};
use eit::dsl::Ctx;
use eit::ir::Category;
use std::time::Duration;

fn opts() -> SchedulerOptions {
    SchedulerOptions {
        timeout: Some(Duration::from_secs(30)),
        ..Default::default()
    }
}

/// (1)/(4): a dependent chain is spaced by exactly the pipeline latency.
#[test]
fn precedence_spacing_is_pipeline_latency() {
    let ctx = Ctx::new("chain");
    let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
    let b = ctx.vector([0.0, 1.0, 0.0, 0.0]);
    let x = a.v_add(&b);
    let y = x.v_add(&b); // same config — only latency separates them
    let _ = y;
    let g = ctx.finish();
    let spec = ArchSpec::eit();
    let r = schedule(&g, &spec, &opts());
    let s = r.schedule.unwrap();
    let ops: Vec<_> = g.ids().filter(|&n| g.category(n).is_op()).collect();
    let gap = (s.start_of(ops[1]) - s.start_of(ops[0])).abs();
    assert_eq!(gap, spec.pipeline_depth());
}

/// (2): five independent same-config ops need two issue cycles.
#[test]
fn lane_capacity_forces_second_issue_cycle() {
    let ctx = Ctx::new("five");
    let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
    let b = ctx.vector([0.0, 1.0, 0.0, 0.0]);
    for _ in 0..5 {
        let _ = a.v_add(&b);
    }
    let g = ctx.finish();
    let spec = ArchSpec::eit();
    let r = schedule(&g, &spec, &opts());
    let s = r.schedule.unwrap();
    // 4 ops in one cycle + 1 in the next: makespan = latency + 1.
    assert_eq!(s.makespan, spec.pipeline_depth() + 1);
    assert!(validate_structure(&g, &spec, &s).is_empty());
}

/// (3): differently-configured independent ops cannot share a cycle even
/// with lanes to spare.
#[test]
fn config_uniqueness_serialises_mixed_ops() {
    let ctx = Ctx::new("mixed");
    let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
    let b = ctx.vector([0.0, 1.0, 0.0, 0.0]);
    let _ = a.v_add(&b);
    let _ = a.v_mul(&b);
    let g = ctx.finish();
    let spec = ArchSpec::eit();
    let r = schedule(&g, &spec, &opts());
    let s = r.schedule.unwrap();
    let ops: Vec<_> = g
        .ids()
        .filter(|&n| g.category(n) == Category::VectorOp)
        .collect();
    assert_ne!(s.start_of(ops[0]), s.start_of(ops[1]));
}

/// Matrix ops occupy all lanes: a matrix op and a vector op never share
/// a cycle.
#[test]
fn matrix_op_excludes_vector_coissue() {
    let ctx = Ctx::new("mx");
    let m = ctx.matrix([[1.0; 4]; 4]);
    let _ = m.m_squsum();
    let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
    let _ = a.v_add(&a.v_add(&a)); // some vector work
    let g = ctx.finish();
    let spec = ArchSpec::eit();
    let r = schedule(&g, &spec, &opts());
    let s = r.schedule.unwrap();
    let m_op = g
        .ids()
        .find(|&n| g.category(n) == Category::MatrixOp)
        .unwrap();
    for n in g.ids() {
        if g.category(n) == Category::VectorOp {
            assert_ne!(s.start_of(n), s.start_of(m_op));
        }
    }
}

/// (7): the two inputs of one op never land in the same page on
/// different lines.
#[test]
fn same_op_inputs_respect_page_line_rule() {
    let ctx = Ctx::new("pl");
    let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
    let b = ctx.vector([0.0, 1.0, 0.0, 0.0]);
    let _ = a.v_add(&b);
    let g = ctx.finish();
    // Tiny memory: 4 banks, one page, 2 lines — the only legal layouts
    // put a and b on the same line or in different... same page always,
    // so same line is forced.
    let mut spec = ArchSpec::eit();
    spec.n_banks = 4;
    spec.page_size = 4;
    spec.slots_per_bank = 2;
    spec.slot_cap = None;
    // Shrink the crossbar with the geometry: validate() rejects port
    // budgets no 4-bank memory could serve.
    spec.max_vector_reads = 4;
    spec.max_vector_writes = 2;
    let r = schedule(&g, &spec, &opts());
    let s = r.schedule.unwrap();
    let geo = Geometry::of(&spec);
    let ins = g.inputs();
    let sa = s.slot_of(ins[0]).unwrap();
    let sb = s.slot_of(ins[1]).unwrap();
    assert_eq!(geo.page(sa), geo.page(sb)); // single page
    assert_eq!(geo.line(sa), geo.line(sb)); // so lines must match
    assert_ne!(geo.bank(sa), geo.bank(sb)); // and banks must differ
    assert!(validate_structure(&g, &spec, &s).is_empty());
}

/// (8): two same-config ops that co-issue have their four inputs spread
/// over distinct banks with one line per page.
#[test]
fn coissued_ops_have_compatible_inputs() {
    let ctx = Ctx::new("co");
    let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
    let b = ctx.vector([0.0, 1.0, 0.0, 0.0]);
    let c = ctx.vector([0.0, 0.0, 1.0, 0.0]);
    let d = ctx.vector([0.0, 0.0, 0.0, 1.0]);
    let _ = a.v_add(&b);
    let _ = c.v_add(&d);
    let g = ctx.finish();
    let spec = ArchSpec::eit();
    let r = schedule(&g, &spec, &opts());
    let s = r.schedule.unwrap();
    let ops: Vec<_> = g
        .ids()
        .filter(|&n| g.category(n) == Category::VectorOp)
        .collect();
    // Optimal schedule co-issues them (same config, enough lanes).
    assert_eq!(s.start_of(ops[0]), s.start_of(ops[1]));
    // The simulator re-checks the bank/page/line rules on the union of
    // their reads; zero violations proves (8) held.
    assert!(validate_structure(&g, &spec, &s).is_empty());
}

/// (10)/(11): with exactly enough slots, the allocator must reuse a dead
/// slot, and the reuse must not overlap lifetimes.
#[test]
fn slot_reuse_under_pressure() {
    let ctx = Ctx::new("reuse");
    let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
    let b = ctx.vector([0.0, 1.0, 0.0, 0.0]);
    let x = a.v_add(&b); // consumes a, b
    let y = x.v_mul(&b); // consumes x, b
    let _ = y;
    let g = ctx.finish();
    // 4 vector data (a, b, x, y) in only 2 slots: a dies at the add's
    // issue, x reuses its slot at the pipeline boundary (read-before-
    // write makes the touching lifetimes hazard-free), and y reuses a
    // dead slot again.
    let spec = ArchSpec::eit().with_slots(2);
    let r = schedule(&g, &spec, &opts());
    let s = r.schedule.expect("2 slots suffice with reuse");
    assert!(s.slots_used(&g) <= 2);
    assert!(validate_structure(&g, &spec, &s).is_empty());
    // One slot cannot hold the two simultaneously-live inputs.
    let spec1 = ArchSpec::eit().with_slots(1);
    let r1 = schedule(&g, &spec1, &opts());
    assert!(r1.schedule.is_none());
}

/// (5): the objective is the latest completion, not the latest start.
#[test]
fn makespan_includes_trailing_latency() {
    let ctx = Ctx::new("tail");
    let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
    let d = a.v_squsum(); // 7 cc
    let _ = d.sqrt(); // + 8 cc accelerator latency
    let g = ctx.finish();
    let spec = ArchSpec::eit();
    let r = schedule(&g, &spec, &opts());
    assert_eq!(r.makespan, Some(7 + 8));
}

/// Accelerator occupancy: two independent iterative ops are separated by
/// the occupancy (2 cc), not the latency.
#[test]
fn accelerator_occupancy_spacing() {
    let ctx = Ctx::new("acc");
    let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
    let b = ctx.vector([0.0, 1.0, 0.0, 0.0]);
    let d1 = a.v_squsum();
    let d2 = b.v_squsum();
    let _ = d1.sqrt();
    let _ = d2.sqrt();
    let g = ctx.finish();
    let spec = ArchSpec::eit();
    let r = schedule(&g, &spec, &opts());
    let s = r.schedule.unwrap();
    let accs: Vec<_> = g
        .ids()
        .filter(|&n| g.category(n) == Category::ScalarOp)
        .collect();
    let gap = (s.start_of(accs[0]) - s.start_of(accs[1])).abs();
    assert!(gap >= spec.duration(&g.node(accs[0]).kind));
    // And the two squsums co-issue, so the accelerator spacing is the
    // only reason the sqrt starts differ.
    assert!(validate_structure(&g, &spec, &s).is_empty());
}

/// Lexicographic slot minimization: same optimal makespan, provably
/// minimal slot footprint.
#[test]
fn minimize_slots_is_lexicographic() {
    let kernel = eit::apps::by_name("qrd").unwrap();
    let mut g = kernel.graph.clone();
    eit::ir::merge_pipeline_ops(&mut g);
    let spec = ArchSpec::eit();
    let base = schedule(&g, &spec, &opts());
    let min_slots = schedule(
        &g,
        &spec,
        &SchedulerOptions {
            minimize_slots: true,
            ..opts()
        },
    );
    let s0 = base.schedule.unwrap();
    let s1 = min_slots.schedule.unwrap();
    // Makespan unchanged, slot footprint no worse — and the QRD floor
    // from Table 1 says exactly 8 slots are needed.
    assert_eq!(s1.makespan, s0.makespan);
    assert!(s1.slots_used(&g) <= s0.slots_used(&g));
    assert_eq!(s1.slots_used(&g), 8);
    assert!(validate_structure(&g, &spec, &s1).is_empty());
}
