//! Failure injection: randomly corrupt valid schedules and check the
//! validator/simulator catches the corruption — or, when a mutation
//! happens to produce another valid schedule, that the functional replay
//! still yields correct outputs. Either way, silent acceptance of a wrong
//! answer is impossible.

use eit::arch::{simulate, validate_structure, ArchSpec, Schedule};
use eit::core::{schedule, SchedulerOptions};
use eit::ir::Category;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn scheduled(name: &str) -> (eit::ir::Graph, ArchSpec, Schedule, eit::apps::Kernel) {
    let kernel = eit::apps::by_name(name).unwrap();
    let mut g = kernel.graph.clone();
    eit::ir::merge_pipeline_ops(&mut g);
    let spec = ArchSpec::eit();
    let r = schedule(
        &g,
        &spec,
        &SchedulerOptions {
            timeout: Some(Duration::from_secs(60)),
            ..Default::default()
        },
    );
    (g, spec, r.schedule.unwrap(), kernel)
}

/// Apply one random mutation; returns a human-readable tag.
fn mutate(rng: &mut StdRng, g: &eit::ir::Graph, spec: &ArchSpec, s: &mut Schedule) -> &'static str {
    loop {
        match rng.gen_range(0..4) {
            0 => {
                // Shift an op's start without moving its output datum.
                let ops: Vec<_> = g.ids().filter(|&n| g.category(n).is_op()).collect();
                let op = ops[rng.gen_range(0..ops.len())];
                let delta = if rng.gen_bool(0.5) { 1 } else { -1 };
                let new = s.start[op.idx()] + delta;
                if new < 0 {
                    continue;
                }
                s.start[op.idx()] = new;
                return "op start shift";
            }
            1 => {
                // Move a vector datum into a random slot.
                let vd: Vec<_> = g
                    .ids()
                    .filter(|&n| g.category(n) == Category::VectorData)
                    .collect();
                let d = vd[rng.gen_range(0..vd.len())];
                let old = s.slot[d.idx()];
                let new = rng.gen_range(0..spec.n_slots());
                if old == Some(new) {
                    continue;
                }
                s.slot[d.idx()] = Some(new);
                return "slot move";
            }
            2 => {
                // Drop a slot assignment entirely.
                let vd: Vec<_> = g
                    .ids()
                    .filter(|&n| g.category(n) == Category::VectorData)
                    .collect();
                let d = vd[rng.gen_range(0..vd.len())];
                if s.slot[d.idx()].is_none() {
                    continue;
                }
                s.slot[d.idx()] = None;
                return "slot drop";
            }
            _ => {
                // Desynchronise a data node from its producer.
                let datas: Vec<_> = g
                    .ids()
                    .filter(|&n| g.category(n).is_data() && g.producer(n).is_some())
                    .collect();
                let d = datas[rng.gen_range(0..datas.len())];
                s.start[d.idx()] += 1;
                return "data start skew";
            }
        }
    }
}

#[test]
fn corrupted_schedules_never_pass_silently() {
    let (g, spec, base, kernel) = scheduled("matmul");
    assert!(validate_structure(&g, &spec, &base).is_empty());
    let mut rng = StdRng::seed_from_u64(1234);
    let mut caught = 0;
    let mut survived = 0;
    for _ in 0..200 {
        let mut s = base.clone();
        let _tag = mutate(&mut rng, &g, &spec, &mut s);
        s.compute_makespan(&g, &spec.latency_of(&g));
        let report = simulate(&g, &spec, &s, &kernel.inputs);
        if report.ok() {
            // The mutation produced another valid schedule — then the
            // outputs must still be exactly right.
            survived += 1;
            for (node, expect) in &kernel.expected {
                assert!(
                    report.values[node].approx_eq(expect, 1e-9),
                    "valid-looking mutant computed a wrong value"
                );
            }
        } else {
            caught += 1;
        }
    }
    // The vast majority of random corruptions must be caught.
    assert!(caught > 150, "caught {caught}, survived {survived}");
}

#[test]
fn specific_corruptions_produce_specific_violations() {
    use eit::arch::Violation;
    let (g, spec, base, _) = scheduled("matmul");

    // Data start skew → DataStart (and usually Precedence).
    let datas: Vec<_> = g
        .ids()
        .filter(|&n| g.category(n).is_data() && g.producer(n).is_some())
        .collect();
    let mut s = base.clone();
    s.start[datas[0].idx()] += 3;
    let v = validate_structure(&g, &spec, &s);
    assert!(
        v.iter().any(|x| matches!(x, Violation::DataStart { .. })),
        "{v:?}"
    );

    // Slot drop → MissingSlot.
    let vd: Vec<_> = g
        .ids()
        .filter(|&n| g.category(n) == Category::VectorData)
        .collect();
    let mut s = base.clone();
    s.slot[vd[0].idx()] = None;
    let v = validate_structure(&g, &spec, &s);
    assert!(
        v.iter().any(|x| matches!(x, Violation::MissingSlot { .. })),
        "{v:?}"
    );

    // Out-of-range slot → SlotOutOfRange.
    let mut s = base.clone();
    s.slot[vd[0].idx()] = Some(spec.n_slots() + 7);
    let v = validate_structure(&g, &spec, &s);
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::SlotOutOfRange { .. })),
        "{v:?}"
    );
}

#[test]
fn every_kernel_round_trips_through_persistence() {
    for name in ["matmul", "fir", "arf"] {
        let (g, spec, s, kernel) = scheduled(name);
        let txt = eit::arch::schedule_to_text(&s);
        let back = eit::arch::schedule_from_text(&txt).unwrap();
        assert_eq!(back, s, "{name}");
        let report = simulate(&g, &spec, &back, &kernel.inputs);
        assert!(report.ok(), "{name}: {:?}", report.violations);
    }
}
