//! Golden tests for the IR shapes the paper draws: fig. 3 (MATMUL),
//! fig. 4/5 (matrix op vs vector expansion), fig. 6 (merging), and the
//! XML interchange round-trip for every kernel.

use eit::dsl::Ctx;
use eit::ir::{
    from_xml, merge_pipeline_ops, to_xml, Category, CoreOp, DataKind, Opcode, PostOp, PreOp,
};

#[test]
fn fig3_matmul_ir_census() {
    let k = eit::apps::by_name("matmul").unwrap();
    let g = &k.graph;
    assert_eq!(g.len(), 44);
    assert_eq!(g.edge_count(), 68);
    assert_eq!(g.count(Category::VectorOp), 16);
    assert_eq!(g.count(Category::Merge), 4);
    assert_eq!(g.count(Category::Index), 0);
    assert_eq!(g.count(Category::ScalarData), 16);
    assert_eq!(g.count(Category::VectorData), 8);
    // Every v_dotP consumes exactly two vectors (column access is free in
    // the paged memory — no transpose nodes exist).
    for n in g.ids() {
        if g.category(n) == Category::VectorOp {
            assert_eq!(g.preds(n).len(), 2);
        }
    }
}

#[test]
fn fig4_fig5_matrix_vs_vector_expansion() {
    // Matrix form: one matrix_op node, no merges.
    let ctx = Ctx::new("m");
    let a = ctx.matrix([[2.0; 4]; 4]);
    let v = a.m_squsum();
    assert_eq!(v.value()[0].re, 16.0);
    let gm = ctx.finish();
    assert_eq!(gm.count(Category::MatrixOp), 1);
    assert_eq!(gm.count(Category::Merge), 0);

    // Vector form: four v_squsum + a merge node.
    let ctx = Ctx::new("v");
    let rows: Vec<_> = (0..4).map(|_| ctx.vector([2.0; 4])).collect();
    let sums: Vec<_> = rows.iter().map(|r| r.v_squsum()).collect();
    let merged = ctx.merge([&sums[0], &sums[1], &sums[2], &sums[3]]);
    assert_eq!(merged.value()[0].re, 16.0);
    let gv = ctx.finish();
    assert_eq!(gv.count(Category::VectorOp), 4);
    assert_eq!(gv.count(Category::Merge), 1);

    // Same semantics, fewer nodes for the matrix version (fig. 4 vs 5).
    assert!(gm.len() < gv.len());
}

#[test]
fn fig6_both_merge_patterns() {
    // Left: pre-processing into a core op.
    let ctx = Ctx::new("left");
    let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
    let b = ctx.vector([1.0, 1.0, 1.0, 1.0]);
    let ah = a.hermitian();
    let _ = ah.v_mul(&b);
    let mut g = ctx.finish();
    let stats = merge_pipeline_ops(&mut g);
    assert_eq!(stats.pre_merges, 1);
    let folded: Vec<_> = g
        .ids()
        .filter_map(|n| g.opcode(n))
        .filter(|o| {
            matches!(
                o,
                Opcode::Vector {
                    pre: Some(_),
                    core: CoreOp::Mul,
                    ..
                }
            )
        })
        .collect();
    assert_eq!(folded.len(), 1);

    // Right: post-processing out of a core op.
    let ctx = Ctx::new("right");
    let a = ctx.vector([1.0, 4.0, 2.0, 3.0]);
    let b = ctx.vector([1.0, 1.0, 1.0, 1.0]);
    let m = a.v_mul(&b);
    let _ = m.sort();
    let mut g = ctx.finish();
    let stats = merge_pipeline_ops(&mut g);
    assert_eq!(stats.post_merges, 1);
    let folded: Vec<_> = g
        .ids()
        .filter_map(|n| g.opcode(n))
        .filter(|o| {
            matches!(
                o,
                Opcode::Vector {
                    core: CoreOp::Mul,
                    post: Some(PostOp::Sort),
                    ..
                }
            )
        })
        .collect();
    assert_eq!(folded.len(), 1);
}

#[test]
fn merge_pass_preserves_semantics_through_simulation() {
    // Schedule + simulate a chain before and after merging; the final
    // value must be identical.
    use eit::arch::{simulate, ArchSpec};
    use eit::core::{schedule, SchedulerOptions};
    use eit::ir::sem::Value;
    use std::collections::HashMap;

    let build = || {
        let ctx = Ctx::new("chain");
        let a = ctx.vector([1.0, -2.0, 3.0, -4.0]);
        let b = ctx.vector([2.0, 2.0, 2.0, 2.0]);
        let h = a.hermitian();
        let m = h.v_mul(&b);
        let s = m.sort();
        (ctx.finish(), a, b, s)
    };

    let mut results = Vec::new();
    for merged in [false, true] {
        let (mut g, a, b, s) = build();
        if merged {
            merge_pipeline_ops(&mut g);
        }
        let spec = ArchSpec::eit();
        let r = schedule(&g, &spec, &SchedulerOptions::default());
        let sched = r.schedule.unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(a.node(), Value::V(a.value()));
        inputs.insert(b.node(), Value::V(b.value()));
        let report = simulate(&g, &spec, &sched, &inputs);
        assert!(report.ok(), "merged={merged}: {:?}", report.violations);
        let out = g.outputs()[0];
        results.push(report.values[&out]);
        // The DSL's eager value agrees too.
        assert!(report.values[&out].approx_eq(&Value::V(s.value()), 1e-9));
    }
    assert!(results[0].approx_eq(&results[1], 1e-12));
}

#[test]
fn xml_roundtrip_every_kernel() {
    for name in ["qrd", "arf", "matmul"] {
        let k = eit::apps::by_name(name).unwrap();
        let xml = to_xml(&k.graph);
        let g2 = from_xml(&xml).unwrap();
        assert_eq!(g2.len(), k.graph.len(), "{name}");
        assert_eq!(g2.edge_count(), k.graph.edge_count(), "{name}");
        for id in k.graph.ids() {
            assert_eq!(g2.node(id).kind, k.graph.node(id).kind, "{name} {id:?}");
            assert_eq!(g2.preds(id), k.graph.preds(id), "{name} {id:?}");
        }
        // Round-tripping twice is the identity on the text.
        assert_eq!(xml, to_xml(&g2), "{name}");
    }
}

#[test]
fn merged_graphs_survive_xml() {
    let ctx = Ctx::new("m");
    let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
    let b = ctx.vector([1.0, 1.0, 1.0, 1.0]);
    let h = a.hermitian();
    let m = h.v_mul(&b);
    let _ = m.sort();
    let mut g = ctx.finish();
    merge_pipeline_ops(&mut g);
    let g2 = from_xml(&to_xml(&g)).unwrap();
    // The merged opcode (pre+core+post in one node) round-trips intact.
    let ops: Vec<_> = g2.ids().filter_map(|n| g2.opcode(n)).collect();
    assert!(ops.iter().any(|o| matches!(
        o,
        Opcode::Vector {
            pre: Some((PreOp::Hermitian, 0)),
            core: CoreOp::Mul,
            post: Some(PostOp::Sort)
        }
    )));
}

#[test]
fn dsl_matrix_expansion_has_no_matrix_data() {
    // §3.2.1: matrices exist only as operations, never as data nodes.
    let ctx = Ctx::new("m");
    let a = ctx.matrix([[1.0; 4]; 4]);
    let b = ctx.matrix([[2.0; 4]; 4]);
    let _ = a.m_mul(&b);
    let g = ctx.finish();
    for n in g.ids() {
        assert!(
            matches!(
                g.category(n),
                Category::VectorData | Category::ScalarData | Category::MatrixOp
            ) || g.category(n).is_op(),
            "unexpected node category {:?}",
            g.category(n)
        );
    }
    assert_eq!(g.count(Category::MatrixOp), 1);
    assert_eq!(g.count(Category::VectorData), 12); // 8 in + 4 out
    assert_eq!(
        g.node(eit::ir::NodeId(0)).kind,
        eit::ir::NodeKind::Data(DataKind::Vector)
    );
}

#[test]
fn matrix_dsl_evaluation_matches_canonical_semantics() {
    use eit::ir::sem::{apply, Value};
    use eit::ir::{CoreOp, Opcode};
    let ctx = Ctx::new("m");
    let a = ctx.matrix([
        [1.0, 2.0, 0.5, -1.0],
        [0.0, 1.0, 2.0, 0.25],
        [3.0, -2.0, 1.0, 0.0],
        [0.5, 0.5, -0.5, 1.0],
    ]);
    let b = ctx.matrix([
        [2.0, 0.0, 1.0, 0.0],
        [1.0, 1.0, 0.0, -1.0],
        [0.0, 2.0, 1.0, 0.5],
        [-1.0, 0.0, 0.0, 2.0],
    ]);
    for (dsl_rows, op, arity) in [
        (a.m_mul(&b).values(), Opcode::matrix(CoreOp::Mul), 8usize),
        (a.m_add(&b).values(), Opcode::matrix(CoreOp::Add), 8),
        (a.m_sub(&b).values(), Opcode::matrix(CoreOp::Sub), 8),
    ] {
        let mut inputs: Vec<Value> = a.rows().iter().map(|r| Value::V(r.value())).collect();
        inputs.extend(b.rows().iter().map(|r| Value::V(r.value())));
        inputs.truncate(arity);
        let canon = apply(&op, &inputs).unwrap();
        for (i, out) in canon.iter().enumerate() {
            assert!(
                out.approx_eq(&Value::V(dsl_rows[i]), 1e-9),
                "{op:?} row {i}"
            );
        }
    }
    // m_squsum and m_scale (different arities).
    let sq = a.m_squsum();
    let canon = apply(
        &Opcode::matrix(CoreOp::SquSum),
        &a.rows()
            .iter()
            .map(|r| Value::V(r.value()))
            .collect::<Vec<_>>(),
    )
    .unwrap();
    assert!(canon[0].approx_eq(&Value::V(sq.value()), 1e-9));
    let s = ctx.scalar(3.0);
    let scaled = a.m_scale(&s);
    let mut inputs: Vec<Value> = a.rows().iter().map(|r| Value::V(r.value())).collect();
    inputs.push(Value::S(s.value()));
    let canon = apply(&Opcode::matrix(CoreOp::Scale), &inputs).unwrap();
    for (i, out) in canon.iter().enumerate() {
        assert!(
            out.approx_eq(&Value::V(scaled.values()[i]), 1e-9),
            "scale row {i}"
        );
    }
}

#[test]
fn renderers_handle_real_kernels() {
    use eit::core::{schedule, SchedulerOptions};
    let kernel = eit::apps::by_name("matmul").unwrap();
    let mut g = kernel.graph.clone();
    merge_pipeline_ops(&mut g);
    let spec = eit::arch::ArchSpec::eit();
    let s = schedule(&g, &spec, &SchedulerOptions::default())
        .schedule
        .unwrap();
    let gantt = eit::arch::render_gantt(&g, &spec, &s);
    assert_eq!(gantt.lines().count(), 1 + 4 + 2);
    assert!(gantt
        .lines()
        .any(|l| l.starts_with("lane0") && l.contains("|A")));
    let vcd = eit::arch::to_vcd(&g, &spec, &s);
    assert!(vcd.contains("$enddefinitions $end"));
    let dot = eit::ir::to_dot(&g);
    assert_eq!(dot.matches(" -> ").count(), g.edge_count());
    let listing = eit::core::generate(&g, &spec, &s).listing;
    assert!(listing.contains("memory map"));
}
