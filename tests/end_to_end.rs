//! End-to-end integration: every kernel goes DSL → IR → merge pass →
//! CP schedule (with memory allocation) → cycle-accurate simulation with
//! functional output verification.

use eit::arch::{simulate, validate_structure, ArchSpec};
use eit::core::{schedule, SchedulerOptions};
use eit::cp::SearchStatus;
use std::time::Duration;

fn opts(secs: u64) -> SchedulerOptions {
    SchedulerOptions {
        timeout: Some(Duration::from_secs(secs)),
        ..Default::default()
    }
}

fn run_kernel(name: &str) {
    let kernel = eit::apps::by_name(name).unwrap();
    let mut graph = kernel.graph.clone();
    graph.validate().unwrap();
    eit::ir::merge_pipeline_ops(&mut graph);
    graph.validate().unwrap();

    let spec = ArchSpec::eit();
    let result = schedule(&graph, &spec, &opts(120));
    assert_eq!(
        result.status,
        SearchStatus::Optimal,
        "{name} must solve to optimality"
    );
    let sched = result.schedule.unwrap();

    // Structural validation.
    let violations = validate_structure(&graph, &spec, &sched);
    assert!(violations.is_empty(), "{name}: {violations:?}");

    // Functional replay: every expected output must match.
    let report = simulate(&graph, &spec, &sched, &kernel.inputs);
    assert!(report.ok(), "{name}: {:?}", report.violations);
    for (node, expect) in &kernel.expected {
        assert!(
            report.values[node].approx_eq(expect, 1e-9),
            "{name}: output {node:?} mismatch: {:?} vs {expect:?}",
            report.values[node]
        );
    }
}

#[test]
fn qrd_end_to_end() {
    run_kernel("qrd");
}

#[test]
fn arf_end_to_end() {
    run_kernel("arf");
}

#[test]
fn matmul_end_to_end() {
    run_kernel("matmul");
}

#[test]
fn fir_end_to_end() {
    run_kernel("fir");
}

#[test]
fn detector_end_to_end() {
    run_kernel("detector");
}

#[test]
fn blockmm_end_to_end() {
    run_kernel("blockmm");
}

#[test]
fn makespan_equals_critical_path_when_memory_suffices() {
    // The paper's central Table 1 observation.
    let kernel = eit::apps::by_name("qrd").unwrap();
    let mut graph = kernel.graph.clone();
    eit::ir::merge_pipeline_ops(&mut graph);
    let lm = eit::ir::LatencyModel::default();
    let cp = graph.critical_path(&lm.of(&graph));
    for slots in [64u32, 16, 8] {
        let spec = ArchSpec::eit().with_slots(slots);
        let r = schedule(&graph, &spec, &opts(120));
        assert_eq!(r.makespan, Some(cp), "slots={slots}");
    }
}

#[test]
fn below_live_set_floor_is_infeasible() {
    let kernel = eit::apps::by_name("qrd").unwrap();
    let mut graph = kernel.graph.clone();
    eit::ir::merge_pipeline_ops(&mut graph);
    // 8 inputs alive at cycle 0 → 7 slots can never work.
    let spec = ArchSpec::eit().with_slots(7);
    let r = schedule(&graph, &spec, &opts(60));
    assert_eq!(r.status, SearchStatus::Infeasible);
}

#[test]
fn memoryless_schedule_never_longer() {
    for name in ["qrd", "arf", "matmul"] {
        let kernel = eit::apps::by_name(name).unwrap();
        let mut graph = kernel.graph.clone();
        eit::ir::merge_pipeline_ops(&mut graph);
        let spec = ArchSpec::eit();
        let with_mem = schedule(&graph, &spec, &opts(120)).makespan.unwrap();
        let no_mem = schedule(
            &graph,
            &spec,
            &SchedulerOptions {
                memory: false,
                ..opts(120)
            },
        )
        .makespan
        .unwrap();
        assert!(no_mem <= with_mem, "{name}: {no_mem} > {with_mem}");
    }
}

#[test]
fn schedule_respects_every_documented_resource() {
    // A kernel that simultaneously exercises all three units.
    let ctx = eit::dsl::Ctx::new("mixed");
    let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
    let b = ctx.vector([4.0, 3.0, 2.0, 1.0]);
    let d1 = a.v_dotp(&b);
    let d2 = b.v_dotp(&a);
    let s1 = d1.sqrt();
    let s2 = d2.rsqrt();
    let m = ctx.merge([&s1, &s2, &d1, &d2]);
    let _ = m.v_add(&a);
    let mut graph = ctx.finish();
    eit::ir::merge_pipeline_ops(&mut graph);
    let spec = ArchSpec::eit();
    let r = schedule(&graph, &spec, &opts(60));
    let sched = r.schedule.expect("mixed kernel schedules");
    assert!(validate_structure(&graph, &spec, &sched).is_empty());
}

#[test]
fn compile_facade_handles_every_kernel() {
    use eit::core::pipeline::{compile, CompileOptions};
    for name in ["qrd", "arf", "matmul", "fir", "detector", "blockmm"] {
        let kernel = eit::apps::by_name(name).unwrap();
        let out = compile(
            kernel.graph.clone(),
            &ArchSpec::eit(),
            &CompileOptions {
                scheduler: SchedulerOptions {
                    timeout: Some(Duration::from_secs(120)),
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(out.status, SearchStatus::Optimal, "{name}");
        // The compiled schedule still replays functionally.
        let report =
            eit::arch::simulate(&out.graph, &ArchSpec::eit(), &out.schedule, &kernel.inputs);
        assert!(report.ok(), "{name}: {:?}", report.violations);
        assert!(out.program.n_instructions > 0, "{name}");
    }
}

#[test]
fn kernels_retarget_to_the_wide_machine() {
    // "We plan to continue this work by targeting other vector
    // architectures" — the machine model is a parameter, so retargeting
    // is a one-liner. On the 8-lane machine MATMUL's 16 dot products
    // issue in 2 cycles instead of 4.
    let spec = ArchSpec::wide();
    spec.validate().unwrap();
    for name in ["matmul", "arf", "qrd"] {
        let kernel = eit::apps::by_name(name).unwrap();
        let mut g = kernel.graph.clone();
        eit::ir::merge_pipeline_ops(&mut g);
        let r = schedule(&g, &spec, &opts(120));
        let sched = r
            .schedule
            .unwrap_or_else(|| panic!("{name} on wide machine"));
        let report = eit::arch::simulate(&g, &spec, &sched, &kernel.inputs);
        assert!(report.ok(), "{name}: {:?}", report.violations);
    }
    // MATMUL issue: 16 dotp / 8 lanes = 2 cycles + pipeline + merges.
    let kernel = eit::apps::by_name("matmul").unwrap();
    let mut g = kernel.graph.clone();
    eit::ir::merge_pipeline_ops(&mut g);
    let wide = schedule(&g, &spec, &opts(60)).makespan.unwrap();
    let narrow = schedule(&g, &ArchSpec::eit(), &opts(60)).makespan.unwrap();
    assert!(wide <= narrow, "wide {wide} vs narrow {narrow}");
}
