//! Property-based integration tests: randomly generated kernels must
//! schedule, validate and replay correctly; solver invariants must hold
//! on arbitrary inputs.

use eit::apps::synth::{build, SynthParams};
use eit::arch::{simulate, validate_structure, ArchSpec};
use eit::core::{schedule, SchedulerOptions};
use eit::cp::{Domain, SearchStatus};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any synthetic kernel the generator emits schedules optimally and
    /// survives the full simulator, with all expected outputs matching.
    #[test]
    fn synthetic_kernels_schedule_and_replay(seed in 0u64..500, layers in 1usize..4, width in 2usize..6) {
        let k = build(SynthParams { seed, layers, width, scalar_fraction: 0.2 });
        let mut g = k.graph.clone();
        prop_assert!(g.validate().is_ok());
        eit::ir::merge_pipeline_ops(&mut g);
        let spec = ArchSpec::eit();
        let r = schedule(&g, &spec, &SchedulerOptions {
            timeout: Some(Duration::from_secs(30)),
            ..Default::default()
        });
        prop_assert_eq!(r.status, SearchStatus::Optimal);
        let sched = r.schedule.unwrap();
        prop_assert!(validate_structure(&g, &spec, &sched).is_empty());
        let report = simulate(&g, &spec, &sched, &k.inputs);
        prop_assert!(report.ok(), "{:?}", report.violations);
        for (node, expect) in &k.expected {
            prop_assert!(report.values[node].approx_eq(expect, 1e-6));
        }
    }

    /// The makespan is bounded below by the critical path and above by
    /// the serial horizon.
    #[test]
    fn makespan_bounds(seed in 0u64..500) {
        let k = build(SynthParams { seed, layers: 3, width: 4, scalar_fraction: 0.1 });
        let mut g = k.graph.clone();
        eit::ir::merge_pipeline_ops(&mut g);
        let spec = ArchSpec::eit();
        let lm = eit::ir::LatencyModel::default();
        let cp = g.critical_path(&lm.of(&g));
        let r = schedule(&g, &spec, &SchedulerOptions {
            timeout: Some(Duration::from_secs(30)),
            ..Default::default()
        });
        let m = r.makespan.unwrap();
        prop_assert!(m >= cp, "makespan {m} < critical path {cp}");
        prop_assert!(m <= eit::core::model::serial_horizon(&g, &spec) + 7);
    }

    /// Adding memory never shortens the schedule; removing the memory
    /// model never lengthens it.
    #[test]
    fn memory_constraints_are_monotone(seed in 0u64..200) {
        let k = build(SynthParams { seed, layers: 2, width: 4, scalar_fraction: 0.1 });
        let mut g = k.graph.clone();
        eit::ir::merge_pipeline_ops(&mut g);
        let spec = ArchSpec::eit();
        let base = SchedulerOptions { timeout: Some(Duration::from_secs(30)), ..Default::default() };
        let with_mem = schedule(&g, &spec, &base).makespan.unwrap();
        let no_mem = schedule(&g, &spec, &SchedulerOptions { memory: false, ..base }).makespan.unwrap();
        prop_assert!(no_mem <= with_mem);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Domain operations agree with a reference set model.
    #[test]
    fn domain_matches_btreeset(values in prop::collection::btree_set(-50i32..50, 0..40),
                               below in -60i32..60, above in -60i32..60,
                               removed in prop::collection::vec(-50i32..50, 0..10)) {
        use std::collections::BTreeSet;
        let mut d = Domain::from_values(values.iter().copied());
        let mut set: BTreeSet<i32> = values;
        d.remove_below(below);
        set.retain(|&v| v >= below);
        d.remove_above(above);
        set.retain(|&v| v <= above);
        for v in removed {
            d.remove_value(v);
            set.remove(&v);
        }
        prop_assert_eq!(d.size() as usize, set.len());
        for v in -60..60 {
            prop_assert_eq!(d.contains(v), set.contains(&v), "v={}", v);
        }
        if !set.is_empty() {
            prop_assert_eq!(d.min(), *set.iter().next().unwrap());
            prop_assert_eq!(d.max(), *set.iter().last().unwrap());
        }
    }

    /// Intersection is the set intersection.
    #[test]
    fn domain_intersection_is_set_intersection(a in prop::collection::btree_set(-30i32..30, 0..30),
                                               b in prop::collection::btree_set(-30i32..30, 0..30)) {
        let mut da = Domain::from_values(a.iter().copied());
        let db = Domain::from_values(b.iter().copied());
        da.intersect(&db);
        let expect: Vec<i32> = a.intersection(&b).copied().collect();
        let got: Vec<i32> = da.iter().collect();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(da.is_empty(), a.intersection(&b).count() == 0);
    }

    /// The DSL's eager evaluation agrees with the canonical opcode
    /// semantics for binary vector ops.
    #[test]
    fn dsl_matches_canonical_semantics(av in prop::collection::vec(-10.0f64..10.0, 4),
                                       bv in prop::collection::vec(-10.0f64..10.0, 4),
                                       which in 0usize..4) {
        use eit::ir::sem::{apply, Value};
        use eit::ir::{CoreOp, Opcode};
        let ctx = eit::dsl::Ctx::new("p");
        let a = ctx.vector([av[0], av[1], av[2], av[3]]);
        let b = ctx.vector([bv[0], bv[1], bv[2], bv[3]]);
        let (dsl_val, op) = match which {
            0 => (Value::V(a.v_add(&b).value()), Opcode::vector(CoreOp::Add)),
            1 => (Value::V(a.v_sub(&b).value()), Opcode::vector(CoreOp::Sub)),
            2 => (Value::V(a.v_mul(&b).value()), Opcode::vector(CoreOp::Mul)),
            _ => (Value::S(a.v_dotp(&b).value()), Opcode::vector(CoreOp::DotP)),
        };
        let canon = apply(&op, &[Value::V(a.value()), Value::V(b.value())]).unwrap();
        prop_assert!(canon[0].approx_eq(&dsl_val, 1e-9));
    }
}

/// Deterministic regression companion to the proptests: one fixed seed
/// exercised deeply (structure + metrics sanity).
#[test]
fn fixed_seed_full_pipeline() {
    let k = build(SynthParams {
        seed: 2024,
        layers: 4,
        width: 6,
        scalar_fraction: 0.25,
    });
    let mut g = k.graph.clone();
    eit::ir::merge_pipeline_ops(&mut g);
    let spec = ArchSpec::eit();
    let r = schedule(
        &g,
        &spec,
        &SchedulerOptions {
            timeout: Some(Duration::from_secs(60)),
            ..Default::default()
        },
    );
    let sched = r.schedule.expect("seeded kernel schedules");
    let report = simulate(&g, &spec, &sched, &k.inputs);
    assert!(report.ok(), "{:?}", report.violations);
    assert!(report.utilization > 0.0 && report.utilization <= 1.0);
    assert!(report.lane_cycles >= g.count(eit::ir::Category::VectorOp) as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Modulo scheduling on random kernels: the issue II respects the
    /// resource lower bound and the unrolled schedule validates.
    #[test]
    fn modulo_schedules_validate_on_synthetic_kernels(seed in 0u64..100) {
        use eit::core::{ii_lower_bound, modulo_schedule, validate_modulo, ModuloOptions};
        let k = build(SynthParams { seed, layers: 2, width: 4, scalar_fraction: 0.2 });
        let mut g = k.graph.clone();
        eit::ir::merge_pipeline_ops(&mut g);
        let spec = ArchSpec::eit();
        let r = modulo_schedule(&g, &spec, &ModuloOptions {
            timeout_per_ii: Duration::from_secs(10),
            total_timeout: Duration::from_secs(30),
            ..Default::default()
        });
        prop_assume!(r.is_some()); // rare hard instances may time out
        let r = r.unwrap();
        prop_assert!(r.ii_issue >= ii_lower_bound(&g, &spec));
        prop_assert!(r.actual_ii >= r.ii_issue);
        let v = validate_modulo(&g, &spec, &r, 4);
        prop_assert!(v.is_empty(), "{:?}", v);
    }

    /// Overlapped execution on random kernels: the transform always
    /// produces a structurally valid multi-iteration schedule whose
    /// reconfiguration count is bounded by the bundle count.
    #[test]
    fn overlap_validates_on_synthetic_kernels(seed in 0u64..100, m in 2usize..10) {
        use eit::core::{manual_style_bundles, overlapped_execution};
        let k = build(SynthParams { seed, layers: 2, width: 4, scalar_fraction: 0.2 });
        let mut g = k.graph.clone();
        eit::ir::merge_pipeline_ops(&mut g);
        let spec = ArchSpec::eit();
        let bundles = manual_style_bundles(&g, &spec);
        let total_ops: usize = bundles.iter().map(|b| {
            b.vector_ops.len()
                + usize::from(b.scalar_op.is_some())
                + usize::from(b.index_merge_op.is_some())
        }).sum();
        prop_assert_eq!(total_ops, g.ids().filter(|&n| g.category(n).is_op()).count());
        let ov = overlapped_execution(&g, &spec, &bundles, m);
        let v = eit::arch::validate_structure_with(&ov.graph, &spec, &ov.schedule, false);
        prop_assert!(v.is_empty(), "{:?}", v);
        prop_assert!(ov.reconfig_switches < bundles.len().max(1) * 2);
    }
}
