//! Integration tests for the §4.3 multi-iteration techniques: overlapped
//! execution and modulo scheduling, across all kernels.

use eit::arch::{validate_structure_with, ArchSpec};
use eit::core::{
    bundles_from_schedule, ii_lower_bound, manual_style_bundles, modulo_schedule,
    overlapped_execution, schedule, validate_modulo, ModuloOptions, SchedulerOptions,
};
use std::time::Duration;

fn merged(name: &str) -> eit::ir::Graph {
    let k = eit::apps::by_name(name).unwrap();
    let mut g = k.graph.clone();
    eit::ir::merge_pipeline_ops(&mut g);
    g
}

fn sched_opts() -> SchedulerOptions {
    SchedulerOptions {
        timeout: Some(Duration::from_secs(120)),
        ..Default::default()
    }
}

fn modulo_opts(include: bool) -> ModuloOptions {
    ModuloOptions {
        include_reconfig: include,
        timeout_per_ii: Duration::from_secs(60),
        total_timeout: Duration::from_secs(240),
        ..Default::default()
    }
}

#[test]
fn overlap_improves_throughput_for_every_kernel() {
    let spec = ArchSpec::eit();
    for name in ["qrd", "arf", "matmul"] {
        let g = merged(name);
        let single = schedule(&g, &spec, &sched_opts()).schedule.unwrap();
        let serial_thr = 1.0 / single.makespan as f64;
        let bundles = bundles_from_schedule(&g, &single);
        let m = 12;
        let ov = overlapped_execution(&g, &spec, &bundles, m);
        assert!(
            validate_structure_with(&ov.graph, &spec, &ov.schedule, false).is_empty(),
            "{name}"
        );
        assert!(
            ov.throughput > serial_thr,
            "{name}: overlap {:.4} vs serial {serial_thr:.4}",
            ov.throughput
        );
    }
}

#[test]
fn overlap_reconfigurations_bounded_by_bundle_count() {
    let spec = ArchSpec::eit();
    for name in ["qrd", "arf"] {
        let g = merged(name);
        let bundles = manual_style_bundles(&g, &spec);
        let ov = overlapped_execution(&g, &spec, &bundles, 12);
        // The whole point of the technique: reconfigurations don't scale
        // with the iteration count.
        assert!(
            ov.reconfig_switches < bundles.len(),
            "{name}: {} switches vs {} bundles",
            ov.reconfig_switches,
            bundles.len()
        );
    }
}

#[test]
fn overlap_throughput_grows_with_m_then_saturates() {
    let spec = ArchSpec::eit();
    let g = merged("qrd");
    let bundles = manual_style_bundles(&g, &spec);
    let t4 = overlapped_execution(&g, &spec, &bundles, 4).throughput;
    let t12 = overlapped_execution(&g, &spec, &bundles, 12).throughput;
    let t24 = overlapped_execution(&g, &spec, &bundles, 24).throughput;
    assert!(t12 > t4);
    // Past full latency masking, throughput changes little.
    assert!((t24 - t12).abs() / t12 < 0.25, "t12={t12} t24={t24}");
}

#[test]
fn modulo_excl_reaches_lower_bound_or_better_than_serial() {
    let spec = ArchSpec::eit();
    for name in ["qrd", "arf", "matmul"] {
        let g = merged(name);
        let lb = ii_lower_bound(&g, &spec);
        let r = modulo_schedule(&g, &spec, &modulo_opts(false)).unwrap();
        assert!(r.ii_issue >= lb, "{name}");
        assert!(validate_modulo(&g, &spec, &r, 4).is_empty(), "{name}");
        let serial = schedule(&g, &spec, &sched_opts()).makespan.unwrap();
        assert!(
            r.actual_ii <= serial,
            "{name}: II {} vs serial {serial}",
            r.actual_ii
        );
    }
}

#[test]
fn modulo_incl_beats_excl_when_reconfigs_matter() {
    // The paper's central Table 3 claim.
    let spec = ArchSpec::eit();
    for name in ["qrd", "arf"] {
        let g = merged(name);
        let excl = modulo_schedule(&g, &spec, &modulo_opts(false)).unwrap();
        let incl = modulo_schedule(&g, &spec, &modulo_opts(true)).unwrap();
        assert!(
            incl.actual_ii < excl.actual_ii,
            "{name}: incl {} !< excl {}",
            incl.actual_ii,
            excl.actual_ii
        );
        assert!(incl.switches <= excl.switches, "{name}");
        assert!(validate_modulo(&g, &spec, &incl, 4).is_empty(), "{name}");
    }
}

#[test]
fn matmul_needs_no_steady_state_reconfiguration() {
    let spec = ArchSpec::eit();
    let g = merged("matmul");
    let excl = modulo_schedule(&g, &spec, &modulo_opts(false)).unwrap();
    let incl = modulo_schedule(&g, &spec, &modulo_opts(true)).unwrap();
    assert_eq!(excl.switches, 0);
    assert_eq!(excl.actual_ii, incl.actual_ii);
    assert_eq!(excl.actual_ii, 4); // resource bound: 16 dotp / 4 lanes
    assert!((excl.throughput - 0.25).abs() < 1e-12);
}

#[test]
fn modulo_unrolled_iterations_respect_all_units() {
    // Deep unroll: 10 iterations at the issue II, validated structurally.
    let spec = ArchSpec::eit();
    let g = merged("arf");
    let r = modulo_schedule(&g, &spec, &modulo_opts(true)).unwrap();
    let v = validate_modulo(&g, &spec, &r, 10);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn reconfig_cost_scales_post_hoc_stalls() {
    let g = merged("arf");
    let mut cheap = ArchSpec::eit();
    cheap.reconfig_cost = 0;
    let mut pricey = ArchSpec::eit();
    pricey.reconfig_cost = 3;
    let r0 = modulo_schedule(&g, &cheap, &modulo_opts(false)).unwrap();
    let r3 = modulo_schedule(&g, &pricey, &modulo_opts(false)).unwrap();
    assert_eq!(r0.actual_ii, r0.ii_issue); // free reconfigs
    assert_eq!(r3.actual_ii, r3.ii_issue + 3 * r3.switches as i32);
}

#[test]
fn modulo_qrd_steady_state_fits_memory() {
    // Extension beyond the paper: its modulo experiments *assume* enough
    // memory; here the steady state (4 in-flight QRD iterations at the
    // issue II) is actually allocated and validated with the full memory
    // model — banks, pages, lines, lifetimes.
    use eit::core::allocate_modulo_memory;
    let spec = ArchSpec::eit();
    let g = merged("qrd");
    let r = modulo_schedule(&g, &spec, &modulo_opts(false)).unwrap();
    let (big, sched) =
        allocate_modulo_memory(&g, &spec, &r, 4).expect("QRD steady state fits 64 slots");
    let v = eit::arch::validate_structure(&big, &spec, &sched);
    assert!(v.is_empty(), "{v:?}");
    // Report-worthy number: how many slots the steady state needs.
    assert!(sched.slots_used(&big) <= 64);
}

#[test]
fn port_bound_prunes_candidate_iis_on_qrd() {
    // Satellite of the parallel-sweep PR: the memory-port lower bound.
    // QRD's unit bounds give II >= 22 on the stock machine; port widths
    // don't enter any unit bound, so narrowing the crossbar to 2 reads /
    // 1 write per cycle leaves those at 22 while the steady-state working
    // set (one iteration's distinct vector reads and writes per window)
    // now needs 32 cycles of port traffic. The sweep therefore starts 10
    // candidates higher — each a whole CSP probe never built.
    let g = merged("qrd");
    let stock = ArchSpec::eit();
    let mut narrow = ArchSpec::eit();
    narrow.max_vector_reads = 2;
    narrow.max_vector_writes = 1;
    let lb_stock = ii_lower_bound(&g, &stock);
    let lb_narrow = ii_lower_bound(&g, &narrow);
    assert_eq!(lb_stock, 22);
    assert_eq!(lb_narrow, 32);
    assert!(lb_narrow > lb_stock, "port bound must prune >= 1 candidate");
}

#[test]
fn parallel_sweep_reproduces_sequential_on_all_kernels() {
    // The tentpole's determinism contract, end to end: a speculative
    // --jobs 4 sweep lands on the same issue II, the same switch count
    // and the *same assignment* as the sequential sweep on every Table 3
    // kernel (reconfigurations included in the optimisation).
    let spec = ArchSpec::eit();
    for name in ["qrd", "arf", "matmul", "fir", "detector", "blockmm"] {
        let g = merged(name);
        let seq = modulo_schedule(&g, &spec, &modulo_opts(true)).unwrap();
        let par = modulo_schedule(
            &g,
            &spec,
            &ModuloOptions {
                jobs: 4,
                ..modulo_opts(true)
            },
        )
        .unwrap();
        assert_eq!(par.ii_issue, seq.ii_issue, "{name}");
        assert_eq!(par.switches, seq.switches, "{name}");
        assert_eq!(par.actual_ii, seq.actual_ii, "{name}");
        assert_eq!(par.t, seq.t, "{name}");
        assert_eq!(par.k, seq.k, "{name}");
        assert_eq!(par.s, seq.s, "{name}");
    }
}
