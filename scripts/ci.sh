#!/usr/bin/env bash
# CI gate: formatting, lints, build, tier-1 tests, and a metrics smoke
# check that a real `eitc --metrics` run emits a parseable document.
#
# Run from the repo root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test (tier-1)"
cargo test -q

echo "== metrics smoke: eitc matmul --metrics"
out="$(mktemp /tmp/eit-metrics.XXXXXX.json)"
trap 'rm -f "$out"' EXIT
./target/release/eitc matmul --metrics "$out" >/dev/null

# The round-trip parser lives in eit-bench; its integration test is the
# authoritative validation. Here we assert the emitted file looks like a
# versioned document and re-run that test against the tree.
grep -q '"schema": "eit-run-metrics/1"' "$out"
cargo test -q -p eit-bench --test metrics_roundtrip

echo "== engine equivalence: event-driven vs FIFO baseline"
cargo test -q --release -p eit-cp --test differential event_engine

echo "== parallel sweep determinism: --jobs 1 vs --jobs 4 on the table 3 smoke models"
# The determinism contract of the speculative II sweep: the emitted
# schedule (stdout) must be byte-identical, and the metrics must be
# byte-identical after stripping the fields that are nondeterministic by
# design — wall-clock (*_us), the jobs count itself, and the per-worker
# attribution block.
normalize_metrics() {
  sed -E -e 's/"[a-z_]*_us": [0-9]+/"_us": 0/' \
         -e 's/"jobs": [0-9]+/"jobs": 0/' \
         -e '/"workers": \[/,/^    \]$/d' "$1"
}
for k in matmul fir qrd; do
  s1="$(mktemp /tmp/eit-mod1.XXXXXX)"; m1="$(mktemp /tmp/eit-mod1m.XXXXXX.json)"
  s4="$(mktemp /tmp/eit-mod4.XXXXXX)"; m4="$(mktemp /tmp/eit-mod4m.XXXXXX.json)"
  ./target/release/eitc "$k" --modulo incl --timeout 60 --jobs 1 --metrics "$m1" > "$s1"
  ./target/release/eitc "$k" --modulo incl --timeout 60 --jobs 4 --metrics "$m4" > "$s4"
  diff "$s1" "$s4" || { echo "FAIL: $k --jobs 4 schedule differs from sequential"; exit 1; }
  diff <(normalize_metrics "$m1") <(normalize_metrics "$m4") \
    || { echo "FAIL: $k --jobs 4 metrics differ from sequential"; exit 1; }
  rm -f "$s1" "$s4" "$m1" "$m4"
  echo "   $k: schedules and normalized metrics byte-identical"
done

echo "== differential fuzz smoke: 200 fixed-seed cases (hybrid bitset domains on)"
# Deterministic: same seed, same graphs, same verdicts on every machine.
# Each case cross-checks XML round-trips, the list/CP/modulo schedulers,
# both independent verifiers, persistence, and functional replay
# (~30s ceiling; typically well under). The solver runs with the hybrid
# bitset representation enabled (the Store default), so the corpus also
# exercises promotion and the bitset fast paths on every case.
./target/release/fuzz --seed 5 --cases 200 --out /tmp/eit-fuzz-failures

echo "== arch-fuzz smoke: 100 fixed-seed architecture×kernel cases"
# Each case draws a generated machine (always validate()-clean) before
# the kernel; the full differential stack must agree on every pair.
./target/release/fuzz --seed 7 --cases 100 --arch-fuzz --out /tmp/eit-arch-fuzz-failures

echo "== parametric arch gate: preset → XML → reload is byte-identical"
# The eit-arch/1 contract: a dumped preset is a parse/render fixpoint,
# reloading it compiles every table kernel byte-identical to the builtin
# path, and invalid descriptions are rejected with named attributes.
archdir="$(mktemp -d /tmp/eit-arch.XXXXXX)"
./target/release/eitc --dump-arch eit  > "$archdir/eit.xml"
./target/release/eitc --dump-arch wide > "$archdir/wide.xml"
./target/release/eitc --dump-arch "$archdir/eit.xml"  | cmp - "$archdir/eit.xml" \
  || { echo "FAIL: eit.xml is not a dump fixpoint"; exit 1; }
./target/release/eitc --dump-arch "$archdir/wide.xml" | cmp - "$archdir/wide.xml" \
  || { echo "FAIL: wide.xml is not a dump fixpoint"; exit 1; }
for k in qrd arf matmul fir detector blockmm; do
  ./target/release/eitc "$k" > "$archdir/builtin_$k.txt"
  ./target/release/eitc "$k" --arch "$archdir/eit.xml" > "$archdir/reloaded_$k.txt"
  cmp "$archdir/builtin_$k.txt" "$archdir/reloaded_$k.txt" \
    || { echo "FAIL: $k --arch eit.xml differs from the builtin path"; exit 1; }
  echo "   $k: reloaded-preset listing byte-identical to builtin"
done
# Validation-on-load: a parseable but impossible machine is refused.
sed 's/page_size="4"/page_size="32"/' "$archdir/eit.xml" > "$archdir/bad.xml"
if ./target/release/eitc qrd --arch "$archdir/bad.xml" >/dev/null 2>"$archdir/bad.err"; then
  echo "FAIL: invalid arch description was accepted"; exit 1
fi
grep -q 'page_size="32"' "$archdir/bad.err" \
  || { echo "FAIL: arch rejection did not name the attribute"; exit 1; }
echo "   invalid description rejected with the attribute named"

echo "== independent verification of the table 1/2/3 reference schedules"
# Every paper kernel, straight-line at its table slot budget, must pass
# the solver-independent verifier AND the simulator's structural rules
# with zero violations ('; verify: ... clean' + exit 0).
for k in qrd arf matmul fir detector blockmm; do
  ./target/release/eitc "$k" --timeout 120 --verify >/dev/null
  echo "   $k: verified clean"
done
./target/release/eitc qrd --slots 16 --timeout 120 --verify >/dev/null
echo "   qrd --slots 16: verified clean"
for k in matmul fir; do
  ./target/release/eitc "$k" --modulo --timeout 60 --verify >/dev/null
  echo "   $k --modulo: verified clean"
done

echo "== SAT-vs-CP race gate: both modulo backends agree and verify clean"
# The CDCL/CNF sweep (eit-sat) is an independently implemented decision
# procedure for the same modulo model: raced against CP it must land on
# the same minimum II (sweeps are bottom-up, so the winner's II is
# backend-independent), the winning schedule must pass both verifiers,
# and the metrics must attribute a winner.
satdir="$(mktemp -d /tmp/eit-sat.XXXXXX)"
for k in matmul fir; do
  cp_m="$satdir/$k.cp.json"; sat_m="$satdir/$k.sat.json"; race_m="$satdir/$k.race.json"
  ./target/release/eitc "$k" --modulo --backend sat --timeout 60 --verify --metrics "$sat_m" >/dev/null
  ./target/release/eitc "$k" --modulo --backend race --timeout 60 --verify --metrics "$race_m" >/dev/null
  ./target/release/eitc "$k" --modulo --backend cp --timeout 60 --metrics "$cp_m" >/dev/null
  ii_cp="$(grep -o '"ii_issue": *[0-9]*' "$cp_m" | head -1 | grep -o '[0-9]*$')"
  ii_sat="$(grep -o '"ii_issue": *[0-9]*' "$sat_m" | head -1 | grep -o '[0-9]*$')"
  ii_race="$(grep -o '"ii_issue": *[0-9]*' "$race_m" | head -1 | grep -o '[0-9]*$')"
  [ "$ii_cp" = "$ii_sat" ] && [ "$ii_cp" = "$ii_race" ] \
    || { echo "FAIL: $k backend II mismatch (cp $ii_cp, sat $ii_sat, race $ii_race)"; exit 1; }
  grep -q '"backend": *"sat"' "$sat_m" \
    || { echo "FAIL: $k --backend sat metrics not attributed to sat"; exit 1; }
  grep -qE '"backend": *"(cp|sat)"' "$race_m" \
    || { echo "FAIL: $k --backend race metrics carry no winner attribution"; exit 1; }
  grep -q '"sat": *{' "$sat_m" \
    || { echo "FAIL: $k --backend sat metrics carry no solver counters"; exit 1; }
  winner="$(grep -o '"backend": *"[a-z]*"' "$race_m" | head -1 | grep -o '"[a-z]*"$')"
  echo "   $k: cp/sat/race agree on II $ii_cp; race winner $winner"
done

echo "== ablation gate: bitset x restarts A/B on all six table kernels"
# The two search-engine features must be pure wins on the paper kernels:
# the hybrid bitset representation may not change the search trajectory
# at all (byte-identical schedule, identical node count), and the default
# restart policy may not change the emitted schedule or explore more
# nodes (on these fail-free instances it must be a strict no-op).
abdir="$(mktemp -d /tmp/eit-ab.XXXXXX)"
nodes_of() { grep -o '"nodes": [0-9]*' "$1" | head -1 | grep -o '[0-9]*'; }
for k in qrd arf matmul fir detector blockmm; do
  ./target/release/eitc "$k" --timeout 120 --metrics "$abdir/base.json" > "$abdir/base.txt"
  ./target/release/eitc "$k" --timeout 120 --no-bitset --metrics "$abdir/nobits.json" > "$abdir/nobits.txt"
  ./target/release/eitc "$k" --timeout 120 --restarts --metrics "$abdir/rs.json" > "$abdir/rs.txt"
  ./target/release/eitc "$k" --timeout 120 --restarts --no-bitset > "$abdir/rs_nobits.txt"
  for ab in nobits rs rs_nobits; do
    cmp "$abdir/base.txt" "$abdir/$ab.txt" \
      || { echo "FAIL: $k ($ab) schedule differs from baseline"; exit 1; }
  done
  nb="$(nodes_of "$abdir/base.json")"
  nn="$(nodes_of "$abdir/nobits.json")"
  nr="$(nodes_of "$abdir/rs.json")"
  [ "$nn" = "$nb" ] || { echo "FAIL: $k --no-bitset changed the node count ($nn vs $nb)"; exit 1; }
  [ "$nr" -le "$nb" ] || { echo "FAIL: $k --restarts explored more nodes ($nr > $nb)"; exit 1; }
  echo "   $k: 4-way A/B schedules byte-identical; nodes $nr (restarts) <= $nb (baseline)"
done
rm -rf "$abdir"

echo "== replay smoke: record then strict-replay, and trace-hash determinism across --jobs"
# The record/replay contract: a recorded solve must strict-replay clean
# without re-searching, and the recorded modulo trace must be
# byte-identical (same fnv64 file hash) whether the sweep ran on 1 or 4
# workers — the merged stream is jobs-independent by construction.
t1="$(mktemp /tmp/eit-rec1.XXXXXX.trace)"
t4="$(mktemp /tmp/eit-rec4.XXXXXX.trace)"
./target/release/eitc qrd --timeout 120 --record "$t1" >/dev/null
./target/release/eitc qrd --timeout 120 --replay "$t1" --strict >/dev/null
echo "   qrd: recorded and strict-replayed clean"
./target/release/eitc matmul --modulo --timeout 60 --jobs 1 --record "$t1" >/dev/null
./target/release/eitc matmul --modulo --timeout 60 --jobs 4 --record "$t4" >/dev/null
cmp "$t1" "$t4" || { echo "FAIL: matmul --modulo trace differs between --jobs 1 and --jobs 4"; exit 1; }
./target/release/eitc matmul --modulo --timeout 60 --replay "$t1" --strict >/dev/null
echo "   matmul --modulo: jobs-1/jobs-4 traces byte-identical, strict replay clean"
rm -f "$t1" "$t4"

echo "== serve smoke: daemon survives faults, hot kernels hit the cache byte-identically"
# The eit-serve acceptance gate, in one daemon session:
#   1. a malformed request, a panicking solve, and a deadline-missed
#      request all come back as structured responses (server stays up);
#   2. all 6 table kernels submitted twice — the second pass must be all
#      cache hits and every response byte-identical to one-shot eitc;
#   3. clean shutdown with the aggregated metrics showing 6 hits.
servedir="$(mktemp -d /tmp/eit-serve.XXXXXX)"
SERVE_ADDR=127.0.0.1:17871
./target/release/eitc --serve "$SERVE_ADDR" --jobs 4 --metrics "$servedir/metrics.json" \
  > "$servedir/daemon.log" 2>&1 &
serve_pid=$!
client() { ./target/release/eit_client --addr "$SERVE_ADDR" "$@"; }
client --retry 50 ping | grep -q '"pong":true'
client raw 'this is not json'            | grep -q '"kind":"bad-request"'
client panic                             | grep -q '"kind":"panic"'
client compile qrd --deadline-ms 0       | grep -q '"status":"deadline"'
for k in qrd arf matmul fir detector blockmm; do
  client compile "$k" --out "$servedir/serve_$k.txt" | grep -q '"cached":false' \
    || { echo "FAIL: $k pass 1 was not a cold compile"; exit 1; }
done
for k in qrd arf matmul fir detector blockmm; do
  client compile "$k" --out "$servedir/serve2_$k.txt" | grep -q '"cached":true' \
    || { echo "FAIL: $k pass 2 was not a cache hit"; exit 1; }
  ./target/release/eitc "$k" > "$servedir/oneshot_$k.txt" 2>/dev/null
  cmp "$servedir/serve_$k.txt"  "$servedir/oneshot_$k.txt" \
    || { echo "FAIL: $k served listing differs from one-shot eitc"; exit 1; }
  cmp "$servedir/serve2_$k.txt" "$servedir/oneshot_$k.txt" \
    || { echo "FAIL: $k cached listing differs from one-shot eitc"; exit 1; }
done
# Arch-threading through the daemon: an inline reloaded-preset arch must
# serve every kernel byte-identical to the one-shot builtin path (these
# are cold misses — the arch hash keys the cache — so hits stay at 6),
# and a bad arch value comes back as a structured bad-request.
for k in qrd arf matmul fir detector blockmm; do
  client compile "$k" --arch "$archdir/eit.xml" --out "$servedir/arch_$k.txt" \
    | grep -q '"status":"ok"' || { echo "FAIL: $k --arch via serve errored"; exit 1; }
  cmp "$servedir/arch_$k.txt" "$servedir/oneshot_$k.txt" \
    || { echo "FAIL: $k served --arch listing differs from one-shot eitc"; exit 1; }
done
client compile qrd --arch not-a-preset | grep -q '"kind":"bad-request"' \
  || { echo "FAIL: bad arch value not rejected as bad-request"; exit 1; }
echo "   6/6 kernels served byte-identically under --arch; bad arch → bad-request"
client stats | grep -q '"hits":6'
client shutdown | grep -q '"shutting_down":true'
wait "$serve_pid" || { echo "FAIL: daemon exited non-zero"; exit 1; }
grep -q '"schema": "eit-run-metrics/1"' "$servedir/metrics.json"
rm -rf "$servedir" "$archdir"
echo "   daemon survived malformed/panic/deadline; 6/6 kernels cache-hit byte-identically"

echo "== solver bench smoke: trace overhead + engine A/B"
cargo bench -p eit-bench --bench trace_overhead

echo "CI OK"
