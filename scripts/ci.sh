#!/usr/bin/env bash
# CI gate: formatting, lints, build, tier-1 tests, and a metrics smoke
# check that a real `eitc --metrics` run emits a parseable document.
#
# Run from the repo root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test (tier-1)"
cargo test -q

echo "== metrics smoke: eitc matmul --metrics"
out="$(mktemp /tmp/eit-metrics.XXXXXX.json)"
trap 'rm -f "$out"' EXIT
./target/release/eitc matmul --metrics "$out" >/dev/null

# The round-trip parser lives in eit-bench; its integration test is the
# authoritative validation. Here we assert the emitted file looks like a
# versioned document and re-run that test against the tree.
grep -q '"schema": "eit-run-metrics/1"' "$out"
cargo test -q -p eit-bench --test metrics_roundtrip

echo "== engine equivalence: event-driven vs FIFO baseline"
cargo test -q --release -p eit-cp --test differential event_engine

echo "== solver bench smoke: trace overhead + engine A/B"
cargo bench -p eit-bench --bench trace_overhead

echo "CI OK"
