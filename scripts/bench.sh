#!/usr/bin/env bash
# Perf-baseline snapshot: run the solver bench groups plus the six table
# kernels and collapse everything into one BENCH_<label>.json, so future
# PRs have a recorded trajectory point to diff search effort and wall
# clock against.
#
# Usage: ./scripts/bench.sh [label]          (default label: git short hash)
#
# Output schema (eit-bench-baseline/1):
#   benches:  per-criterion-bench mean/min ns (micro + meso groups)
#   kernels:  per-kernel wall-clock, nodes, fails, propagations, and the
#             domain-representation histogram from eit-run-metrics/1
#   modulo_backends: the 39-slot QRD modulo run per decision backend
#             (cp | sat | race): winning II, sweep wall-clock, winner
#             attribution, and the SAT solver counters where present
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-$(git rev-parse --short HEAD)}"
out="BENCH_${label}.json"

cargo build --release
echo "== bench groups: solver + trace_overhead"
bench_log="$(mktemp /tmp/eit-bench.XXXXXX.log)"
trap 'rm -f "$bench_log"' EXIT
cargo bench -p eit-bench --bench solver         | tee    "$bench_log"
cargo bench -p eit-bench --bench trace_overhead | tee -a "$bench_log"

echo "== table kernels (straight-line, default budget)"
kernels_json=""
for k in qrd arf matmul fir detector blockmm; do
  m="$(mktemp /tmp/eit-bench-k.XXXXXX.json)"
  ./target/release/eitc "$k" --timeout 120 --metrics "$m" >/dev/null
  entry="$(python3 - "$k" "$m" <<'EOF'
import json, sys
k, path = sys.argv[1], sys.argv[2]
doc = json.load(open(path))
s = doc["solver"]
row = {
    "wall_us": s["time_us"],
    "nodes": s["nodes"],
    "fails": s["fails"],
    "propagations": s["propagations"],
    "domains": doc["domains"],
}
print(json.dumps({k: row}, separators=(",", ":")))
EOF
)"
  kernels_json="$kernels_json $entry"
  rm -f "$m"
  echo "   $k: done"
done

echo "== modulo backends: 39-slot QRD, cp vs sat vs race"
backends_json=""
for b in cp sat race; do
  m="$(mktemp /tmp/eit-bench-b.XXXXXX.json)"
  ./target/release/eitc qrd --slots 39 --modulo --backend "$b" --timeout 120 --metrics "$m" >/dev/null
  entry="$(python3 - "$b" "$m" <<'EOF'
import json, sys
b, path = sys.argv[1], sys.argv[2]
mod = json.load(open(path))["modulo"]
row = {
    "ii_issue": mod["ii_issue"],
    "wall_us": mod["opt_time_us"],
    "winner": mod["backend"],
}
if "sat" in mod:
    row["sat"] = mod["sat"]
print(json.dumps({b: row}, separators=(",", ":")))
EOF
)"
  backends_json="$backends_json $entry"
  rm -f "$m"
  echo "   backend $b: done"
done

python3 - "$label" "$bench_log" "$out" $kernels_json '--' $backends_json <<'EOF'
import json, re, sys
label, log_path, out_path = sys.argv[1], sys.argv[2], sys.argv[3]
benches = {}
pat = re.compile(r"^bench (\S+)\s+mean\s+(\d+) ns/iter\s+min\s+(\d+) ns/iter")
for line in open(log_path):
    m = pat.match(line.strip())
    if m:
        benches[m.group(1)] = {"mean_ns": int(m.group(2)), "min_ns": int(m.group(3))}
rest = sys.argv[4:]
split = rest.index("--")
kernels = {}
for blob in rest[:split]:
    kernels.update(json.loads(blob))
modulo_backends = {}
for blob in rest[split + 1 :]:
    modulo_backends.update(json.loads(blob))
doc = {
    "schema": "eit-bench-baseline/1",
    "label": label,
    "benches": benches,
    "kernels": kernels,
    "modulo_backends": modulo_backends,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(
    f"wrote {out_path}: {len(benches)} benches, {len(kernels)} kernels, "
    f"{len(modulo_backends)} modulo backends"
)
EOF
