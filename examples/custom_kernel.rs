//! Write your own kernel and push it through the whole toolchain with a
//! single call — validate → CSE → merge → schedule → machine listing —
//! then inspect what each stage did.
//!
//! The kernel here is a small adaptive-beamforming step: weight vectors
//! are correlated against a steering vector, normalised through the
//! accelerator, and combined — deliberately written with a duplicated
//! subexpression and a pre/post chain so the optimisation passes have
//! something to do.
//!
//! Run: `cargo run --release --example custom_kernel`

use eit::arch::ArchSpec;
use eit::core::pipeline::{compile, CompileOptions};
use eit::dsl::Ctx;

fn main() {
    let ctx = Ctx::new("beamform");
    let w1 = ctx.vector([(0.6, 0.1), (0.3, -0.2), (0.1, 0.4), (0.7, 0.0)]);
    let w2 = ctx.vector([(0.2, -0.3), (0.8, 0.1), (0.4, 0.2), (0.1, -0.1)]);
    let steer = ctx.vector([(1.0, 0.0), (0.7, 0.7), (0.0, 1.0), (-0.7, 0.7)]);

    // Correlations — note v_dotp(steer) appears twice with w1: the CSE
    // pass will fold the duplicate.
    let c1 = w1.v_dotp(&steer);
    let c1_again = w1.v_dotp(&steer);
    let c2 = w2.v_dotp(&steer);

    // Normalise through the accelerator.
    let power = c1.mul(&c1_again).add(&c2.mul(&c2));
    let inv = power.rsqrt();

    // Conjugate + combine + sort: a pre/post chain the merge pass folds.
    let combined = w1.hermitian().v_mul(&w2).sort();
    let _beam = combined.v_scale(&inv);

    println!(
        "DSL evaluated: |c1| = {:.4}, power = {:.4}",
        c1.value().abs(),
        power.value().re
    );

    let spec = ArchSpec::eit();
    let out = compile(ctx.finish(), &spec, &CompileOptions::default())
        .expect("beamforming kernel compiles");

    println!(
        "passes: CSE folded {} op(s); merge folded {} pre + {} post",
        out.cse.ops_removed, out.merge.pre_merges, out.merge.post_merges
    );
    println!(
        "schedule: {} cc ({:?}), {} nodes explored in {:?}",
        out.schedule.makespan, out.status, out.solver.nodes, out.solver.time
    );
    println!(
        "machine code: {} instructions, {} reconfiguration switch(es), utilization {:.1}%",
        out.program.n_instructions,
        out.program.reconfig_switches,
        out.program.utilization * 100.0
    );
    println!("\n{}", out.program.listing);
    print!(
        "{}",
        eit::arch::render_gantt(&out.graph, &spec, &out.schedule)
    );
}
