//! Quickstart: write a kernel in the DSL, schedule it with memory
//! allocation, and replay it on the cycle-accurate simulator.
//!
//! Run: `cargo run --release --example quickstart`

use eit::arch::{simulate, ArchSpec};
use eit::core::{schedule, SchedulerOptions};
use eit::dsl::Ctx;
use eit::ir::sem::Value;
use std::collections::HashMap;

fn main() {
    // 1. Write the kernel. Running the DSL both evaluates it (for
    //    functional debugging) and records the dataflow IR.
    let ctx = Ctx::new("quickstart");
    let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
    let b = ctx.vector([2.0, 3.0, 4.0, 5.0]);
    let sum = a.v_add(&b); // element-wise add on the vector core
    let dot = sum.v_dotp(&b); // dot product → scalar
    let norm = dot.sqrt(); // scalar accelerator
    println!(
        "DSL evaluation: sum·b = {}, √ = {}",
        dot.value(),
        norm.value()
    );

    // 2. Extract the IR and fold pre/post-processing chains (fig. 6).
    let mut graph = ctx.finish();
    graph
        .validate()
        .expect("the DSL emits valid bipartite DAGs");
    eit::ir::merge_pipeline_ops(&mut graph);
    println!(
        "IR: {} nodes, {} edges, critical path {} cc",
        graph.len(),
        graph.edge_count(),
        graph.critical_path(&eit::ir::LatencyModel::default().of(&graph)),
    );

    // 3. Schedule with combined memory allocation on the EIT machine.
    let spec = ArchSpec::eit();
    let result = schedule(&graph, &spec, &SchedulerOptions::default());
    let sched = result.schedule.expect("kernel must schedule");
    println!(
        "schedule: {} cc ({:?}), {} memory slots used",
        sched.makespan,
        result.status,
        sched.slots_used(&graph)
    );

    // 4. Replay on the simulator: structural rules + functional values.
    let mut inputs = HashMap::new();
    inputs.insert(a.node(), Value::V(a.value()));
    inputs.insert(b.node(), Value::V(b.value()));
    let report = simulate(&graph, &spec, &sched, &inputs);
    assert!(report.ok(), "violations: {:?}", report.violations);
    let out = graph.outputs()[0];
    println!(
        "simulator: OK — output {:?} (expected {})",
        report.values[&out],
        norm.value()
    );
    assert!(report.values[&out].approx_eq(&Value::S(norm.value()), 1e-9));

    // 5. The machine code is a per-cycle configuration stream.
    let code = eit::arch::ConfigStream::from_schedule(&graph, &spec, &sched);
    println!(
        "configuration stream ({} switches):",
        code.reconfig_switches()
    );
    print!("{code}");

    // 6. And a Gantt view of the same schedule.
    println!();
    print!("{}", eit::arch::render_gantt(&graph, &spec, &sched));
}
