//! Design-space exploration beyond the paper: because the machine model
//! is fully parameterisable, the scheduler doubles as an architecture
//! evaluation tool — vary lanes, memory and reconfiguration cost and
//! watch the schedule respond.
//!
//! Run: `cargo run --release --example design_space`

use eit::arch::ArchSpec;
use eit::core::{modulo_schedule, schedule, ModuloOptions, SchedulerOptions};
use std::time::Duration;

fn opts() -> SchedulerOptions {
    SchedulerOptions {
        timeout: Some(Duration::from_secs(60)),
        ..Default::default()
    }
}

fn main() {
    let kernel = eit::apps::qrd::build();
    let mut graph = kernel.graph.clone();
    eit::ir::merge_pipeline_ops(&mut graph);

    println!("QRD latency vs lane count (memory fixed at 64 slots)");
    println!("{:<8} {:>14} {:>14}", "lanes", "makespan (cc)", "modulo II");
    for lanes in [1u32, 2, 4, 8] {
        let mut spec = ArchSpec::eit();
        spec.n_lanes = lanes;
        let r = schedule(&graph, &spec, &opts());
        let ii = modulo_schedule(
            &graph,
            &spec,
            &ModuloOptions {
                timeout_per_ii: Duration::from_secs(20),
                total_timeout: Duration::from_secs(60),
                ..Default::default()
            },
        )
        .map(|m| m.actual_ii);
        println!(
            "{:<8} {:>14} {:>14}",
            lanes,
            r.makespan.map_or("-".into(), |m| m.to_string()),
            ii.map_or("-".into(), |m| m.to_string()),
        );
    }

    println!();
    println!("QRD modulo II vs reconfiguration cost (excluding-model, stalls post hoc)");
    println!(
        "{:<14} {:>10} {:>12} {:>12}",
        "reconfig cc", "issue II", "actual II", "thr"
    );
    for cost in [0i32, 1, 2, 4] {
        let mut spec = ArchSpec::eit();
        spec.reconfig_cost = cost;
        if let Some(m) = modulo_schedule(
            &graph,
            &spec,
            &ModuloOptions {
                timeout_per_ii: Duration::from_secs(20),
                total_timeout: Duration::from_secs(60),
                ..Default::default()
            },
        ) {
            println!(
                "{:<14} {:>10} {:>12} {:>12.4}",
                cost, m.ii_issue, m.actual_ii, m.throughput
            );
        }
    }

    println!();
    println!("QRD minimum-memory frontier (scheduler as a sizing tool)");
    println!("{:<8} {:>14} {:>12}", "slots", "makespan (cc)", "status");
    for slots in [12u32, 10, 8, 7] {
        let spec = ArchSpec::eit().with_slots(slots);
        let r = schedule(&graph, &spec, &opts());
        println!(
            "{:<8} {:>14} {:>12}",
            slots,
            r.makespan.map_or("-".into(), |m| m.to_string()),
            format!("{:?}", r.status),
        );
    }
}
