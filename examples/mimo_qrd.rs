//! MIMO pre-processing: schedule the MMSE-QRD kernel — the paper's main
//! workload — end to end, validating the schedule on the simulator and
//! inspecting memory pressure.
//!
//! This is the workflow of §4.2: one QRD iteration, scheduled with
//! combined memory allocation, at several memory sizes.
//!
//! Run: `cargo run --release --example mimo_qrd`

use eit::arch::{simulate, ArchSpec};
use eit::core::{schedule, SchedulerOptions};
use eit::cp::SearchStatus;
use std::time::Duration;

fn main() {
    let kernel = eit::apps::qrd::build();
    let mut graph = kernel.graph.clone();
    eit::ir::merge_pipeline_ops(&mut graph);
    let lm = eit::ir::LatencyModel::default();
    println!("MMSE-QRD kernel: {}", graph.summary(&lm.of(&graph)));

    for slots in [64u32, 16, 8, 7] {
        let spec = ArchSpec::eit().with_slots(slots);
        let result = schedule(
            &graph,
            &spec,
            &SchedulerOptions {
                timeout: Some(Duration::from_secs(60)),
                ..Default::default()
            },
        );
        match (&result.schedule, result.status) {
            (Some(sched), status) => {
                // Full functional replay: the schedule must produce the
                // same Q/R values the DSL evaluation did.
                let report = simulate(&graph, &spec, sched, &kernel.inputs);
                assert!(report.ok(), "slots={slots}: {:?}", report.violations);
                for (node, expect) in &kernel.expected {
                    assert!(
                        report.values[node].approx_eq(expect, 1e-9),
                        "slots={slots}: output {node:?} differs"
                    );
                }
                println!(
                    "{slots:>3} slots: {} cc ({status:?}), {} slots used, \
                     lanes {:.1}% / accel {:.1}% / idx-merge {:.1}%, \
                     {} reconfig switches — outputs verified",
                    sched.makespan,
                    sched.slots_used(&graph),
                    report.units.vector * 100.0,
                    report.units.accelerator * 100.0,
                    report.units.index_merge * 100.0,
                    report.reconfig_switches,
                );
            }
            (None, SearchStatus::Infeasible) => {
                println!("{slots:>3} slots: infeasible — below the kernel's live-set floor");
            }
            (None, status) => println!("{slots:>3} slots: no schedule ({status:?})"),
        }
    }

    println!();
    println!(
        "The schedule length never moves while memory suffices: the critical \
         path through the\nvector pipeline and the rsqrt accelerator dominates \
         (the paper's Table 1 observation)."
    );
}
