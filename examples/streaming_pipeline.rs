//! Streaming throughput: compare the three ways of §4.3 to execute many
//! iterations of a kernel — one-at-a-time, overlapped execution, and
//! modulo scheduling (both reconfiguration models).
//!
//! Run: `cargo run --release --example streaming_pipeline [qrd|arf|matmul|fir|detector]`

use eit::arch::ArchSpec;
use eit::core::{
    bundles_from_schedule, manual_style_bundles, modulo_schedule, overlapped_execution, schedule,
    validate_modulo, ModuloOptions, SchedulerOptions,
};
use std::time::Duration;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "arf".into());
    let kernel = eit::apps::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown kernel {name}; use qrd|arf|matmul|fir|detector");
        std::process::exit(1);
    });
    let mut graph = kernel.graph.clone();
    eit::ir::merge_pipeline_ops(&mut graph);
    let spec = ArchSpec::eit();
    let m = 12;

    println!("kernel: {name}, {m} iterations\n");
    println!(
        "{:<34} {:>12} {:>16}",
        "strategy", "cc/iter", "thr (iter/cc)"
    );
    println!("{}", "-".repeat(66));

    // Baseline: a single optimally scheduled iteration, repeated serially.
    let single = schedule(
        &graph,
        &spec,
        &SchedulerOptions {
            timeout: Some(Duration::from_secs(60)),
            ..Default::default()
        },
    );
    let s = single.schedule.expect("kernel must schedule");
    println!(
        "{:<34} {:>12} {:>16.4}",
        "serial (no overlap)",
        s.makespan,
        1.0 / s.makespan as f64
    );

    // Overlapped execution on the CP schedule's bundles.
    let bundles = bundles_from_schedule(&graph, &s);
    let ov = overlapped_execution(&graph, &spec, &bundles, m);
    println!(
        "{:<34} {:>12.1} {:>16.4}",
        "overlapped execution (automated)",
        ov.makespan as f64 / m as f64,
        ov.throughput
    );

    // Overlapped execution on manual-style bundles.
    let manual = manual_style_bundles(&graph, &spec);
    let ovm = overlapped_execution(&graph, &spec, &manual, m);
    println!(
        "{:<34} {:>12.1} {:>16.4}",
        "overlapped execution (manual)",
        ovm.makespan as f64 / m as f64,
        ovm.throughput
    );

    // Modulo scheduling, reconfigurations post hoc.
    let excl = modulo_schedule(&graph, &spec, &ModuloOptions::default())
        .expect("modulo (excl) must find an II");
    assert!(validate_modulo(&graph, &spec, &excl, 4).is_empty());
    println!(
        "{:<34} {:>12} {:>16.4}",
        format!("modulo, reconfig post hoc (II {})", excl.ii_issue),
        excl.actual_ii,
        excl.throughput
    );

    // Modulo scheduling with reconfigurations in the optimisation.
    let incl = modulo_schedule(
        &graph,
        &spec,
        &ModuloOptions {
            include_reconfig: true,
            ..Default::default()
        },
    )
    .expect("modulo (incl) must find an II");
    assert!(validate_modulo(&graph, &spec, &incl, 4).is_empty());
    println!(
        "{:<34} {:>12} {:>16.4}",
        format!("modulo, reconfig modelled (II {})", incl.ii_issue),
        incl.actual_ii,
        incl.throughput
    );

    println!();
    println!(
        "modulo scheduling sustains a *stable* throughput of one result every {} cc,\n\
         while overlapped execution is bursty: all {m} outputs land in the schedule tail.",
        incl.actual_ii
    );
}
