//! Offline stand-in for the `criterion` crate. Benches compile and run
//! under `cargo bench` with the same source: each benchmark does a short
//! warm-up, then a timed loop, and prints min/mean ns-per-iteration. No
//! statistical analysis, HTML reports, or saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, self.measurement_time, &mut f);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.parent.measurement_time = t;
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size.unwrap_or(self.parent.sample_size)
    }

    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(
            &full,
            self.effective_samples(),
            self.parent.measurement_time,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_bench(
            &full,
            self.effective_samples(),
            self.parent.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the closure `self.iters` times, recording wall time. The
    /// return value is passed through `black_box` to keep the work alive.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Opaque value sink; defeats trivial dead-code elimination.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, budget: Duration, f: &mut F) {
    // Warm-up / calibration: one iteration, timed.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Choose an iteration count per sample aiming to fit all samples in
    // the measurement budget.
    let per_sample = budget.as_nanos() / (samples.max(1) as u128);
    let iters = (per_sample / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    let mut done = 0usize;
    let deadline = Instant::now() + budget;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters as u32;
        total += per;
        best = best.min(per);
        done += 1;
        if Instant::now() >= deadline {
            break;
        }
    }
    let mean = total / done.max(1) as u32;
    println!(
        "bench {id:<48} mean {:>12} ns/iter   min {:>12} ns/iter   ({done} samples x {iters} iters)",
        mean.as_nanos(),
        best.as_nanos(),
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(10));
        let mut hits = 0u64;
        c.bench_function("shim/smoke", |b| b.iter(|| hits += 1));
        assert!(hits > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4, |b, n| b.iter(|| n * 2));
        group.finish();
    }
}
