//! Offline stand-in for the `proptest` crate: the `proptest!` /
//! `prop_assert*` / `prop_assume!` macros, range and collection
//! strategies, and `ProptestConfig`. Cases are drawn from a fixed-seed
//! RNG keyed on the test name, so runs are deterministic; there is no
//! shrinking — a failure reports the generated inputs via `Debug`.

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// `prop_assume!` filtered the case out; not a failure.
    Reject,
}

pub mod test_runner {
    /// Deterministic splitmix64 source for strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from the test name so every test gets a stable, distinct
        /// stream across runs and platforms.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    ((self.start as i128) + ((rng.next_u64() as u128) % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = ((hi as i128) - (lo as i128) + 1) as u128;
                    ((lo as i128) + ((rng.next_u64() as u128) % span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }
}

pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use core::ops::Range;
        use std::collections::BTreeSet;

        /// Size argument: either an exact `usize` or a half-open range.
        pub trait SizeRange {
            /// (inclusive lo, exclusive hi)
            fn bounds(&self) -> (usize, usize);
        }

        impl SizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self + 1)
            }
        }

        impl SizeRange for Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                (self.start, self.end)
            }
        }

        fn sample_len(size: &impl SizeRange, rng: &mut TestRng) -> usize {
            let (lo, hi) = size.bounds();
            assert!(lo < hi, "empty collection size range");
            lo + (rng.next_u64() as usize) % (hi - lo)
        }

        pub struct VecStrategy<S, Z> {
            elem: S,
            size: Z,
        }

        pub fn vec<S: Strategy, Z: SizeRange>(elem: S, size: Z) -> VecStrategy<S, Z> {
            VecStrategy { elem, size }
        }

        impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = sample_len(&self.size, rng);
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }

        pub struct BTreeSetStrategy<S, Z> {
            elem: S,
            size: Z,
        }

        pub fn btree_set<S, Z>(elem: S, size: Z) -> BTreeSetStrategy<S, Z>
        where
            S: Strategy,
            S::Value: Ord,
            Z: SizeRange,
        {
            BTreeSetStrategy { elem, size }
        }

        impl<S, Z> Strategy for BTreeSetStrategy<S, Z>
        where
            S: Strategy,
            S::Value: Ord,
            Z: SizeRange,
        {
            type Value = BTreeSet<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                // Duplicates collapse, so the result can be smaller than the
                // drawn target — acceptable for "arbitrary set" semantics.
                let n = sample_len(&self.size, rng);
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}  "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property failed at case {}/{}: {}\n  inputs: {}",
                            case + 1,
                            config.cases,
                            msg,
                            inputs
                        )
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(l == r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(l == r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        format!($($fmt)+),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Generated values respect their strategy's bounds.
        #[test]
        fn ranges_in_bounds(x in -5i32..5, n in 1usize..4,
                            v in prop::collection::vec(0i32..10, 0..6)) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((1..4).contains(&n));
            prop_assert!(v.len() < 6);
            for e in &v {
                prop_assert!((0..10).contains(e), "element {}", e);
            }
        }

        /// prop_assume rejects without failing.
        #[test]
        fn assume_filters(x in 0i32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn determinism_across_instances() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        for _ in 0..50 {
            assert_eq!((0u64..100).sample(&mut a), (0u64..100).sample(&mut b));
        }
    }
}
