//! Offline stand-in for the `rand` crate, covering exactly the surface the
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen_range, gen_bool}` over integer / float ranges.
//!
//! The generator is splitmix64: 64-bit state, full-period, passes the
//! smoke-level statistical needs of fuzz/differential tests, and — the
//! property the tests actually rely on — produces the same sequence for
//! the same seed on every platform. Streams do NOT match upstream rand.

use core::ops::{Range, RangeInclusive};

/// Core entropy source: one `u64` at a time.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, as in rand 0.8 (only the `seed_from_u64` entry
/// point is provided; none of the workspace uses `from_seed`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling helpers layered on any `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to draw a uniform sample from an RNG.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Map a raw u64 to [0, 1) with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                let off = (rng.next_u64() as u128) % (span as u128);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-advance once so seed 0 doesn't emit 0 first.
            let mut rng = StdRng { state };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn values_spread_over_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(rng.gen_range(0u32..16));
        }
        assert_eq!(seen.len(), 16, "all 16 buckets should be hit in 200 draws");
    }
}
