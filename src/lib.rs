//! # eit — programming support for reconfigurable custom vector architectures
//!
//! Facade crate re-exporting the full stack of the PMAM '15 / PPoPP 2015
//! reproduction (*Programming Support for Reconfigurable Custom Vector
//! Architectures*, Arslan, Kuchcinski, Liu, Gruian):
//!
//! - [`dsl`] — the embedded DSL (§3.1): `Scalar`/`Vector`/`Matrix` values
//!   over complex numbers that *evaluate* while they *record* the IR;
//! - [`ir`] — the bipartite dataflow IR (§3.2): validation, critical
//!   path, XML/DOT interchange, the fig. 6 merge pass, CSE/DCE, and the
//!   canonical opcode semantics everything else is checked against;
//! - [`cp`] — the finite-domain constraint solver (the JaCoP substitute):
//!   `Cumulative`, `Diff2`, `AllDifferent`, `Disjunctive`, `Table`,
//!   guarded memory constraints, phased restart branch-and-bound,
//!   portfolio racing, solution enumeration;
//! - [`core`] — the paper's contribution (§3.3–3.5): combined scheduling
//!   plus vector-memory allocation as one CP model, overlapped execution and
//!   modulo scheduling (§4.3, both reconfiguration variants, plus real
//!   steady-state memory allocation), code generation, a heuristic
//!   list-scheduling baseline, and the one-call
//!   [`core::pipeline::compile`] toolchain;
//! - [`arch`] — the EIT machine model (§1.1) and the cycle-accurate
//!   simulator used to validate and functionally replay every schedule,
//!   with Gantt/VCD renderers and schedule persistence;
//! - [`apps`] — the evaluation kernels: QRD, ARF, MATMUL from the paper,
//!   plus FIR, the full MMSE detector, blocked matmul and a synthetic
//!   generator.
//!
//! ## One call from kernel to machine code
//!
//! ```
//! use eit::arch::ArchSpec;
//! use eit::core::pipeline::{compile, CompileOptions};
//! use eit::dsl::Ctx;
//!
//! let ctx = Ctx::new("hello");
//! let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
//! let b = ctx.vector([2.0, 3.0, 4.0, 5.0]);
//! let _ = a.v_add(&b).v_dotp(&b).sqrt();
//!
//! let out = compile(ctx.finish(), &ArchSpec::eit(), &CompileOptions::default()).unwrap();
//! assert!(out.program.listing.contains("configuration stream"));
//! ```
//!
//! See `README.md` for the tour, `DESIGN.md` for the system inventory and
//! modelling decisions, and `EXPERIMENTS.md` for the paper-vs-measured
//! record of every table and figure.

pub use eit_apps as apps;
pub use eit_arch as arch;
pub use eit_core as core;
pub use eit_cp as cp;
pub use eit_dsl as dsl;
pub use eit_ir as ir;
