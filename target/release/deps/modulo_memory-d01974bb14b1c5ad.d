/root/repo/target/release/deps/modulo_memory-d01974bb14b1c5ad.d: crates/bench/src/bin/modulo_memory.rs Cargo.toml

/root/repo/target/release/deps/libmodulo_memory-d01974bb14b1c5ad.rmeta: crates/bench/src/bin/modulo_memory.rs Cargo.toml

crates/bench/src/bin/modulo_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
