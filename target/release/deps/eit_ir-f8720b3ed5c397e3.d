/root/repo/target/release/deps/eit_ir-f8720b3ed5c397e3.d: crates/ir/src/lib.rs crates/ir/src/cplx.rs crates/ir/src/dot.rs crates/ir/src/graph.rs crates/ir/src/latency.rs crates/ir/src/node.rs crates/ir/src/passes/mod.rs crates/ir/src/passes/cse.rs crates/ir/src/passes/dce.rs crates/ir/src/passes/merge.rs crates/ir/src/sem.rs crates/ir/src/xml.rs Cargo.toml

/root/repo/target/release/deps/libeit_ir-f8720b3ed5c397e3.rmeta: crates/ir/src/lib.rs crates/ir/src/cplx.rs crates/ir/src/dot.rs crates/ir/src/graph.rs crates/ir/src/latency.rs crates/ir/src/node.rs crates/ir/src/passes/mod.rs crates/ir/src/passes/cse.rs crates/ir/src/passes/dce.rs crates/ir/src/passes/merge.rs crates/ir/src/sem.rs crates/ir/src/xml.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/cplx.rs:
crates/ir/src/dot.rs:
crates/ir/src/graph.rs:
crates/ir/src/latency.rs:
crates/ir/src/node.rs:
crates/ir/src/passes/mod.rs:
crates/ir/src/passes/cse.rs:
crates/ir/src/passes/dce.rs:
crates/ir/src/passes/merge.rs:
crates/ir/src/sem.rs:
crates/ir/src/xml.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
