/root/repo/target/release/deps/table2-78cf433541012b3d.d: crates/bench/benches/table2.rs

/root/repo/target/release/deps/table2-78cf433541012b3d: crates/bench/benches/table2.rs

crates/bench/benches/table2.rs:
