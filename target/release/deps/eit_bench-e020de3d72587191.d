/root/repo/target/release/deps/eit_bench-e020de3d72587191.d: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/metrics.rs

/root/repo/target/release/deps/libeit_bench-e020de3d72587191.rlib: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/metrics.rs

/root/repo/target/release/deps/libeit_bench-e020de3d72587191.rmeta: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/metrics.rs

crates/bench/src/lib.rs:
crates/bench/src/json.rs:
crates/bench/src/metrics.rs:
