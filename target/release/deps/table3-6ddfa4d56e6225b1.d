/root/repo/target/release/deps/table3-6ddfa4d56e6225b1.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/release/deps/libtable3-6ddfa4d56e6225b1.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
