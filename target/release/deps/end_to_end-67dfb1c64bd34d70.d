/root/repo/target/release/deps/end_to_end-67dfb1c64bd34d70.d: tests/end_to_end.rs Cargo.toml

/root/repo/target/release/deps/libend_to_end-67dfb1c64bd34d70.rmeta: tests/end_to_end.rs Cargo.toml

tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
