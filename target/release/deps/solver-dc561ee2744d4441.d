/root/repo/target/release/deps/solver-dc561ee2744d4441.d: crates/bench/benches/solver.rs

/root/repo/target/release/deps/solver-dc561ee2744d4441: crates/bench/benches/solver.rs

crates/bench/benches/solver.rs:
