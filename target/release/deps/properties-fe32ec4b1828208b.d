/root/repo/target/release/deps/properties-fe32ec4b1828208b.d: tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-fe32ec4b1828208b.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
