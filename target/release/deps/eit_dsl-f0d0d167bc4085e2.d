/root/repo/target/release/deps/eit_dsl-f0d0d167bc4085e2.d: crates/dsl/src/lib.rs crates/dsl/src/ctx.rs crates/dsl/src/ops.rs Cargo.toml

/root/repo/target/release/deps/libeit_dsl-f0d0d167bc4085e2.rmeta: crates/dsl/src/lib.rs crates/dsl/src/ctx.rs crates/dsl/src/ops.rs Cargo.toml

crates/dsl/src/lib.rs:
crates/dsl/src/ctx.rs:
crates/dsl/src/ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
