/root/repo/target/release/deps/trace_events-3c7a28a8adb8dfd4.d: crates/cp/tests/trace_events.rs

/root/repo/target/release/deps/trace_events-3c7a28a8adb8dfd4: crates/cp/tests/trace_events.rs

crates/cp/tests/trace_events.rs:
