/root/repo/target/release/deps/table1-a7f6fdb6090c0696.d: crates/bench/benches/table1.rs

/root/repo/target/release/deps/table1-a7f6fdb6090c0696: crates/bench/benches/table1.rs

crates/bench/benches/table1.rs:
