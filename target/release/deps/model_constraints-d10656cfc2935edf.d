/root/repo/target/release/deps/model_constraints-d10656cfc2935edf.d: tests/model_constraints.rs Cargo.toml

/root/repo/target/release/deps/libmodel_constraints-d10656cfc2935edf.rmeta: tests/model_constraints.rs Cargo.toml

tests/model_constraints.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
