/root/repo/target/release/deps/ir_shapes-37ecc70ed8a54fcd.d: tests/ir_shapes.rs Cargo.toml

/root/repo/target/release/deps/libir_shapes-37ecc70ed8a54fcd.rmeta: tests/ir_shapes.rs Cargo.toml

tests/ir_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
