/root/repo/target/release/deps/eitc-1ad90f2a5241de30.d: crates/bench/src/bin/eitc.rs Cargo.toml

/root/repo/target/release/deps/libeitc-1ad90f2a5241de30.rmeta: crates/bench/src/bin/eitc.rs Cargo.toml

crates/bench/src/bin/eitc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
