/root/repo/target/release/deps/eit-37be82634c929850.d: src/lib.rs

/root/repo/target/release/deps/libeit-37be82634c929850.rlib: src/lib.rs

/root/repo/target/release/deps/libeit-37be82634c929850.rmeta: src/lib.rs

src/lib.rs:
