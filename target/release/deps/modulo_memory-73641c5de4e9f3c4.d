/root/repo/target/release/deps/modulo_memory-73641c5de4e9f3c4.d: crates/bench/src/bin/modulo_memory.rs

/root/repo/target/release/deps/modulo_memory-73641c5de4e9f3c4: crates/bench/src/bin/modulo_memory.rs

crates/bench/src/bin/modulo_memory.rs:
