/root/repo/target/release/deps/table3-59d7ce736b2dc7cd.d: crates/bench/benches/table3.rs

/root/repo/target/release/deps/table3-59d7ce736b2dc7cd: crates/bench/benches/table3.rs

crates/bench/benches/table3.rs:
