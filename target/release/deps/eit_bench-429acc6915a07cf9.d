/root/repo/target/release/deps/eit_bench-429acc6915a07cf9.d: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/metrics.rs

/root/repo/target/release/deps/eit_bench-429acc6915a07cf9: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/metrics.rs

crates/bench/src/lib.rs:
crates/bench/src/json.rs:
crates/bench/src/metrics.rs:
