/root/repo/target/release/deps/figures-9a31ed0342dd62d2.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-9a31ed0342dd62d2: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
