/root/repo/target/release/deps/table1-2f0399c58b6bfe05.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/release/deps/libtable1-2f0399c58b6bfe05.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
