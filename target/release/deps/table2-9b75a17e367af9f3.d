/root/repo/target/release/deps/table2-9b75a17e367af9f3.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-9b75a17e367af9f3: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
