/root/repo/target/release/deps/end_to_end-4bff2ddbed974e60.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-4bff2ddbed974e60: tests/end_to_end.rs

tests/end_to_end.rs:
