/root/repo/target/release/deps/eit_bench-71276385b34b4d6e.d: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/metrics.rs Cargo.toml

/root/repo/target/release/deps/libeit_bench-71276385b34b4d6e.rmeta: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/metrics.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/json.rs:
crates/bench/src/metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
