/root/repo/target/release/deps/repro2-1a917d148225a99a.d: crates/bench/src/bin/repro2.rs Cargo.toml

/root/repo/target/release/deps/librepro2-1a917d148225a99a.rmeta: crates/bench/src/bin/repro2.rs Cargo.toml

crates/bench/src/bin/repro2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
