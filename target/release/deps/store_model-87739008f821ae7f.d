/root/repo/target/release/deps/store_model-87739008f821ae7f.d: crates/cp/tests/store_model.rs

/root/repo/target/release/deps/store_model-87739008f821ae7f: crates/cp/tests/store_model.rs

crates/cp/tests/store_model.rs:
