/root/repo/target/release/deps/repprobe-63d1dd1050546056.d: crates/bench/src/bin/repprobe.rs Cargo.toml

/root/repo/target/release/deps/librepprobe-63d1dd1050546056.rmeta: crates/bench/src/bin/repprobe.rs Cargo.toml

crates/bench/src/bin/repprobe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
