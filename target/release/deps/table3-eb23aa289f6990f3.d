/root/repo/target/release/deps/table3-eb23aa289f6990f3.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/release/deps/libtable3-eb23aa289f6990f3.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
