/root/repo/target/release/deps/table3-89f86295870e0d43.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-89f86295870e0d43: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
