/root/repo/target/release/deps/table1-36f44f7f80e2d8f7.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-36f44f7f80e2d8f7: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
