/root/repo/target/release/deps/table2-afab109de2e089fd.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/release/deps/libtable2-afab109de2e089fd.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
