/root/repo/target/release/deps/repprobe-f9ca8fcd2f606045.d: crates/bench/src/bin/repprobe.rs

/root/repo/target/release/deps/repprobe-f9ca8fcd2f606045: crates/bench/src/bin/repprobe.rs

crates/bench/src/bin/repprobe.rs:
