/root/repo/target/release/deps/table3-05fe349b691276c5.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-05fe349b691276c5: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
