/root/repo/target/release/deps/store_model-6fb623bf74eca18f.d: crates/cp/tests/store_model.rs Cargo.toml

/root/repo/target/release/deps/libstore_model-6fb623bf74eca18f.rmeta: crates/cp/tests/store_model.rs Cargo.toml

crates/cp/tests/store_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
