/root/repo/target/release/deps/eit_apps-c513322607403656.d: crates/apps/src/lib.rs crates/apps/src/arf.rs crates/apps/src/blockmm.rs crates/apps/src/detector.rs crates/apps/src/fir.rs crates/apps/src/matmul.rs crates/apps/src/qrd.rs crates/apps/src/synth.rs

/root/repo/target/release/deps/eit_apps-c513322607403656: crates/apps/src/lib.rs crates/apps/src/arf.rs crates/apps/src/blockmm.rs crates/apps/src/detector.rs crates/apps/src/fir.rs crates/apps/src/matmul.rs crates/apps/src/qrd.rs crates/apps/src/synth.rs

crates/apps/src/lib.rs:
crates/apps/src/arf.rs:
crates/apps/src/blockmm.rs:
crates/apps/src/detector.rs:
crates/apps/src/fir.rs:
crates/apps/src/matmul.rs:
crates/apps/src/qrd.rs:
crates/apps/src/synth.rs:
