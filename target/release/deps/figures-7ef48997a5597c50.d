/root/repo/target/release/deps/figures-7ef48997a5597c50.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-7ef48997a5597c50: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
