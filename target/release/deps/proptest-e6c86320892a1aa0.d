/root/repo/target/release/deps/proptest-e6c86320892a1aa0.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-e6c86320892a1aa0.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-e6c86320892a1aa0.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
