/root/repo/target/release/deps/summary-a1d64b31348651ae.d: crates/bench/src/bin/summary.rs Cargo.toml

/root/repo/target/release/deps/libsummary-a1d64b31348651ae.rmeta: crates/bench/src/bin/summary.rs Cargo.toml

crates/bench/src/bin/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
