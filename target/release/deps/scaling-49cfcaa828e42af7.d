/root/repo/target/release/deps/scaling-49cfcaa828e42af7.d: crates/bench/src/bin/scaling.rs

/root/repo/target/release/deps/scaling-49cfcaa828e42af7: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
