/root/repo/target/release/deps/table1-baf87de5251ec6c2.d: crates/bench/benches/table1.rs Cargo.toml

/root/repo/target/release/deps/libtable1-baf87de5251ec6c2.rmeta: crates/bench/benches/table1.rs Cargo.toml

crates/bench/benches/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
