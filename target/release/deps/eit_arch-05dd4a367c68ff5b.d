/root/repo/target/release/deps/eit_arch-05dd4a367c68ff5b.d: crates/arch/src/lib.rs crates/arch/src/code.rs crates/arch/src/gantt.rs crates/arch/src/memory.rs crates/arch/src/persist.rs crates/arch/src/schedule.rs crates/arch/src/sim.rs crates/arch/src/spec.rs crates/arch/src/vcd.rs

/root/repo/target/release/deps/eit_arch-05dd4a367c68ff5b: crates/arch/src/lib.rs crates/arch/src/code.rs crates/arch/src/gantt.rs crates/arch/src/memory.rs crates/arch/src/persist.rs crates/arch/src/schedule.rs crates/arch/src/sim.rs crates/arch/src/spec.rs crates/arch/src/vcd.rs

crates/arch/src/lib.rs:
crates/arch/src/code.rs:
crates/arch/src/gantt.rs:
crates/arch/src/memory.rs:
crates/arch/src/persist.rs:
crates/arch/src/schedule.rs:
crates/arch/src/sim.rs:
crates/arch/src/spec.rs:
crates/arch/src/vcd.rs:
