/root/repo/target/release/deps/figures-60a77d98bc1b4d15.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/release/deps/libfigures-60a77d98bc1b4d15.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
