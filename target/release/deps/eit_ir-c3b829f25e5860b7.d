/root/repo/target/release/deps/eit_ir-c3b829f25e5860b7.d: crates/ir/src/lib.rs crates/ir/src/cplx.rs crates/ir/src/dot.rs crates/ir/src/graph.rs crates/ir/src/latency.rs crates/ir/src/node.rs crates/ir/src/passes/mod.rs crates/ir/src/passes/cse.rs crates/ir/src/passes/dce.rs crates/ir/src/passes/merge.rs crates/ir/src/sem.rs crates/ir/src/xml.rs

/root/repo/target/release/deps/eit_ir-c3b829f25e5860b7: crates/ir/src/lib.rs crates/ir/src/cplx.rs crates/ir/src/dot.rs crates/ir/src/graph.rs crates/ir/src/latency.rs crates/ir/src/node.rs crates/ir/src/passes/mod.rs crates/ir/src/passes/cse.rs crates/ir/src/passes/dce.rs crates/ir/src/passes/merge.rs crates/ir/src/sem.rs crates/ir/src/xml.rs

crates/ir/src/lib.rs:
crates/ir/src/cplx.rs:
crates/ir/src/dot.rs:
crates/ir/src/graph.rs:
crates/ir/src/latency.rs:
crates/ir/src/node.rs:
crates/ir/src/passes/mod.rs:
crates/ir/src/passes/cse.rs:
crates/ir/src/passes/dce.rs:
crates/ir/src/passes/merge.rs:
crates/ir/src/sem.rs:
crates/ir/src/xml.rs:
