/root/repo/target/release/deps/solver-1f07ae1bfc25c759.d: crates/bench/benches/solver.rs Cargo.toml

/root/repo/target/release/deps/libsolver-1f07ae1bfc25c759.rmeta: crates/bench/benches/solver.rs Cargo.toml

crates/bench/benches/solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
