/root/repo/target/release/deps/table3-d29de04e31017946.d: crates/bench/benches/table3.rs Cargo.toml

/root/repo/target/release/deps/libtable3-d29de04e31017946.rmeta: crates/bench/benches/table3.rs Cargo.toml

crates/bench/benches/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
