/root/repo/target/release/deps/eit_core-3475a012c7fac452.d: crates/core/src/lib.rs crates/core/src/codegen.rs crates/core/src/list_sched.rs crates/core/src/model.rs crates/core/src/modulo.rs crates/core/src/obs.rs crates/core/src/overlap.rs crates/core/src/pipeline.rs crates/core/src/portfolio.rs crates/core/src/replicate.rs

/root/repo/target/release/deps/eit_core-3475a012c7fac452: crates/core/src/lib.rs crates/core/src/codegen.rs crates/core/src/list_sched.rs crates/core/src/model.rs crates/core/src/modulo.rs crates/core/src/obs.rs crates/core/src/overlap.rs crates/core/src/pipeline.rs crates/core/src/portfolio.rs crates/core/src/replicate.rs

crates/core/src/lib.rs:
crates/core/src/codegen.rs:
crates/core/src/list_sched.rs:
crates/core/src/model.rs:
crates/core/src/modulo.rs:
crates/core/src/obs.rs:
crates/core/src/overlap.rs:
crates/core/src/pipeline.rs:
crates/core/src/portfolio.rs:
crates/core/src/replicate.rs:
