/root/repo/target/release/deps/proptest-931ec751004e7695.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-931ec751004e7695.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
