/root/repo/target/release/deps/repprobe-80cc01751ada98cf.d: crates/bench/src/bin/repprobe.rs Cargo.toml

/root/repo/target/release/deps/librepprobe-80cc01751ada98cf.rmeta: crates/bench/src/bin/repprobe.rs Cargo.toml

crates/bench/src/bin/repprobe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
