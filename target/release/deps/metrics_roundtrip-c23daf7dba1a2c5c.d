/root/repo/target/release/deps/metrics_roundtrip-c23daf7dba1a2c5c.d: crates/bench/tests/metrics_roundtrip.rs Cargo.toml

/root/repo/target/release/deps/libmetrics_roundtrip-c23daf7dba1a2c5c.rmeta: crates/bench/tests/metrics_roundtrip.rs Cargo.toml

crates/bench/tests/metrics_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
