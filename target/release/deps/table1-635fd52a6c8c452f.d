/root/repo/target/release/deps/table1-635fd52a6c8c452f.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-635fd52a6c8c452f: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
