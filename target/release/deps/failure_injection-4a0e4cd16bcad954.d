/root/repo/target/release/deps/failure_injection-4a0e4cd16bcad954.d: tests/failure_injection.rs Cargo.toml

/root/repo/target/release/deps/libfailure_injection-4a0e4cd16bcad954.rmeta: tests/failure_injection.rs Cargo.toml

tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
