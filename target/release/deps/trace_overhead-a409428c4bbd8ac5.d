/root/repo/target/release/deps/trace_overhead-a409428c4bbd8ac5.d: crates/bench/benches/trace_overhead.rs

/root/repo/target/release/deps/trace_overhead-a409428c4bbd8ac5: crates/bench/benches/trace_overhead.rs

crates/bench/benches/trace_overhead.rs:
