/root/repo/target/release/deps/eit_apps-383f5e3ab2b12fed.d: crates/apps/src/lib.rs crates/apps/src/arf.rs crates/apps/src/blockmm.rs crates/apps/src/detector.rs crates/apps/src/fir.rs crates/apps/src/matmul.rs crates/apps/src/qrd.rs crates/apps/src/synth.rs Cargo.toml

/root/repo/target/release/deps/libeit_apps-383f5e3ab2b12fed.rmeta: crates/apps/src/lib.rs crates/apps/src/arf.rs crates/apps/src/blockmm.rs crates/apps/src/detector.rs crates/apps/src/fir.rs crates/apps/src/matmul.rs crates/apps/src/qrd.rs crates/apps/src/synth.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/arf.rs:
crates/apps/src/blockmm.rs:
crates/apps/src/detector.rs:
crates/apps/src/fir.rs:
crates/apps/src/matmul.rs:
crates/apps/src/qrd.rs:
crates/apps/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
