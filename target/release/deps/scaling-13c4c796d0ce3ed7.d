/root/repo/target/release/deps/scaling-13c4c796d0ce3ed7.d: crates/bench/src/bin/scaling.rs Cargo.toml

/root/repo/target/release/deps/libscaling-13c4c796d0ce3ed7.rmeta: crates/bench/src/bin/scaling.rs Cargo.toml

crates/bench/src/bin/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
