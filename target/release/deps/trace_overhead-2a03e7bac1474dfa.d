/root/repo/target/release/deps/trace_overhead-2a03e7bac1474dfa.d: crates/bench/benches/trace_overhead.rs

/root/repo/target/release/deps/trace_overhead-2a03e7bac1474dfa: crates/bench/benches/trace_overhead.rs

crates/bench/benches/trace_overhead.rs:
