/root/repo/target/release/deps/eitc-666d266028f03073.d: crates/bench/src/bin/eitc.rs

/root/repo/target/release/deps/eitc-666d266028f03073: crates/bench/src/bin/eitc.rs

crates/bench/src/bin/eitc.rs:
