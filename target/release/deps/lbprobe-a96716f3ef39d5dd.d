/root/repo/target/release/deps/lbprobe-a96716f3ef39d5dd.d: crates/bench/src/bin/lbprobe.rs

/root/repo/target/release/deps/lbprobe-a96716f3ef39d5dd: crates/bench/src/bin/lbprobe.rs

crates/bench/src/bin/lbprobe.rs:
