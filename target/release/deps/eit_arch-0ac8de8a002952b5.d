/root/repo/target/release/deps/eit_arch-0ac8de8a002952b5.d: crates/arch/src/lib.rs crates/arch/src/code.rs crates/arch/src/gantt.rs crates/arch/src/memory.rs crates/arch/src/persist.rs crates/arch/src/schedule.rs crates/arch/src/sim.rs crates/arch/src/spec.rs crates/arch/src/vcd.rs Cargo.toml

/root/repo/target/release/deps/libeit_arch-0ac8de8a002952b5.rmeta: crates/arch/src/lib.rs crates/arch/src/code.rs crates/arch/src/gantt.rs crates/arch/src/memory.rs crates/arch/src/persist.rs crates/arch/src/schedule.rs crates/arch/src/sim.rs crates/arch/src/spec.rs crates/arch/src/vcd.rs Cargo.toml

crates/arch/src/lib.rs:
crates/arch/src/code.rs:
crates/arch/src/gantt.rs:
crates/arch/src/memory.rs:
crates/arch/src/persist.rs:
crates/arch/src/schedule.rs:
crates/arch/src/sim.rs:
crates/arch/src/spec.rs:
crates/arch/src/vcd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
