/root/repo/target/release/deps/eitc-6c05f30f3c86e159.d: crates/bench/src/bin/eitc.rs

/root/repo/target/release/deps/eitc-6c05f30f3c86e159: crates/bench/src/bin/eitc.rs

crates/bench/src/bin/eitc.rs:
