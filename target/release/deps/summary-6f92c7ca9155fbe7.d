/root/repo/target/release/deps/summary-6f92c7ca9155fbe7.d: crates/bench/src/bin/summary.rs

/root/repo/target/release/deps/summary-6f92c7ca9155fbe7: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
