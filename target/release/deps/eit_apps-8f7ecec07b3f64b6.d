/root/repo/target/release/deps/eit_apps-8f7ecec07b3f64b6.d: crates/apps/src/lib.rs crates/apps/src/arf.rs crates/apps/src/blockmm.rs crates/apps/src/detector.rs crates/apps/src/fir.rs crates/apps/src/matmul.rs crates/apps/src/qrd.rs crates/apps/src/synth.rs Cargo.toml

/root/repo/target/release/deps/libeit_apps-8f7ecec07b3f64b6.rmeta: crates/apps/src/lib.rs crates/apps/src/arf.rs crates/apps/src/blockmm.rs crates/apps/src/detector.rs crates/apps/src/fir.rs crates/apps/src/matmul.rs crates/apps/src/qrd.rs crates/apps/src/synth.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/arf.rs:
crates/apps/src/blockmm.rs:
crates/apps/src/detector.rs:
crates/apps/src/fir.rs:
crates/apps/src/matmul.rs:
crates/apps/src/qrd.rs:
crates/apps/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
