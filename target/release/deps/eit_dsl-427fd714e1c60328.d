/root/repo/target/release/deps/eit_dsl-427fd714e1c60328.d: crates/dsl/src/lib.rs crates/dsl/src/ctx.rs crates/dsl/src/ops.rs

/root/repo/target/release/deps/libeit_dsl-427fd714e1c60328.rlib: crates/dsl/src/lib.rs crates/dsl/src/ctx.rs crates/dsl/src/ops.rs

/root/repo/target/release/deps/libeit_dsl-427fd714e1c60328.rmeta: crates/dsl/src/lib.rs crates/dsl/src/ctx.rs crates/dsl/src/ops.rs

crates/dsl/src/lib.rs:
crates/dsl/src/ctx.rs:
crates/dsl/src/ops.rs:
