/root/repo/target/release/deps/ablation-de4b0573237a99cb.d: crates/bench/benches/ablation.rs

/root/repo/target/release/deps/ablation-de4b0573237a99cb: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
