/root/repo/target/release/deps/eit-6e9b379fb518ab5b.d: src/lib.rs

/root/repo/target/release/deps/eit-6e9b379fb518ab5b: src/lib.rs

src/lib.rs:
