/root/repo/target/release/deps/proptest-7cc483ee45b38549.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-7cc483ee45b38549.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
