/root/repo/target/release/deps/ir_shapes-552ea9278c056172.d: tests/ir_shapes.rs

/root/repo/target/release/deps/ir_shapes-552ea9278c056172: tests/ir_shapes.rs

tests/ir_shapes.rs:
