/root/repo/target/release/deps/trace_overhead-19d3ee271b2b8353.d: crates/bench/benches/trace_overhead.rs Cargo.toml

/root/repo/target/release/deps/libtrace_overhead-19d3ee271b2b8353.rmeta: crates/bench/benches/trace_overhead.rs Cargo.toml

crates/bench/benches/trace_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
