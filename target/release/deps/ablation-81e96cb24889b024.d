/root/repo/target/release/deps/ablation-81e96cb24889b024.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/release/deps/libablation-81e96cb24889b024.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
