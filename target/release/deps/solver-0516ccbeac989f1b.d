/root/repo/target/release/deps/solver-0516ccbeac989f1b.d: crates/bench/benches/solver.rs

/root/repo/target/release/deps/solver-0516ccbeac989f1b: crates/bench/benches/solver.rs

crates/bench/benches/solver.rs:
