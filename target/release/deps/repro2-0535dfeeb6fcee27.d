/root/repo/target/release/deps/repro2-0535dfeeb6fcee27.d: crates/bench/src/bin/repro2.rs

/root/repo/target/release/deps/repro2-0535dfeeb6fcee27: crates/bench/src/bin/repro2.rs

crates/bench/src/bin/repro2.rs:
