/root/repo/target/release/deps/repro2-2d4b90b6bda4d567.d: crates/bench/src/bin/repro2.rs

/root/repo/target/release/deps/repro2-2d4b90b6bda4d567: crates/bench/src/bin/repro2.rs

crates/bench/src/bin/repro2.rs:
