/root/repo/target/release/deps/pipelining-d4a5c06ccf295533.d: tests/pipelining.rs

/root/repo/target/release/deps/pipelining-d4a5c06ccf295533: tests/pipelining.rs

tests/pipelining.rs:
