/root/repo/target/release/deps/eit-7727ac52ed5a4f6f.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libeit-7727ac52ed5a4f6f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
