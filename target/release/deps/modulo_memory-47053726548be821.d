/root/repo/target/release/deps/modulo_memory-47053726548be821.d: crates/bench/src/bin/modulo_memory.rs

/root/repo/target/release/deps/modulo_memory-47053726548be821: crates/bench/src/bin/modulo_memory.rs

crates/bench/src/bin/modulo_memory.rs:
