/root/repo/target/release/deps/figures-71efd4c7a5adbc6c.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/release/deps/libfigures-71efd4c7a5adbc6c.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
