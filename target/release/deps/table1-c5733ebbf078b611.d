/root/repo/target/release/deps/table1-c5733ebbf078b611.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/release/deps/libtable1-c5733ebbf078b611.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
