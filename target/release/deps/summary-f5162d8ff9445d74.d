/root/repo/target/release/deps/summary-f5162d8ff9445d74.d: crates/bench/src/bin/summary.rs Cargo.toml

/root/repo/target/release/deps/libsummary-f5162d8ff9445d74.rmeta: crates/bench/src/bin/summary.rs Cargo.toml

crates/bench/src/bin/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
