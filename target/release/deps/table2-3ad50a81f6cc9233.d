/root/repo/target/release/deps/table2-3ad50a81f6cc9233.d: crates/bench/benches/table2.rs Cargo.toml

/root/repo/target/release/deps/libtable2-3ad50a81f6cc9233.rmeta: crates/bench/benches/table2.rs Cargo.toml

crates/bench/benches/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
