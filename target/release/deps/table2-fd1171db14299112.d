/root/repo/target/release/deps/table2-fd1171db14299112.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-fd1171db14299112: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
