/root/repo/target/release/deps/eit_cp-ca9e88d519e173b6.d: crates/cp/src/lib.rs crates/cp/src/cancel.rs crates/cp/src/domain.rs crates/cp/src/engine.rs crates/cp/src/eps.rs crates/cp/src/model.rs crates/cp/src/portfolio.rs crates/cp/src/props/mod.rs crates/cp/src/props/alldiff.rs crates/cp/src/props/basic.rs crates/cp/src/props/cumulative.rs crates/cp/src/props/diff2.rs crates/cp/src/props/disjunctive.rs crates/cp/src/props/geometry.rs crates/cp/src/props/linear.rs crates/cp/src/props/reify.rs crates/cp/src/props/table.rs crates/cp/src/search.rs crates/cp/src/store.rs crates/cp/src/trace.rs Cargo.toml

/root/repo/target/release/deps/libeit_cp-ca9e88d519e173b6.rmeta: crates/cp/src/lib.rs crates/cp/src/cancel.rs crates/cp/src/domain.rs crates/cp/src/engine.rs crates/cp/src/eps.rs crates/cp/src/model.rs crates/cp/src/portfolio.rs crates/cp/src/props/mod.rs crates/cp/src/props/alldiff.rs crates/cp/src/props/basic.rs crates/cp/src/props/cumulative.rs crates/cp/src/props/diff2.rs crates/cp/src/props/disjunctive.rs crates/cp/src/props/geometry.rs crates/cp/src/props/linear.rs crates/cp/src/props/reify.rs crates/cp/src/props/table.rs crates/cp/src/search.rs crates/cp/src/store.rs crates/cp/src/trace.rs Cargo.toml

crates/cp/src/lib.rs:
crates/cp/src/cancel.rs:
crates/cp/src/domain.rs:
crates/cp/src/engine.rs:
crates/cp/src/eps.rs:
crates/cp/src/model.rs:
crates/cp/src/portfolio.rs:
crates/cp/src/props/mod.rs:
crates/cp/src/props/alldiff.rs:
crates/cp/src/props/basic.rs:
crates/cp/src/props/cumulative.rs:
crates/cp/src/props/diff2.rs:
crates/cp/src/props/disjunctive.rs:
crates/cp/src/props/geometry.rs:
crates/cp/src/props/linear.rs:
crates/cp/src/props/reify.rs:
crates/cp/src/props/table.rs:
crates/cp/src/search.rs:
crates/cp/src/store.rs:
crates/cp/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
