/root/repo/target/release/deps/differential-6caba8b330c83753.d: crates/cp/tests/differential.rs Cargo.toml

/root/repo/target/release/deps/libdifferential-6caba8b330c83753.rmeta: crates/cp/tests/differential.rs Cargo.toml

crates/cp/tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
