/root/repo/target/release/deps/failure_injection-9152ba9cc316c75c.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-9152ba9cc316c75c: tests/failure_injection.rs

tests/failure_injection.rs:
