/root/repo/target/release/deps/eit-6f09360646868cb6.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libeit-6f09360646868cb6.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
