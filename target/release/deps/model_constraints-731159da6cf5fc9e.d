/root/repo/target/release/deps/model_constraints-731159da6cf5fc9e.d: tests/model_constraints.rs

/root/repo/target/release/deps/model_constraints-731159da6cf5fc9e: tests/model_constraints.rs

tests/model_constraints.rs:
