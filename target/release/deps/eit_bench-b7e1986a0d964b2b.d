/root/repo/target/release/deps/eit_bench-b7e1986a0d964b2b.d: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/metrics.rs Cargo.toml

/root/repo/target/release/deps/libeit_bench-b7e1986a0d964b2b.rmeta: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/metrics.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/json.rs:
crates/bench/src/metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
