/root/repo/target/release/deps/repro2-a4ef47813712bb18.d: crates/bench/src/bin/repro2.rs Cargo.toml

/root/repo/target/release/deps/librepro2-a4ef47813712bb18.rmeta: crates/bench/src/bin/repro2.rs Cargo.toml

crates/bench/src/bin/repro2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
