/root/repo/target/release/deps/modulo_memory-ca3c262adc901372.d: crates/bench/src/bin/modulo_memory.rs Cargo.toml

/root/repo/target/release/deps/libmodulo_memory-ca3c262adc901372.rmeta: crates/bench/src/bin/modulo_memory.rs Cargo.toml

crates/bench/src/bin/modulo_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
