/root/repo/target/release/deps/eit_apps-18c6954c837aecbd.d: crates/apps/src/lib.rs crates/apps/src/arf.rs crates/apps/src/blockmm.rs crates/apps/src/detector.rs crates/apps/src/fir.rs crates/apps/src/matmul.rs crates/apps/src/qrd.rs crates/apps/src/synth.rs

/root/repo/target/release/deps/libeit_apps-18c6954c837aecbd.rlib: crates/apps/src/lib.rs crates/apps/src/arf.rs crates/apps/src/blockmm.rs crates/apps/src/detector.rs crates/apps/src/fir.rs crates/apps/src/matmul.rs crates/apps/src/qrd.rs crates/apps/src/synth.rs

/root/repo/target/release/deps/libeit_apps-18c6954c837aecbd.rmeta: crates/apps/src/lib.rs crates/apps/src/arf.rs crates/apps/src/blockmm.rs crates/apps/src/detector.rs crates/apps/src/fir.rs crates/apps/src/matmul.rs crates/apps/src/qrd.rs crates/apps/src/synth.rs

crates/apps/src/lib.rs:
crates/apps/src/arf.rs:
crates/apps/src/blockmm.rs:
crates/apps/src/detector.rs:
crates/apps/src/fir.rs:
crates/apps/src/matmul.rs:
crates/apps/src/qrd.rs:
crates/apps/src/synth.rs:
