/root/repo/target/release/deps/proptest-7e9b12d4f5e05052.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-7e9b12d4f5e05052: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
