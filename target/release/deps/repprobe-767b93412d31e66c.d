/root/repo/target/release/deps/repprobe-767b93412d31e66c.d: crates/bench/src/bin/repprobe.rs

/root/repo/target/release/deps/repprobe-767b93412d31e66c: crates/bench/src/bin/repprobe.rs

crates/bench/src/bin/repprobe.rs:
