/root/repo/target/release/deps/properties-5262f107e0aa8055.d: tests/properties.rs

/root/repo/target/release/deps/properties-5262f107e0aa8055: tests/properties.rs

tests/properties.rs:
