/root/repo/target/release/deps/scaling-4c506968607520b9.d: crates/bench/src/bin/scaling.rs

/root/repo/target/release/deps/scaling-4c506968607520b9: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
