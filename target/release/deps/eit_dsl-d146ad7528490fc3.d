/root/repo/target/release/deps/eit_dsl-d146ad7528490fc3.d: crates/dsl/src/lib.rs crates/dsl/src/ctx.rs crates/dsl/src/ops.rs Cargo.toml

/root/repo/target/release/deps/libeit_dsl-d146ad7528490fc3.rmeta: crates/dsl/src/lib.rs crates/dsl/src/ctx.rs crates/dsl/src/ops.rs Cargo.toml

crates/dsl/src/lib.rs:
crates/dsl/src/ctx.rs:
crates/dsl/src/ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
