/root/repo/target/release/deps/scaling-e40cbffdaafb326d.d: crates/bench/src/bin/scaling.rs Cargo.toml

/root/repo/target/release/deps/libscaling-e40cbffdaafb326d.rmeta: crates/bench/src/bin/scaling.rs Cargo.toml

crates/bench/src/bin/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
