/root/repo/target/release/deps/metrics_roundtrip-749669ab14adba37.d: crates/bench/tests/metrics_roundtrip.rs

/root/repo/target/release/deps/metrics_roundtrip-749669ab14adba37: crates/bench/tests/metrics_roundtrip.rs

crates/bench/tests/metrics_roundtrip.rs:
