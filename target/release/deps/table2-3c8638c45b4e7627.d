/root/repo/target/release/deps/table2-3c8638c45b4e7627.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/release/deps/libtable2-3c8638c45b4e7627.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
