/root/repo/target/release/deps/eit_core-708f2ebbd5d87d7d.d: crates/core/src/lib.rs crates/core/src/codegen.rs crates/core/src/list_sched.rs crates/core/src/model.rs crates/core/src/modulo.rs crates/core/src/obs.rs crates/core/src/overlap.rs crates/core/src/pipeline.rs crates/core/src/portfolio.rs crates/core/src/replicate.rs Cargo.toml

/root/repo/target/release/deps/libeit_core-708f2ebbd5d87d7d.rmeta: crates/core/src/lib.rs crates/core/src/codegen.rs crates/core/src/list_sched.rs crates/core/src/model.rs crates/core/src/modulo.rs crates/core/src/obs.rs crates/core/src/overlap.rs crates/core/src/pipeline.rs crates/core/src/portfolio.rs crates/core/src/replicate.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/codegen.rs:
crates/core/src/list_sched.rs:
crates/core/src/model.rs:
crates/core/src/modulo.rs:
crates/core/src/obs.rs:
crates/core/src/overlap.rs:
crates/core/src/pipeline.rs:
crates/core/src/portfolio.rs:
crates/core/src/replicate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
