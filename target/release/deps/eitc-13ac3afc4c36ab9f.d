/root/repo/target/release/deps/eitc-13ac3afc4c36ab9f.d: crates/bench/src/bin/eitc.rs Cargo.toml

/root/repo/target/release/deps/libeitc-13ac3afc4c36ab9f.rmeta: crates/bench/src/bin/eitc.rs Cargo.toml

crates/bench/src/bin/eitc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
