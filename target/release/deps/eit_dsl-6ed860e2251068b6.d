/root/repo/target/release/deps/eit_dsl-6ed860e2251068b6.d: crates/dsl/src/lib.rs crates/dsl/src/ctx.rs crates/dsl/src/ops.rs

/root/repo/target/release/deps/eit_dsl-6ed860e2251068b6: crates/dsl/src/lib.rs crates/dsl/src/ctx.rs crates/dsl/src/ops.rs

crates/dsl/src/lib.rs:
crates/dsl/src/ctx.rs:
crates/dsl/src/ops.rs:
