/root/repo/target/release/deps/differential-ad571ec5ed243b97.d: crates/cp/tests/differential.rs

/root/repo/target/release/deps/differential-ad571ec5ed243b97: crates/cp/tests/differential.rs

crates/cp/tests/differential.rs:
