/root/repo/target/release/deps/trace_events-2918419d97d22d74.d: crates/cp/tests/trace_events.rs Cargo.toml

/root/repo/target/release/deps/libtrace_events-2918419d97d22d74.rmeta: crates/cp/tests/trace_events.rs Cargo.toml

crates/cp/tests/trace_events.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
