/root/repo/target/release/deps/pipelining-b002bc589b7d2fbc.d: tests/pipelining.rs Cargo.toml

/root/repo/target/release/deps/libpipelining-b002bc589b7d2fbc.rmeta: tests/pipelining.rs Cargo.toml

tests/pipelining.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
