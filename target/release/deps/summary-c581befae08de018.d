/root/repo/target/release/deps/summary-c581befae08de018.d: crates/bench/src/bin/summary.rs

/root/repo/target/release/deps/summary-c581befae08de018: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
