/root/repo/target/release/examples/design_space-d1c008fa4516259a.d: examples/design_space.rs Cargo.toml

/root/repo/target/release/examples/libdesign_space-d1c008fa4516259a.rmeta: examples/design_space.rs Cargo.toml

examples/design_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
