/root/repo/target/release/examples/streaming_pipeline-6349f1280db09f82.d: examples/streaming_pipeline.rs Cargo.toml

/root/repo/target/release/examples/libstreaming_pipeline-6349f1280db09f82.rmeta: examples/streaming_pipeline.rs Cargo.toml

examples/streaming_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
