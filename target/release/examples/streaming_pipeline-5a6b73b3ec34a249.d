/root/repo/target/release/examples/streaming_pipeline-5a6b73b3ec34a249.d: examples/streaming_pipeline.rs

/root/repo/target/release/examples/streaming_pipeline-5a6b73b3ec34a249: examples/streaming_pipeline.rs

examples/streaming_pipeline.rs:
