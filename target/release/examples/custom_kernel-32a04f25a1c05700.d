/root/repo/target/release/examples/custom_kernel-32a04f25a1c05700.d: examples/custom_kernel.rs Cargo.toml

/root/repo/target/release/examples/libcustom_kernel-32a04f25a1c05700.rmeta: examples/custom_kernel.rs Cargo.toml

examples/custom_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
