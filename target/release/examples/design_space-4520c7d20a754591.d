/root/repo/target/release/examples/design_space-4520c7d20a754591.d: examples/design_space.rs

/root/repo/target/release/examples/design_space-4520c7d20a754591: examples/design_space.rs

examples/design_space.rs:
