/root/repo/target/release/examples/custom_kernel-4965f91eb7e27559.d: examples/custom_kernel.rs

/root/repo/target/release/examples/custom_kernel-4965f91eb7e27559: examples/custom_kernel.rs

examples/custom_kernel.rs:
