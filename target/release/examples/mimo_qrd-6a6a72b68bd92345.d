/root/repo/target/release/examples/mimo_qrd-6a6a72b68bd92345.d: examples/mimo_qrd.rs

/root/repo/target/release/examples/mimo_qrd-6a6a72b68bd92345: examples/mimo_qrd.rs

examples/mimo_qrd.rs:
