/root/repo/target/release/examples/mimo_qrd-842249a0052b5572.d: examples/mimo_qrd.rs Cargo.toml

/root/repo/target/release/examples/libmimo_qrd-842249a0052b5572.rmeta: examples/mimo_qrd.rs Cargo.toml

examples/mimo_qrd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
