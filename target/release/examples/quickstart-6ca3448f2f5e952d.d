/root/repo/target/release/examples/quickstart-6ca3448f2f5e952d.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-6ca3448f2f5e952d: examples/quickstart.rs

examples/quickstart.rs:
