/root/repo/target/release/examples/quickstart-1e94ef9579b9f862.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-1e94ef9579b9f862.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
