/root/repo/target/debug/examples/custom_kernel-46ab35a4519ce8f0.d: examples/custom_kernel.rs

/root/repo/target/debug/examples/custom_kernel-46ab35a4519ce8f0: examples/custom_kernel.rs

examples/custom_kernel.rs:
