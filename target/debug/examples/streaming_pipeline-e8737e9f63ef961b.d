/root/repo/target/debug/examples/streaming_pipeline-e8737e9f63ef961b.d: examples/streaming_pipeline.rs

/root/repo/target/debug/examples/streaming_pipeline-e8737e9f63ef961b: examples/streaming_pipeline.rs

examples/streaming_pipeline.rs:
