/root/repo/target/debug/examples/mimo_qrd-1b16c76c289ba559.d: examples/mimo_qrd.rs

/root/repo/target/debug/examples/mimo_qrd-1b16c76c289ba559: examples/mimo_qrd.rs

examples/mimo_qrd.rs:
