/root/repo/target/debug/examples/mimo_qrd-ca674ece260c3398.d: examples/mimo_qrd.rs Cargo.toml

/root/repo/target/debug/examples/libmimo_qrd-ca674ece260c3398.rmeta: examples/mimo_qrd.rs Cargo.toml

examples/mimo_qrd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
