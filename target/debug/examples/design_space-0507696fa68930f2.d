/root/repo/target/debug/examples/design_space-0507696fa68930f2.d: examples/design_space.rs

/root/repo/target/debug/examples/design_space-0507696fa68930f2: examples/design_space.rs

examples/design_space.rs:
