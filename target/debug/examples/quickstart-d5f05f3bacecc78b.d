/root/repo/target/debug/examples/quickstart-d5f05f3bacecc78b.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-d5f05f3bacecc78b.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
