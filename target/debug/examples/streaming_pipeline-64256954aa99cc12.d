/root/repo/target/debug/examples/streaming_pipeline-64256954aa99cc12.d: examples/streaming_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libstreaming_pipeline-64256954aa99cc12.rmeta: examples/streaming_pipeline.rs Cargo.toml

examples/streaming_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
