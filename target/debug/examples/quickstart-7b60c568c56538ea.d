/root/repo/target/debug/examples/quickstart-7b60c568c56538ea.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7b60c568c56538ea: examples/quickstart.rs

examples/quickstart.rs:
