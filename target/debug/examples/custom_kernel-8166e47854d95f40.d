/root/repo/target/debug/examples/custom_kernel-8166e47854d95f40.d: examples/custom_kernel.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_kernel-8166e47854d95f40.rmeta: examples/custom_kernel.rs Cargo.toml

examples/custom_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
