/root/repo/target/debug/deps/eitc-afb6eca9a13056b0.d: crates/bench/src/bin/eitc.rs Cargo.toml

/root/repo/target/debug/deps/libeitc-afb6eca9a13056b0.rmeta: crates/bench/src/bin/eitc.rs Cargo.toml

crates/bench/src/bin/eitc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
