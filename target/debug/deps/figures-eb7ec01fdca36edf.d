/root/repo/target/debug/deps/figures-eb7ec01fdca36edf.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-eb7ec01fdca36edf: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
