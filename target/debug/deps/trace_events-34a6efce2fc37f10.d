/root/repo/target/debug/deps/trace_events-34a6efce2fc37f10.d: crates/cp/tests/trace_events.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_events-34a6efce2fc37f10.rmeta: crates/cp/tests/trace_events.rs Cargo.toml

crates/cp/tests/trace_events.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
