/root/repo/target/debug/deps/table3-66e5cdca36977512.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-66e5cdca36977512: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
