/root/repo/target/debug/deps/eit_apps-ff685c250c621272.d: crates/apps/src/lib.rs crates/apps/src/arf.rs crates/apps/src/blockmm.rs crates/apps/src/detector.rs crates/apps/src/fir.rs crates/apps/src/matmul.rs crates/apps/src/qrd.rs crates/apps/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libeit_apps-ff685c250c621272.rmeta: crates/apps/src/lib.rs crates/apps/src/arf.rs crates/apps/src/blockmm.rs crates/apps/src/detector.rs crates/apps/src/fir.rs crates/apps/src/matmul.rs crates/apps/src/qrd.rs crates/apps/src/synth.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/arf.rs:
crates/apps/src/blockmm.rs:
crates/apps/src/detector.rs:
crates/apps/src/fir.rs:
crates/apps/src/matmul.rs:
crates/apps/src/qrd.rs:
crates/apps/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
