/root/repo/target/debug/deps/eit_dsl-6119823a058f441e.d: crates/dsl/src/lib.rs crates/dsl/src/ctx.rs crates/dsl/src/ops.rs

/root/repo/target/debug/deps/eit_dsl-6119823a058f441e: crates/dsl/src/lib.rs crates/dsl/src/ctx.rs crates/dsl/src/ops.rs

crates/dsl/src/lib.rs:
crates/dsl/src/ctx.rs:
crates/dsl/src/ops.rs:
