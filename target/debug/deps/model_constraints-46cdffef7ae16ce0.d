/root/repo/target/debug/deps/model_constraints-46cdffef7ae16ce0.d: tests/model_constraints.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_constraints-46cdffef7ae16ce0.rmeta: tests/model_constraints.rs Cargo.toml

tests/model_constraints.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
