/root/repo/target/debug/deps/differential-a354234e6467d1d3.d: crates/cp/tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-a354234e6467d1d3.rmeta: crates/cp/tests/differential.rs Cargo.toml

crates/cp/tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
