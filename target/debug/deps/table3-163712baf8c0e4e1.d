/root/repo/target/debug/deps/table3-163712baf8c0e4e1.d: crates/bench/benches/table3.rs

/root/repo/target/debug/deps/table3-163712baf8c0e4e1: crates/bench/benches/table3.rs

crates/bench/benches/table3.rs:
