/root/repo/target/debug/deps/scaling-e70ccb5d8bd1b857.d: crates/bench/src/bin/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-e70ccb5d8bd1b857.rmeta: crates/bench/src/bin/scaling.rs Cargo.toml

crates/bench/src/bin/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
