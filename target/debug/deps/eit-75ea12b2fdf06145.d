/root/repo/target/debug/deps/eit-75ea12b2fdf06145.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libeit-75ea12b2fdf06145.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
