/root/repo/target/debug/deps/eit_ir-c04e374fd9240b84.d: crates/ir/src/lib.rs crates/ir/src/cplx.rs crates/ir/src/dot.rs crates/ir/src/graph.rs crates/ir/src/latency.rs crates/ir/src/node.rs crates/ir/src/passes/mod.rs crates/ir/src/passes/cse.rs crates/ir/src/passes/dce.rs crates/ir/src/passes/merge.rs crates/ir/src/sem.rs crates/ir/src/xml.rs

/root/repo/target/debug/deps/libeit_ir-c04e374fd9240b84.rlib: crates/ir/src/lib.rs crates/ir/src/cplx.rs crates/ir/src/dot.rs crates/ir/src/graph.rs crates/ir/src/latency.rs crates/ir/src/node.rs crates/ir/src/passes/mod.rs crates/ir/src/passes/cse.rs crates/ir/src/passes/dce.rs crates/ir/src/passes/merge.rs crates/ir/src/sem.rs crates/ir/src/xml.rs

/root/repo/target/debug/deps/libeit_ir-c04e374fd9240b84.rmeta: crates/ir/src/lib.rs crates/ir/src/cplx.rs crates/ir/src/dot.rs crates/ir/src/graph.rs crates/ir/src/latency.rs crates/ir/src/node.rs crates/ir/src/passes/mod.rs crates/ir/src/passes/cse.rs crates/ir/src/passes/dce.rs crates/ir/src/passes/merge.rs crates/ir/src/sem.rs crates/ir/src/xml.rs

crates/ir/src/lib.rs:
crates/ir/src/cplx.rs:
crates/ir/src/dot.rs:
crates/ir/src/graph.rs:
crates/ir/src/latency.rs:
crates/ir/src/node.rs:
crates/ir/src/passes/mod.rs:
crates/ir/src/passes/cse.rs:
crates/ir/src/passes/dce.rs:
crates/ir/src/passes/merge.rs:
crates/ir/src/sem.rs:
crates/ir/src/xml.rs:
