/root/repo/target/debug/deps/metrics_roundtrip-784232602a45b53f.d: crates/bench/tests/metrics_roundtrip.rs

/root/repo/target/debug/deps/metrics_roundtrip-784232602a45b53f: crates/bench/tests/metrics_roundtrip.rs

crates/bench/tests/metrics_roundtrip.rs:
