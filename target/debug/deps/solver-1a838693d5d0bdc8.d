/root/repo/target/debug/deps/solver-1a838693d5d0bdc8.d: crates/bench/benches/solver.rs Cargo.toml

/root/repo/target/debug/deps/libsolver-1a838693d5d0bdc8.rmeta: crates/bench/benches/solver.rs Cargo.toml

crates/bench/benches/solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
