/root/repo/target/debug/deps/eit_arch-0dd48b3a0c7d14df.d: crates/arch/src/lib.rs crates/arch/src/code.rs crates/arch/src/gantt.rs crates/arch/src/memory.rs crates/arch/src/persist.rs crates/arch/src/schedule.rs crates/arch/src/sim.rs crates/arch/src/spec.rs crates/arch/src/vcd.rs Cargo.toml

/root/repo/target/debug/deps/libeit_arch-0dd48b3a0c7d14df.rmeta: crates/arch/src/lib.rs crates/arch/src/code.rs crates/arch/src/gantt.rs crates/arch/src/memory.rs crates/arch/src/persist.rs crates/arch/src/schedule.rs crates/arch/src/sim.rs crates/arch/src/spec.rs crates/arch/src/vcd.rs Cargo.toml

crates/arch/src/lib.rs:
crates/arch/src/code.rs:
crates/arch/src/gantt.rs:
crates/arch/src/memory.rs:
crates/arch/src/persist.rs:
crates/arch/src/schedule.rs:
crates/arch/src/sim.rs:
crates/arch/src/spec.rs:
crates/arch/src/vcd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
