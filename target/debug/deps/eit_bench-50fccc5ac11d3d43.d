/root/repo/target/debug/deps/eit_bench-50fccc5ac11d3d43.d: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/metrics.rs Cargo.toml

/root/repo/target/debug/deps/libeit_bench-50fccc5ac11d3d43.rmeta: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/metrics.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/json.rs:
crates/bench/src/metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
