/root/repo/target/debug/deps/scaling-1df22d4a94371b49.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-1df22d4a94371b49: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
