/root/repo/target/debug/deps/eit_arch-ba1d77d465638d66.d: crates/arch/src/lib.rs crates/arch/src/code.rs crates/arch/src/gantt.rs crates/arch/src/memory.rs crates/arch/src/persist.rs crates/arch/src/schedule.rs crates/arch/src/sim.rs crates/arch/src/spec.rs crates/arch/src/vcd.rs

/root/repo/target/debug/deps/eit_arch-ba1d77d465638d66: crates/arch/src/lib.rs crates/arch/src/code.rs crates/arch/src/gantt.rs crates/arch/src/memory.rs crates/arch/src/persist.rs crates/arch/src/schedule.rs crates/arch/src/sim.rs crates/arch/src/spec.rs crates/arch/src/vcd.rs

crates/arch/src/lib.rs:
crates/arch/src/code.rs:
crates/arch/src/gantt.rs:
crates/arch/src/memory.rs:
crates/arch/src/persist.rs:
crates/arch/src/schedule.rs:
crates/arch/src/sim.rs:
crates/arch/src/spec.rs:
crates/arch/src/vcd.rs:
