/root/repo/target/debug/deps/ir_shapes-87a0abd07a593910.d: tests/ir_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libir_shapes-87a0abd07a593910.rmeta: tests/ir_shapes.rs Cargo.toml

tests/ir_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
