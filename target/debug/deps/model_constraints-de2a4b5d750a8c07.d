/root/repo/target/debug/deps/model_constraints-de2a4b5d750a8c07.d: tests/model_constraints.rs

/root/repo/target/debug/deps/model_constraints-de2a4b5d750a8c07: tests/model_constraints.rs

tests/model_constraints.rs:
