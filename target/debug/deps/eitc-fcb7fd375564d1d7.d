/root/repo/target/debug/deps/eitc-fcb7fd375564d1d7.d: crates/bench/src/bin/eitc.rs

/root/repo/target/debug/deps/eitc-fcb7fd375564d1d7: crates/bench/src/bin/eitc.rs

crates/bench/src/bin/eitc.rs:
