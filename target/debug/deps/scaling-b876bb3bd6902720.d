/root/repo/target/debug/deps/scaling-b876bb3bd6902720.d: crates/bench/src/bin/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-b876bb3bd6902720.rmeta: crates/bench/src/bin/scaling.rs Cargo.toml

crates/bench/src/bin/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
