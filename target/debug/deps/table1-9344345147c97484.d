/root/repo/target/debug/deps/table1-9344345147c97484.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-9344345147c97484: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
