/root/repo/target/debug/deps/eit_core-f84df00af635d051.d: crates/core/src/lib.rs crates/core/src/codegen.rs crates/core/src/list_sched.rs crates/core/src/model.rs crates/core/src/modulo.rs crates/core/src/obs.rs crates/core/src/overlap.rs crates/core/src/pipeline.rs crates/core/src/portfolio.rs crates/core/src/replicate.rs Cargo.toml

/root/repo/target/debug/deps/libeit_core-f84df00af635d051.rmeta: crates/core/src/lib.rs crates/core/src/codegen.rs crates/core/src/list_sched.rs crates/core/src/model.rs crates/core/src/modulo.rs crates/core/src/obs.rs crates/core/src/overlap.rs crates/core/src/pipeline.rs crates/core/src/portfolio.rs crates/core/src/replicate.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/codegen.rs:
crates/core/src/list_sched.rs:
crates/core/src/model.rs:
crates/core/src/modulo.rs:
crates/core/src/obs.rs:
crates/core/src/overlap.rs:
crates/core/src/pipeline.rs:
crates/core/src/portfolio.rs:
crates/core/src/replicate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
