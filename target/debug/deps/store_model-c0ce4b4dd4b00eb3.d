/root/repo/target/debug/deps/store_model-c0ce4b4dd4b00eb3.d: crates/cp/tests/store_model.rs Cargo.toml

/root/repo/target/debug/deps/libstore_model-c0ce4b4dd4b00eb3.rmeta: crates/cp/tests/store_model.rs Cargo.toml

crates/cp/tests/store_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
