/root/repo/target/debug/deps/eit_bench-81fb06e828ecf9d0.d: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/metrics.rs

/root/repo/target/debug/deps/libeit_bench-81fb06e828ecf9d0.rlib: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/metrics.rs

/root/repo/target/debug/deps/libeit_bench-81fb06e828ecf9d0.rmeta: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/metrics.rs

crates/bench/src/lib.rs:
crates/bench/src/json.rs:
crates/bench/src/metrics.rs:
