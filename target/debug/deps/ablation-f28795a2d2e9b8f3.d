/root/repo/target/debug/deps/ablation-f28795a2d2e9b8f3.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-f28795a2d2e9b8f3.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
