/root/repo/target/debug/deps/failure_injection-ae0bf2aecabaab88.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-ae0bf2aecabaab88: tests/failure_injection.rs

tests/failure_injection.rs:
