/root/repo/target/debug/deps/modulo_memory-645520b7b1cfd7f3.d: crates/bench/src/bin/modulo_memory.rs Cargo.toml

/root/repo/target/debug/deps/libmodulo_memory-645520b7b1cfd7f3.rmeta: crates/bench/src/bin/modulo_memory.rs Cargo.toml

crates/bench/src/bin/modulo_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
