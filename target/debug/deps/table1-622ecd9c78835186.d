/root/repo/target/debug/deps/table1-622ecd9c78835186.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-622ecd9c78835186: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
