/root/repo/target/debug/deps/scaling-19c51edce4df40dc.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-19c51edce4df40dc: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
