/root/repo/target/debug/deps/eitc-c8481d879831b8a7.d: crates/bench/src/bin/eitc.rs Cargo.toml

/root/repo/target/debug/deps/libeitc-c8481d879831b8a7.rmeta: crates/bench/src/bin/eitc.rs Cargo.toml

crates/bench/src/bin/eitc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
