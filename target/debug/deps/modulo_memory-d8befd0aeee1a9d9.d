/root/repo/target/debug/deps/modulo_memory-d8befd0aeee1a9d9.d: crates/bench/src/bin/modulo_memory.rs

/root/repo/target/debug/deps/modulo_memory-d8befd0aeee1a9d9: crates/bench/src/bin/modulo_memory.rs

crates/bench/src/bin/modulo_memory.rs:
