/root/repo/target/debug/deps/eit-23a50e53a3846013.d: src/lib.rs

/root/repo/target/debug/deps/eit-23a50e53a3846013: src/lib.rs

src/lib.rs:
