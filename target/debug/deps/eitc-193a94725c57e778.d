/root/repo/target/debug/deps/eitc-193a94725c57e778.d: crates/bench/src/bin/eitc.rs

/root/repo/target/debug/deps/eitc-193a94725c57e778: crates/bench/src/bin/eitc.rs

crates/bench/src/bin/eitc.rs:
