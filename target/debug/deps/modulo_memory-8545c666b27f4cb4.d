/root/repo/target/debug/deps/modulo_memory-8545c666b27f4cb4.d: crates/bench/src/bin/modulo_memory.rs Cargo.toml

/root/repo/target/debug/deps/libmodulo_memory-8545c666b27f4cb4.rmeta: crates/bench/src/bin/modulo_memory.rs Cargo.toml

crates/bench/src/bin/modulo_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
