/root/repo/target/debug/deps/eit_apps-a56c21e2a960ff22.d: crates/apps/src/lib.rs crates/apps/src/arf.rs crates/apps/src/blockmm.rs crates/apps/src/detector.rs crates/apps/src/fir.rs crates/apps/src/matmul.rs crates/apps/src/qrd.rs crates/apps/src/synth.rs

/root/repo/target/debug/deps/libeit_apps-a56c21e2a960ff22.rlib: crates/apps/src/lib.rs crates/apps/src/arf.rs crates/apps/src/blockmm.rs crates/apps/src/detector.rs crates/apps/src/fir.rs crates/apps/src/matmul.rs crates/apps/src/qrd.rs crates/apps/src/synth.rs

/root/repo/target/debug/deps/libeit_apps-a56c21e2a960ff22.rmeta: crates/apps/src/lib.rs crates/apps/src/arf.rs crates/apps/src/blockmm.rs crates/apps/src/detector.rs crates/apps/src/fir.rs crates/apps/src/matmul.rs crates/apps/src/qrd.rs crates/apps/src/synth.rs

crates/apps/src/lib.rs:
crates/apps/src/arf.rs:
crates/apps/src/blockmm.rs:
crates/apps/src/detector.rs:
crates/apps/src/fir.rs:
crates/apps/src/matmul.rs:
crates/apps/src/qrd.rs:
crates/apps/src/synth.rs:
