/root/repo/target/debug/deps/table3-226644761217588f.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-226644761217588f: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
