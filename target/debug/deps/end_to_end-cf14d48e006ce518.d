/root/repo/target/debug/deps/end_to_end-cf14d48e006ce518.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-cf14d48e006ce518: tests/end_to_end.rs

tests/end_to_end.rs:
