/root/repo/target/debug/deps/solver-235e248e216e8c9f.d: crates/bench/benches/solver.rs

/root/repo/target/debug/deps/solver-235e248e216e8c9f: crates/bench/benches/solver.rs

crates/bench/benches/solver.rs:
