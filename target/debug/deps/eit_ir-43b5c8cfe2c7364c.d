/root/repo/target/debug/deps/eit_ir-43b5c8cfe2c7364c.d: crates/ir/src/lib.rs crates/ir/src/cplx.rs crates/ir/src/dot.rs crates/ir/src/graph.rs crates/ir/src/latency.rs crates/ir/src/node.rs crates/ir/src/passes/mod.rs crates/ir/src/passes/cse.rs crates/ir/src/passes/dce.rs crates/ir/src/passes/merge.rs crates/ir/src/sem.rs crates/ir/src/xml.rs Cargo.toml

/root/repo/target/debug/deps/libeit_ir-43b5c8cfe2c7364c.rmeta: crates/ir/src/lib.rs crates/ir/src/cplx.rs crates/ir/src/dot.rs crates/ir/src/graph.rs crates/ir/src/latency.rs crates/ir/src/node.rs crates/ir/src/passes/mod.rs crates/ir/src/passes/cse.rs crates/ir/src/passes/dce.rs crates/ir/src/passes/merge.rs crates/ir/src/sem.rs crates/ir/src/xml.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/cplx.rs:
crates/ir/src/dot.rs:
crates/ir/src/graph.rs:
crates/ir/src/latency.rs:
crates/ir/src/node.rs:
crates/ir/src/passes/mod.rs:
crates/ir/src/passes/cse.rs:
crates/ir/src/passes/dce.rs:
crates/ir/src/passes/merge.rs:
crates/ir/src/sem.rs:
crates/ir/src/xml.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
