/root/repo/target/debug/deps/table2-327d0c5c9e4e9e78.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-327d0c5c9e4e9e78: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
