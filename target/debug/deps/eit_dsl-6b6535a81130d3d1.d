/root/repo/target/debug/deps/eit_dsl-6b6535a81130d3d1.d: crates/dsl/src/lib.rs crates/dsl/src/ctx.rs crates/dsl/src/ops.rs

/root/repo/target/debug/deps/libeit_dsl-6b6535a81130d3d1.rlib: crates/dsl/src/lib.rs crates/dsl/src/ctx.rs crates/dsl/src/ops.rs

/root/repo/target/debug/deps/libeit_dsl-6b6535a81130d3d1.rmeta: crates/dsl/src/lib.rs crates/dsl/src/ctx.rs crates/dsl/src/ops.rs

crates/dsl/src/lib.rs:
crates/dsl/src/ctx.rs:
crates/dsl/src/ops.rs:
