/root/repo/target/debug/deps/differential-991d8514afc264a8.d: crates/cp/tests/differential.rs

/root/repo/target/debug/deps/differential-991d8514afc264a8: crates/cp/tests/differential.rs

crates/cp/tests/differential.rs:
