/root/repo/target/debug/deps/figures-bcd7f724be233169.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-bcd7f724be233169: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
