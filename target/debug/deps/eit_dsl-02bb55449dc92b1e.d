/root/repo/target/debug/deps/eit_dsl-02bb55449dc92b1e.d: crates/dsl/src/lib.rs crates/dsl/src/ctx.rs crates/dsl/src/ops.rs Cargo.toml

/root/repo/target/debug/deps/libeit_dsl-02bb55449dc92b1e.rmeta: crates/dsl/src/lib.rs crates/dsl/src/ctx.rs crates/dsl/src/ops.rs Cargo.toml

crates/dsl/src/lib.rs:
crates/dsl/src/ctx.rs:
crates/dsl/src/ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
