/root/repo/target/debug/deps/pipelining-c8c7b29082fd1c86.d: tests/pipelining.rs

/root/repo/target/debug/deps/pipelining-c8c7b29082fd1c86: tests/pipelining.rs

tests/pipelining.rs:
