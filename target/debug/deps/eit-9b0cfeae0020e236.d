/root/repo/target/debug/deps/eit-9b0cfeae0020e236.d: src/lib.rs

/root/repo/target/debug/deps/libeit-9b0cfeae0020e236.rlib: src/lib.rs

/root/repo/target/debug/deps/libeit-9b0cfeae0020e236.rmeta: src/lib.rs

src/lib.rs:
