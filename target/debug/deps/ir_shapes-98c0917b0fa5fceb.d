/root/repo/target/debug/deps/ir_shapes-98c0917b0fa5fceb.d: tests/ir_shapes.rs

/root/repo/target/debug/deps/ir_shapes-98c0917b0fa5fceb: tests/ir_shapes.rs

tests/ir_shapes.rs:
