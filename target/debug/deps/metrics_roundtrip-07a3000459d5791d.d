/root/repo/target/debug/deps/metrics_roundtrip-07a3000459d5791d.d: crates/bench/tests/metrics_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libmetrics_roundtrip-07a3000459d5791d.rmeta: crates/bench/tests/metrics_roundtrip.rs Cargo.toml

crates/bench/tests/metrics_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
