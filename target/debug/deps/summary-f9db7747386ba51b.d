/root/repo/target/debug/deps/summary-f9db7747386ba51b.d: crates/bench/src/bin/summary.rs

/root/repo/target/debug/deps/summary-f9db7747386ba51b: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
