/root/repo/target/debug/deps/pipelining-53bc0b935adaa1e5.d: tests/pipelining.rs Cargo.toml

/root/repo/target/debug/deps/libpipelining-53bc0b935adaa1e5.rmeta: tests/pipelining.rs Cargo.toml

tests/pipelining.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
