/root/repo/target/debug/deps/modulo_memory-dd80b6dbe689d7b5.d: crates/bench/src/bin/modulo_memory.rs

/root/repo/target/debug/deps/modulo_memory-dd80b6dbe689d7b5: crates/bench/src/bin/modulo_memory.rs

crates/bench/src/bin/modulo_memory.rs:
