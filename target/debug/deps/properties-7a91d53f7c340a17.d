/root/repo/target/debug/deps/properties-7a91d53f7c340a17.d: tests/properties.rs

/root/repo/target/debug/deps/properties-7a91d53f7c340a17: tests/properties.rs

tests/properties.rs:
