/root/repo/target/debug/deps/trace_events-79e259f3616ef1e0.d: crates/cp/tests/trace_events.rs

/root/repo/target/debug/deps/trace_events-79e259f3616ef1e0: crates/cp/tests/trace_events.rs

crates/cp/tests/trace_events.rs:
