/root/repo/target/debug/deps/ablation-7eb939440e7eea7b.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/ablation-7eb939440e7eea7b: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
