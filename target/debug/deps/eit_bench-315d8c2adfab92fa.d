/root/repo/target/debug/deps/eit_bench-315d8c2adfab92fa.d: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/metrics.rs

/root/repo/target/debug/deps/eit_bench-315d8c2adfab92fa: crates/bench/src/lib.rs crates/bench/src/json.rs crates/bench/src/metrics.rs

crates/bench/src/lib.rs:
crates/bench/src/json.rs:
crates/bench/src/metrics.rs:
