/root/repo/target/debug/deps/properties-14575df013467c8f.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-14575df013467c8f.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
