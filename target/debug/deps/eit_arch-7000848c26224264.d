/root/repo/target/debug/deps/eit_arch-7000848c26224264.d: crates/arch/src/lib.rs crates/arch/src/code.rs crates/arch/src/gantt.rs crates/arch/src/memory.rs crates/arch/src/persist.rs crates/arch/src/schedule.rs crates/arch/src/sim.rs crates/arch/src/spec.rs crates/arch/src/vcd.rs

/root/repo/target/debug/deps/libeit_arch-7000848c26224264.rlib: crates/arch/src/lib.rs crates/arch/src/code.rs crates/arch/src/gantt.rs crates/arch/src/memory.rs crates/arch/src/persist.rs crates/arch/src/schedule.rs crates/arch/src/sim.rs crates/arch/src/spec.rs crates/arch/src/vcd.rs

/root/repo/target/debug/deps/libeit_arch-7000848c26224264.rmeta: crates/arch/src/lib.rs crates/arch/src/code.rs crates/arch/src/gantt.rs crates/arch/src/memory.rs crates/arch/src/persist.rs crates/arch/src/schedule.rs crates/arch/src/sim.rs crates/arch/src/spec.rs crates/arch/src/vcd.rs

crates/arch/src/lib.rs:
crates/arch/src/code.rs:
crates/arch/src/gantt.rs:
crates/arch/src/memory.rs:
crates/arch/src/persist.rs:
crates/arch/src/schedule.rs:
crates/arch/src/sim.rs:
crates/arch/src/spec.rs:
crates/arch/src/vcd.rs:
