/root/repo/target/debug/deps/trace_overhead-b6f5006b0ce300f0.d: crates/bench/benches/trace_overhead.rs

/root/repo/target/debug/deps/trace_overhead-b6f5006b0ce300f0: crates/bench/benches/trace_overhead.rs

crates/bench/benches/trace_overhead.rs:
