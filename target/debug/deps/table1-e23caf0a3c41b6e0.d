/root/repo/target/debug/deps/table1-e23caf0a3c41b6e0.d: crates/bench/benches/table1.rs

/root/repo/target/debug/deps/table1-e23caf0a3c41b6e0: crates/bench/benches/table1.rs

crates/bench/benches/table1.rs:
