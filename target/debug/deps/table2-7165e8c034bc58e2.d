/root/repo/target/debug/deps/table2-7165e8c034bc58e2.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-7165e8c034bc58e2: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
