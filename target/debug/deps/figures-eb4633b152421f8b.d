/root/repo/target/debug/deps/figures-eb4633b152421f8b.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-eb4633b152421f8b.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
