/root/repo/target/debug/deps/eit-14a02b922a8d223c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libeit-14a02b922a8d223c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
