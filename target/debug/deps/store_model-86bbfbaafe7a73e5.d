/root/repo/target/debug/deps/store_model-86bbfbaafe7a73e5.d: crates/cp/tests/store_model.rs

/root/repo/target/debug/deps/store_model-86bbfbaafe7a73e5: crates/cp/tests/store_model.rs

crates/cp/tests/store_model.rs:
