/root/repo/target/debug/deps/table2-95494db8eee0ea4d.d: crates/bench/benches/table2.rs

/root/repo/target/debug/deps/table2-95494db8eee0ea4d: crates/bench/benches/table2.rs

crates/bench/benches/table2.rs:
