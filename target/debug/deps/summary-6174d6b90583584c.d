/root/repo/target/debug/deps/summary-6174d6b90583584c.d: crates/bench/src/bin/summary.rs

/root/repo/target/debug/deps/summary-6174d6b90583584c: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
