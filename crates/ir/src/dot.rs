//! Graphviz DOT rendering of the IR — the visualisation the paper's
//! figures 3–5 show (ovals for operations, boxes for data nodes).

use crate::graph::Graph;
use crate::node::NodeKind;

/// Render the graph in Graphviz DOT syntax. Operation nodes are ovals,
/// data nodes are boxes (the paper's drawing convention); application
/// inputs are shaded.
pub fn to_dot(g: &Graph) -> String {
    let mut out = String::new();
    out.push_str("digraph \"");
    out.push_str(&g.name.replace('"', "'"));
    out.push_str("\" {\n  rankdir=TB;\n");
    for id in g.ids() {
        let node = g.node(id);
        let (shape, extra) = match node.kind {
            NodeKind::Op(_) => ("ellipse", ""),
            NodeKind::Data(_) => {
                if g.preds(id).is_empty() {
                    ("box", ", style=filled, fillcolor=lightgrey")
                } else {
                    ("box", "")
                }
            }
        };
        let label = if node.name.is_empty() {
            format!("{:?}", g.category(id))
        } else {
            node.name.replace('"', "'")
        };
        out.push_str(&format!(
            "  n{} [label=\"{}\", shape={shape}{extra}];\n",
            id.0, label
        ));
    }
    for (f, t) in g.edges() {
        out.push_str(&format!("  n{} -> n{};\n", f.0, t.0));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{CoreOp, DataKind, Opcode};

    #[test]
    fn dot_output_is_well_formed() {
        let mut g = Graph::new("fig3 \"demo\"");
        let a = g.add_data(DataKind::Vector, "v1");
        let b = g.add_data(DataKind::Vector, "v2");
        let (_, d) = g.add_op_with_output(
            Opcode::vector(CoreOp::DotP),
            &[a, b],
            DataKind::Scalar,
            "v_dotp",
        );
        let _ = d;
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        // Ovals for ops, boxes for data, shaded inputs.
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("shape=box, style=filled"));
        // All edges present.
        assert_eq!(dot.matches(" -> ").count(), g.edge_count());
        // Quotes in names are sanitised.
        assert!(!dot.contains("\"fig3 \"demo\"\""));
    }

    #[test]
    fn every_node_rendered_once() {
        let k_nodes = 10;
        let mut g = Graph::new("t");
        let mut prev = g.add_data(DataKind::Scalar, "s0");
        for i in 0..(k_nodes - 1) / 2 {
            let (_, d) = g.add_op_with_output(
                Opcode::Scalar(crate::node::ScalarOp::Neg),
                &[prev],
                DataKind::Scalar,
                &format!("n{i}"),
            );
            prev = d;
        }
        let dot = to_dot(&g);
        for id in g.ids() {
            assert!(dot.contains(&format!("n{} [", id.0)));
        }
    }
}
