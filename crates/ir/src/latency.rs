//! Latency and duration annotation (§3.3 of the paper).
//!
//! Every node gets two numbers: *latency* `l_i` — cycles from issue until
//! the result is usable — and *duration* `d_i` — cycles the node occupies
//! its resource. Data nodes have both set to zero. After the merge pass,
//! each vector-core node models one full trip through the seven-stage
//! pipeline (latency 7) while occupying its lane(s) for a single issue
//! cycle (duration 1).
//!
//! The paper gives no cycle counts for the scalar accelerator; the numbers
//! here follow typical iterative divide/√/CORDIC units (documented as an
//! assumption in DESIGN.md) and are fully parameterisable.

use crate::node::{NodeId, NodeKind, Opcode, ScalarOp};
use std::fmt;

/// The functional-unit *class* of an operation — the key a data-driven
/// unit table is indexed by. Every op node falls into exactly one class;
/// data nodes have none (they cost no cycles and occupy no unit).
///
/// The classes deliberately split the scalar accelerator's two latency
/// regimes (iterative √/÷/CORDIC vs. single-pass ±/×) so an architecture
/// description can price them independently — exactly the distinction
/// [`LatencyModel`] hard-codes for the EIT instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Single-lane vector-core op (one lane, full pipeline trip).
    Vector,
    /// Matrix op on the vector core (consumes the whole lane group).
    Matrix,
    /// Iterative scalar-accelerator op (√, 1/√, ÷, reciprocal, CORDIC).
    ScalarIterative,
    /// Single-pass scalar-accelerator op (±, ×, negate, …).
    ScalarSimple,
    /// Index-unit op.
    Index,
    /// Merge-unit op.
    Merge,
}

impl OpClass {
    /// Every class, in the canonical (rendering/hashing) order.
    pub const ALL: [OpClass; 6] = [
        OpClass::Vector,
        OpClass::Matrix,
        OpClass::ScalarIterative,
        OpClass::ScalarSimple,
        OpClass::Index,
        OpClass::Merge,
    ];

    /// Classify a node; `None` for data nodes.
    pub fn of(kind: &NodeKind) -> Option<OpClass> {
        match kind {
            NodeKind::Data(_) => None,
            NodeKind::Op(op) => Some(match op {
                Opcode::Vector { .. } => OpClass::Vector,
                Opcode::Matrix { .. } => OpClass::Matrix,
                Opcode::Scalar(s) => {
                    if is_iterative(*s) {
                        OpClass::ScalarIterative
                    } else {
                        OpClass::ScalarSimple
                    }
                }
                Opcode::Index(_) => OpClass::Index,
                Opcode::Merge => OpClass::Merge,
            }),
        }
    }

    /// Stable lower-case name used in the arch XML format.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Vector => "vector",
            OpClass::Matrix => "matrix",
            OpClass::ScalarIterative => "scalar-iterative",
            OpClass::ScalarSimple => "scalar-simple",
            OpClass::Index => "index",
            OpClass::Merge => "merge",
        }
    }

    /// Inverse of [`OpClass::name`].
    pub fn parse(s: &str) -> Option<OpClass> {
        OpClass::ALL.into_iter().find(|c| c.name() == s)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether a scalar op uses the accelerator's iterative (multi-cycle,
/// unit-blocking) datapath.
fn is_iterative(s: ScalarOp) -> bool {
    matches!(
        s,
        ScalarOp::Sqrt
            | ScalarOp::RSqrt
            | ScalarOp::Div
            | ScalarOp::Recip
            | ScalarOp::CordicRot
            | ScalarOp::CordicVec
    )
}

/// Cycle-count parameters of the target machine, as seen by the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Depth of the vector pipeline (load, pre, 2× core, 2× post,
    /// write-back) — 7 for EIT.
    pub vector_pipeline: i32,
    /// Issue occupancy of a vector/matrix op — 1 cc (pipelined).
    pub vector_duration: i32,
    /// Latency of iterative accelerator ops (√, 1/√, ÷, reciprocal, CORDIC).
    pub accel_iterative: i32,
    /// Latency of simple accelerator ops (±, ×, negate).
    pub accel_simple: i32,
    /// Occupancy of an accelerator op (the unit is not pipelined for the
    /// iterative ops in EIT; simple ops still hold it one cycle).
    pub accel_duration_iterative: i32,
    pub accel_duration_simple: i32,
    /// Latency/duration of the index/merge unit.
    pub index_merge: i32,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            vector_pipeline: 7,
            vector_duration: 1,
            accel_iterative: 8,
            accel_simple: 2,
            accel_duration_iterative: 2,
            accel_duration_simple: 1,
            index_merge: 1,
        }
    }
}

impl LatencyModel {
    /// `l_i`: cycles until the node's output is ready.
    pub fn latency(&self, kind: &NodeKind) -> i32 {
        OpClass::of(kind).map_or(0, |c| self.class_latency(c))
    }

    /// `d_i`: cycles the node occupies its resource.
    pub fn duration(&self, kind: &NodeKind) -> i32 {
        OpClass::of(kind).map_or(0, |c| self.class_duration(c))
    }

    /// Latency of one op class under this model.
    pub fn class_latency(&self, c: OpClass) -> i32 {
        match c {
            OpClass::Vector | OpClass::Matrix => self.vector_pipeline,
            OpClass::ScalarIterative => self.accel_iterative,
            OpClass::ScalarSimple => self.accel_simple,
            OpClass::Index | OpClass::Merge => self.index_merge,
        }
    }

    /// Occupancy of one op class under this model.
    pub fn class_duration(&self, c: OpClass) -> i32 {
        match c {
            OpClass::Vector | OpClass::Matrix => self.vector_duration,
            OpClass::ScalarIterative => self.accel_duration_iterative,
            OpClass::ScalarSimple => self.accel_duration_simple,
            OpClass::Index | OpClass::Merge => self.index_merge,
        }
    }

    /// Latency function over a graph, for [`crate::graph::Graph`] analyses.
    pub fn of<'g>(&'g self, g: &'g crate::graph::Graph) -> impl Fn(NodeId) -> i32 + 'g {
        move |id| self.latency(&g.node(id).kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{CoreOp, DataKind};

    #[test]
    fn defaults_match_the_paper_pipeline() {
        let m = LatencyModel::default();
        assert_eq!(m.latency(&NodeKind::Op(Opcode::vector(CoreOp::DotP))), 7);
        assert_eq!(m.latency(&NodeKind::Op(Opcode::matrix(CoreOp::Mul))), 7);
        assert_eq!(m.duration(&NodeKind::Op(Opcode::vector(CoreOp::DotP))), 1);
        assert_eq!(m.latency(&NodeKind::Data(DataKind::Vector)), 0);
        assert_eq!(m.duration(&NodeKind::Data(DataKind::Scalar)), 0);
    }

    #[test]
    fn scalar_classes_differ() {
        let m = LatencyModel::default();
        let sqrt = NodeKind::Op(Opcode::Scalar(ScalarOp::Sqrt));
        let add = NodeKind::Op(Opcode::Scalar(ScalarOp::Add));
        assert!(m.latency(&sqrt) > m.latency(&add));
        assert!(m.duration(&sqrt) > m.duration(&add));
    }

    #[test]
    fn index_and_merge_are_cheap() {
        let m = LatencyModel::default();
        assert_eq!(m.latency(&NodeKind::Op(Opcode::Index(2))), 1);
        assert_eq!(m.latency(&NodeKind::Op(Opcode::Merge)), 1);
    }

    #[test]
    fn op_class_covers_every_opcode_and_roundtrips_names() {
        assert_eq!(
            OpClass::of(&NodeKind::Op(Opcode::vector(CoreOp::Add))),
            Some(OpClass::Vector)
        );
        assert_eq!(
            OpClass::of(&NodeKind::Op(Opcode::matrix(CoreOp::Mul))),
            Some(OpClass::Matrix)
        );
        assert_eq!(
            OpClass::of(&NodeKind::Op(Opcode::Scalar(ScalarOp::Sqrt))),
            Some(OpClass::ScalarIterative)
        );
        assert_eq!(
            OpClass::of(&NodeKind::Op(Opcode::Scalar(ScalarOp::Add))),
            Some(OpClass::ScalarSimple)
        );
        assert_eq!(
            OpClass::of(&NodeKind::Op(Opcode::Index(1))),
            Some(OpClass::Index)
        );
        assert_eq!(
            OpClass::of(&NodeKind::Op(Opcode::Merge)),
            Some(OpClass::Merge)
        );
        assert_eq!(OpClass::of(&NodeKind::Data(DataKind::Vector)), None);
        for c in OpClass::ALL {
            assert_eq!(OpClass::parse(c.name()), Some(c));
        }
        assert_eq!(OpClass::parse("warp"), None);
    }
}
