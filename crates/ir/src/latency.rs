//! Latency and duration annotation (§3.3 of the paper).
//!
//! Every node gets two numbers: *latency* `l_i` — cycles from issue until
//! the result is usable — and *duration* `d_i` — cycles the node occupies
//! its resource. Data nodes have both set to zero. After the merge pass,
//! each vector-core node models one full trip through the seven-stage
//! pipeline (latency 7) while occupying its lane(s) for a single issue
//! cycle (duration 1).
//!
//! The paper gives no cycle counts for the scalar accelerator; the numbers
//! here follow typical iterative divide/√/CORDIC units (documented as an
//! assumption in DESIGN.md) and are fully parameterisable.

use crate::node::{NodeId, NodeKind, Opcode, ScalarOp};

/// Cycle-count parameters of the target machine, as seen by the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Depth of the vector pipeline (load, pre, 2× core, 2× post,
    /// write-back) — 7 for EIT.
    pub vector_pipeline: i32,
    /// Issue occupancy of a vector/matrix op — 1 cc (pipelined).
    pub vector_duration: i32,
    /// Latency of iterative accelerator ops (√, 1/√, ÷, reciprocal, CORDIC).
    pub accel_iterative: i32,
    /// Latency of simple accelerator ops (±, ×, negate).
    pub accel_simple: i32,
    /// Occupancy of an accelerator op (the unit is not pipelined for the
    /// iterative ops in EIT; simple ops still hold it one cycle).
    pub accel_duration_iterative: i32,
    pub accel_duration_simple: i32,
    /// Latency/duration of the index/merge unit.
    pub index_merge: i32,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            vector_pipeline: 7,
            vector_duration: 1,
            accel_iterative: 8,
            accel_simple: 2,
            accel_duration_iterative: 2,
            accel_duration_simple: 1,
            index_merge: 1,
        }
    }
}

impl LatencyModel {
    /// `l_i`: cycles until the node's output is ready.
    pub fn latency(&self, kind: &NodeKind) -> i32 {
        match kind {
            NodeKind::Data(_) => 0,
            NodeKind::Op(op) => match op {
                Opcode::Vector { .. } | Opcode::Matrix { .. } => self.vector_pipeline,
                Opcode::Scalar(s) => {
                    if Self::is_iterative(*s) {
                        self.accel_iterative
                    } else {
                        self.accel_simple
                    }
                }
                Opcode::Index(_) | Opcode::Merge => self.index_merge,
            },
        }
    }

    /// `d_i`: cycles the node occupies its resource.
    pub fn duration(&self, kind: &NodeKind) -> i32 {
        match kind {
            NodeKind::Data(_) => 0,
            NodeKind::Op(op) => match op {
                Opcode::Vector { .. } | Opcode::Matrix { .. } => self.vector_duration,
                Opcode::Scalar(s) => {
                    if Self::is_iterative(*s) {
                        self.accel_duration_iterative
                    } else {
                        self.accel_duration_simple
                    }
                }
                Opcode::Index(_) | Opcode::Merge => self.index_merge,
            },
        }
    }

    fn is_iterative(s: ScalarOp) -> bool {
        matches!(
            s,
            ScalarOp::Sqrt
                | ScalarOp::RSqrt
                | ScalarOp::Div
                | ScalarOp::Recip
                | ScalarOp::CordicRot
                | ScalarOp::CordicVec
        )
    }

    /// Latency function over a graph, for [`crate::graph::Graph`] analyses.
    pub fn of<'g>(&'g self, g: &'g crate::graph::Graph) -> impl Fn(NodeId) -> i32 + 'g {
        move |id| self.latency(&g.node(id).kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{CoreOp, DataKind};

    #[test]
    fn defaults_match_the_paper_pipeline() {
        let m = LatencyModel::default();
        assert_eq!(m.latency(&NodeKind::Op(Opcode::vector(CoreOp::DotP))), 7);
        assert_eq!(m.latency(&NodeKind::Op(Opcode::matrix(CoreOp::Mul))), 7);
        assert_eq!(m.duration(&NodeKind::Op(Opcode::vector(CoreOp::DotP))), 1);
        assert_eq!(m.latency(&NodeKind::Data(DataKind::Vector)), 0);
        assert_eq!(m.duration(&NodeKind::Data(DataKind::Scalar)), 0);
    }

    #[test]
    fn scalar_classes_differ() {
        let m = LatencyModel::default();
        let sqrt = NodeKind::Op(Opcode::Scalar(ScalarOp::Sqrt));
        let add = NodeKind::Op(Opcode::Scalar(ScalarOp::Add));
        assert!(m.latency(&sqrt) > m.latency(&add));
        assert!(m.duration(&sqrt) > m.duration(&add));
    }

    #[test]
    fn index_and_merge_are_cheap() {
        let m = LatencyModel::default();
        assert_eq!(m.latency(&NodeKind::Op(Opcode::Index(2))), 1);
        assert_eq!(m.latency(&NodeKind::Op(Opcode::Merge)), 1);
    }
}
