//! Canonical execution semantics of IR opcodes.
//!
//! One function, [`apply`], defines what every [`Opcode`] computes —
//! including *merged* pipeline nodes carrying pre- and post-processing
//! stages, which only exist after the fig. 6 merge pass. The architecture
//! simulator replays schedules through this function, and the DSL's eager
//! evaluation is cross-checked against it in tests, so a single source of
//! truth exists for "what the machine computes".

use crate::cplx::Cplx;
use crate::node::{CoreOp, Opcode, PostOp, PreOp, ScalarOp};
use std::fmt;

/// A runtime value: a complex scalar or a four-lane complex vector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    S(Cplx),
    V([Cplx; 4]),
}

impl Value {
    pub fn scalar(self) -> Result<Cplx, SemError> {
        match self {
            Value::S(c) => Ok(c),
            Value::V(_) => Err(SemError::TypeMismatch("expected scalar, got vector")),
        }
    }

    pub fn vector(self) -> Result<[Cplx; 4], SemError> {
        match self {
            Value::V(v) => Ok(v),
            Value::S(_) => Err(SemError::TypeMismatch("expected vector, got scalar")),
        }
    }

    /// Approximate equality for test assertions.
    pub fn approx_eq(&self, other: &Value, eps: f64) -> bool {
        match (self, other) {
            (Value::S(a), Value::S(b)) => a.approx_eq(*b, eps),
            (Value::V(a), Value::V(b)) => a.iter().zip(b).all(|(x, y)| x.approx_eq(*y, eps)),
            _ => false,
        }
    }
}

/// Errors from [`apply`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SemError {
    TypeMismatch(&'static str),
    BadArity {
        op: &'static str,
        expected: usize,
        got: usize,
    },
    DivisionByZero,
}

impl fmt::Display for SemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            SemError::BadArity { op, expected, got } => {
                write!(f, "{op}: expected {expected} operands, got {got}")
            }
            SemError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for SemError {}

fn need(op: &'static str, inputs: &[Value], n: usize) -> Result<(), SemError> {
    if inputs.len() == n {
        Ok(())
    } else {
        Err(SemError::BadArity {
            op,
            expected: n,
            got: inputs.len(),
        })
    }
}

fn apply_pre_vec(pre: PreOp, v: [Cplx; 4]) -> [Cplx; 4] {
    match pre {
        PreOp::Hermitian => v.map(Cplx::conj),
        PreOp::Mask(m) => {
            std::array::from_fn(|k| if m & (1 << k) != 0 { v[k] } else { Cplx::ZERO })
        }
        PreOp::Shuffle(code) => std::array::from_fn(|k| v[((code >> (2 * k)) & 0b11) as usize]),
    }
}

fn apply_post_vec(post: PostOp, v: [Cplx; 4]) -> [Cplx; 4] {
    match post {
        PostOp::Sort => {
            let mut s = v;
            s.sort_by(|a, b| b.abs2().partial_cmp(&a.abs2()).unwrap());
            s
        }
        PostOp::Conj => v.map(Cplx::conj),
        PostOp::Neg => v.map(|x| -x),
    }
}

fn apply_post_scalar(post: PostOp, c: Cplx) -> Cplx {
    match post {
        PostOp::Sort => c, // sorting a scalar is the identity
        PostOp::Conj => c.conj(),
        PostOp::Neg => -c,
    }
}

fn vector_core(
    core: CoreOp,
    pre: Option<(PreOp, u8)>,
    post: Option<PostOp>,
    inputs: &[Value],
) -> Result<Value, SemError> {
    // Materialise operands with the pre stage applied to its operand.
    let prep = |idx: usize, v: Value| -> Result<Value, SemError> {
        match (pre, v) {
            (Some((p, pi)), Value::V(vec)) if pi as usize == idx => {
                Ok(Value::V(apply_pre_vec(p, vec)))
            }
            _ => Ok(v),
        }
    };
    let ins: Vec<Value> = inputs
        .iter()
        .enumerate()
        .map(|(i, &v)| prep(i, v))
        .collect::<Result<_, _>>()?;

    let out = match core {
        CoreOp::Pass => {
            need("pass", &ins, 1)?;
            ins[0]
        }
        CoreOp::Add | CoreOp::Sub | CoreOp::Mul => {
            need("add/sub/mul", &ins, 2)?;
            let a = ins[0].vector()?;
            let b = ins[1].vector()?;
            Value::V(std::array::from_fn(|k| match core {
                CoreOp::Add => a[k] + b[k],
                CoreOp::Sub => a[k] - b[k],
                _ => a[k] * b[k],
            }))
        }
        CoreOp::Scale => {
            need("scale", &ins, 2)?;
            let a = ins[0].vector()?;
            let s = ins[1].scalar()?;
            Value::V(a.map(|x| x * s))
        }
        CoreOp::DotP => {
            need("dotp", &ins, 2)?;
            let a = ins[0].vector()?;
            let b = ins[1].vector()?;
            Value::S(
                a.iter()
                    .zip(&b)
                    .fold(Cplx::ZERO, |acc, (&x, &y)| acc + x * y.conj()),
            )
        }
        CoreOp::SquSum => {
            need("squsum", &ins, 1)?;
            let a = ins[0].vector()?;
            Value::S(Cplx::real(a.iter().map(|x| x.abs2()).sum()))
        }
        CoreOp::Mac => {
            need("mac", &ins, 3)?;
            let a = ins[0].vector()?;
            let b = ins[1].vector()?;
            let c = ins[2].vector()?;
            Value::V(std::array::from_fn(|k| a[k] * b[k] + c[k]))
        }
    };

    Ok(match (post, out) {
        (Some(p), Value::V(v)) => Value::V(apply_post_vec(p, v)),
        (Some(p), Value::S(c)) => Value::S(apply_post_scalar(p, c)),
        (None, v) => v,
    })
}

fn matrix_rows(inputs: &[Value], from: usize) -> Result<[[Cplx; 4]; 4], SemError> {
    if inputs.len() < from + 4 {
        return Err(SemError::BadArity {
            op: "matrix operand group",
            expected: from + 4,
            got: inputs.len(),
        });
    }
    Ok([
        inputs[from].vector()?,
        inputs[from + 1].vector()?,
        inputs[from + 2].vector()?,
        inputs[from + 3].vector()?,
    ])
}

fn matrix_core(
    core: CoreOp,
    pre: Option<(PreOp, u8)>,
    post: Option<PostOp>,
    inputs: &[Value],
) -> Result<Vec<Value>, SemError> {
    // For matrix ops the pre-operand index selects a *matrix group*
    // (0 = operands 0..4, 1 = operands 4..8); Hermitian transposes it.
    let prep_group = |rows: [[Cplx; 4]; 4], group: u8| -> [[Cplx; 4]; 4] {
        match pre {
            Some((PreOp::Hermitian, g)) if g == group => {
                std::array::from_fn(|i| std::array::from_fn(|j| rows[j][i].conj()))
            }
            Some((p, g)) if g == group => rows.map(|r| apply_pre_vec(p, r)),
            _ => rows,
        }
    };

    let outs: Vec<[Cplx; 4]> = match core {
        CoreOp::Pass => {
            let a = prep_group(matrix_rows(inputs, 0)?, 0);
            a.to_vec()
        }
        CoreOp::Mul => {
            need("m_mul", inputs, 8)?;
            let a = prep_group(matrix_rows(inputs, 0)?, 0);
            let b = prep_group(matrix_rows(inputs, 4)?, 1);
            let mut c = [[Cplx::ZERO; 4]; 4];
            for i in 0..4 {
                for j in 0..4 {
                    for (k, bk) in b.iter().enumerate() {
                        c[i][j] = c[i][j] + a[i][k] * bk[j];
                    }
                }
            }
            c.to_vec()
        }
        CoreOp::SquSum => {
            need("m_squsum", inputs, 4)?;
            let a = prep_group(matrix_rows(inputs, 0)?, 0);
            vec![std::array::from_fn(|i| {
                Cplx::real(a[i].iter().map(|x| x.abs2()).sum())
            })]
        }
        CoreOp::Scale => {
            need("m_scale", inputs, 5)?;
            let a = prep_group(matrix_rows(inputs, 0)?, 0);
            let s = inputs[4].scalar()?;
            a.iter().map(|r| r.map(|x| x * s)).collect()
        }
        CoreOp::Add | CoreOp::Sub => {
            need("m_add/m_sub", inputs, 8)?;
            let a = prep_group(matrix_rows(inputs, 0)?, 0);
            let b = prep_group(matrix_rows(inputs, 4)?, 1);
            (0..4)
                .map(|i| {
                    std::array::from_fn(|j| match core {
                        CoreOp::Add => a[i][j] + b[i][j],
                        _ => a[i][j] - b[i][j],
                    })
                })
                .collect()
        }
        CoreOp::Mac | CoreOp::DotP => {
            return Err(SemError::TypeMismatch("unsupported matrix core op"))
        }
    };

    Ok(outs
        .into_iter()
        .map(|v| {
            Value::V(match post {
                Some(p) => apply_post_vec(p, v),
                None => v,
            })
        })
        .collect())
}

fn scalar_op(op: ScalarOp, inputs: &[Value]) -> Result<Value, SemError> {
    let unary = |inputs: &[Value]| -> Result<Cplx, SemError> {
        need("scalar unary", inputs, 1)?;
        inputs[0].scalar()
    };
    let binary = |inputs: &[Value]| -> Result<(Cplx, Cplx), SemError> {
        need("scalar binary", inputs, 2)?;
        Ok((inputs[0].scalar()?, inputs[1].scalar()?))
    };
    Ok(Value::S(match op {
        ScalarOp::Sqrt => unary(inputs)?.sqrt(),
        ScalarOp::RSqrt => {
            let x = unary(inputs)?;
            if x.abs2() == 0.0 {
                return Err(SemError::DivisionByZero);
            }
            x.rsqrt()
        }
        ScalarOp::Recip => {
            let x = unary(inputs)?;
            if x.abs2() == 0.0 {
                return Err(SemError::DivisionByZero);
            }
            x.recip()
        }
        ScalarOp::Neg => -unary(inputs)?,
        ScalarOp::Div => {
            let (a, b) = binary(inputs)?;
            if b.abs2() == 0.0 {
                return Err(SemError::DivisionByZero);
            }
            a / b
        }
        ScalarOp::Add => {
            let (a, b) = binary(inputs)?;
            a + b
        }
        ScalarOp::Sub => {
            let (a, b) = binary(inputs)?;
            a - b
        }
        ScalarOp::Mul => {
            let (a, b) = binary(inputs)?;
            a * b
        }
        ScalarOp::CordicRot => {
            let (a, b) = binary(inputs)?;
            let phase = if b.abs() == 0.0 {
                Cplx::ONE
            } else {
                b * (1.0 / b.abs())
            };
            a * phase
        }
        ScalarOp::CordicVec => {
            // magnitude extraction
            Value::S(Cplx::real(unary(inputs)?.abs())).scalar()?
        }
    }))
}

/// Execute one opcode on its operand values, producing its outputs
/// (one value for everything except matrix ops, which produce one value
/// per output data node).
pub fn apply(op: &Opcode, inputs: &[Value]) -> Result<Vec<Value>, SemError> {
    match *op {
        Opcode::Vector { pre, core, post } => Ok(vec![vector_core(core, pre, post, inputs)?]),
        Opcode::Matrix { pre, core, post } => matrix_core(core, pre, post, inputs),
        Opcode::Scalar(s) => Ok(vec![scalar_op(s, inputs)?]),
        Opcode::Index(k) => {
            need("index", inputs, 1)?;
            let v = inputs[0].vector()?;
            Ok(vec![Value::S(v[(k & 3) as usize])])
        }
        Opcode::Merge => {
            need("merge", inputs, 4)?;
            let v: [Cplx; 4] = [
                inputs[0].scalar()?,
                inputs[1].scalar()?,
                inputs[2].scalar()?,
                inputs[3].scalar()?,
            ];
            Ok(vec![Value::V(v)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(vals: [f64; 4]) -> Value {
        Value::V(vals.map(Cplx::real))
    }

    fn s(x: f64) -> Value {
        Value::S(Cplx::real(x))
    }

    const EPS: f64 = 1e-12;

    #[test]
    fn core_arithmetic() {
        let a = v([1.0, 2.0, 3.0, 4.0]);
        let b = v([2.0, 3.0, 4.0, 5.0]);
        let add = apply(&Opcode::vector(CoreOp::Add), &[a, b]).unwrap();
        assert!(add[0].approx_eq(&v([3.0, 5.0, 7.0, 9.0]), EPS));
        let dot = apply(&Opcode::vector(CoreOp::DotP), &[a, b]).unwrap();
        assert!(dot[0].approx_eq(&s(40.0), EPS));
        let sq = apply(&Opcode::vector(CoreOp::SquSum), &[a]).unwrap();
        assert!(sq[0].approx_eq(&s(30.0), EPS));
    }

    #[test]
    fn merged_pipeline_node_applies_all_stages() {
        // hermitian(pre on operand 0) → mul → sort(post)
        let op = Opcode::Vector {
            pre: Some((PreOp::Hermitian, 0)),
            core: CoreOp::Mul,
            post: Some(PostOp::Sort),
        };
        let a = Value::V([
            Cplx::new(0.0, 1.0),
            Cplx::new(0.0, 2.0),
            Cplx::new(0.0, 3.0),
            Cplx::new(0.0, 4.0),
        ]);
        let b = v([1.0, 1.0, 1.0, 1.0]);
        let out = apply(&op, &[a, b]).unwrap();
        // conj(a)∘b = (-1i, -2i, -3i, -4i), sorted by |.| desc.
        let expect = Value::V([
            Cplx::new(0.0, -4.0),
            Cplx::new(0.0, -3.0),
            Cplx::new(0.0, -2.0),
            Cplx::new(0.0, -1.0),
        ]);
        assert!(out[0].approx_eq(&expect, EPS));
    }

    #[test]
    fn pre_applies_to_selected_operand_only() {
        let op = Opcode::Vector {
            pre: Some((PreOp::Mask(0b0001), 1)),
            core: CoreOp::Add,
            post: None,
        };
        let a = v([1.0, 1.0, 1.0, 1.0]);
        let b = v([10.0, 10.0, 10.0, 10.0]);
        let out = apply(&op, &[a, b]).unwrap();
        assert!(out[0].approx_eq(&v([11.0, 1.0, 1.0, 1.0]), EPS));
    }

    #[test]
    fn shuffle_permutes_lanes() {
        // code 0b_11_10_01_00 = identity; 0b_00_01_10_11 = reverse.
        let rev = 0b00_01_10_11u8;
        let op = Opcode::Vector {
            pre: Some((PreOp::Shuffle(rev), 0)),
            core: CoreOp::Pass,
            post: None,
        };
        let out = apply(&op, &[v([1.0, 2.0, 3.0, 4.0])]).unwrap();
        assert!(out[0].approx_eq(&v([4.0, 3.0, 2.0, 1.0]), EPS));
    }

    #[test]
    fn matrix_mul_and_hermitian_pre() {
        // B = identity; pre-hermitian on A (group 0) → Aᴴ·I = Aᴴ.
        let a_rows = [
            [Cplx::new(1.0, 1.0), Cplx::ZERO, Cplx::ZERO, Cplx::ZERO],
            [Cplx::new(2.0, -1.0), Cplx::ZERO, Cplx::ZERO, Cplx::ZERO],
            [Cplx::ZERO; 4],
            [Cplx::ZERO; 4],
        ];
        let eye: Vec<Value> = (0..4)
            .map(|i| {
                Value::V(std::array::from_fn(|j| {
                    if i == j {
                        Cplx::ONE
                    } else {
                        Cplx::ZERO
                    }
                }))
            })
            .collect();
        let mut inputs: Vec<Value> = a_rows.iter().map(|&r| Value::V(r)).collect();
        inputs.extend(eye);
        let op = Opcode::Matrix {
            pre: Some((PreOp::Hermitian, 0)),
            core: CoreOp::Mul,
            post: None,
        };
        let out = apply(&op, &inputs).unwrap();
        assert_eq!(out.len(), 4);
        let r0 = match out[0] {
            Value::V(r) => r,
            _ => panic!(),
        };
        assert!(r0[0].approx_eq(Cplx::new(1.0, -1.0), EPS));
        assert!(r0[1].approx_eq(Cplx::new(2.0, 1.0), EPS));
    }

    #[test]
    fn matrix_squsum_is_rowwise() {
        let rows: Vec<Value> = vec![
            v([1.0, 0.0, 0.0, 0.0]),
            v([1.0, 1.0, 0.0, 0.0]),
            v([1.0, 1.0, 1.0, 0.0]),
            v([1.0, 1.0, 1.0, 1.0]),
        ];
        let out = apply(&Opcode::matrix(CoreOp::SquSum), &rows).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].approx_eq(&v([1.0, 2.0, 3.0, 4.0]), EPS));
    }

    #[test]
    fn scalar_ops_and_errors() {
        assert!(
            apply(&Opcode::Scalar(ScalarOp::Sqrt), &[s(9.0)]).unwrap()[0].approx_eq(&s(3.0), EPS)
        );
        assert_eq!(
            apply(&Opcode::Scalar(ScalarOp::Div), &[s(1.0), s(0.0)]),
            Err(SemError::DivisionByZero)
        );
        assert_eq!(
            apply(&Opcode::Scalar(ScalarOp::Recip), &[s(0.0)]),
            Err(SemError::DivisionByZero)
        );
        assert!(matches!(
            apply(&Opcode::Scalar(ScalarOp::Add), &[s(1.0)]),
            Err(SemError::BadArity { .. })
        ));
    }

    #[test]
    fn index_and_merge() {
        let out = apply(&Opcode::Index(2), &[v([1.0, 2.0, 3.0, 4.0])]).unwrap();
        assert!(out[0].approx_eq(&s(3.0), EPS));
        let merged = apply(&Opcode::Merge, &[s(1.0), s(2.0), s(3.0), s(4.0)]).unwrap();
        assert!(merged[0].approx_eq(&v([1.0, 2.0, 3.0, 4.0]), EPS));
    }

    #[test]
    fn type_errors_reported() {
        assert!(matches!(
            apply(&Opcode::vector(CoreOp::Add), &[s(1.0), s(2.0)]),
            Err(SemError::TypeMismatch(_))
        ));
        assert!(matches!(
            apply(&Opcode::Merge, &[v([0.0; 4]), s(0.0), s(0.0), s(0.0)]),
            Err(SemError::TypeMismatch(_))
        ));
    }
}

/// Evaluate a whole graph in topological order from input values.
/// Returns the value of every data node, or the first semantic error.
/// This is the reference interpreter: the simulator's functional replay
/// and the DSL's eager evaluation must both agree with it.
pub fn eval_graph(
    g: &crate::graph::Graph,
    inputs: &std::collections::HashMap<crate::node::NodeId, Value>,
) -> Result<std::collections::HashMap<crate::node::NodeId, Value>, SemError> {
    let order = g
        .topo_order()
        .ok_or(SemError::TypeMismatch("cyclic graph"))?;
    let mut values = std::collections::HashMap::new();
    for n in order {
        if g.category(n).is_data() {
            if g.producer(n).is_none() {
                if let Some(&v) = inputs.get(&n) {
                    values.insert(n, v);
                }
            }
            continue;
        }
        let Some(ins) = g
            .preds(n)
            .iter()
            .map(|p| values.get(p).copied())
            .collect::<Option<Vec<Value>>>()
        else {
            continue; // upstream input missing: leave downstream undefined
        };
        let outs = apply(&g.opcode(n).unwrap(), &ins)?;
        for (&d, v) in g.succs(n).iter().zip(outs) {
            values.insert(d, v);
        }
    }
    Ok(values)
}

#[cfg(test)]
mod eval_graph_tests {
    use super::*;
    use crate::graph::Graph;
    use crate::node::{CoreOp, DataKind, Opcode, ScalarOp};
    use std::collections::HashMap;

    #[test]
    fn evaluates_chain_end_to_end() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (_, d) = g.add_op_with_output(
            Opcode::vector(CoreOp::DotP),
            &[a, b],
            DataKind::Scalar,
            "dot",
        );
        let (_, r) = g.add_op_with_output(
            Opcode::Scalar(ScalarOp::Sqrt),
            &[d],
            DataKind::Scalar,
            "sqrt",
        );
        let mut inputs = HashMap::new();
        inputs.insert(a, Value::V([Cplx::real(2.0); 4]));
        inputs.insert(b, Value::V([Cplx::real(2.0); 4]));
        let vals = eval_graph(&g, &inputs).unwrap();
        assert!(vals[&d].approx_eq(&Value::S(Cplx::real(16.0)), 1e-12));
        assert!(vals[&r].approx_eq(&Value::S(Cplx::real(4.0)), 1e-12));
    }

    #[test]
    fn missing_input_leaves_downstream_undefined() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let (_, d) =
            g.add_op_with_output(Opcode::vector(CoreOp::SquSum), &[a], DataKind::Scalar, "s");
        let vals = eval_graph(&g, &HashMap::new()).unwrap();
        assert!(!vals.contains_key(&d));
    }

    #[test]
    fn semantic_error_propagates() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Scalar, "a");
        let (_, _) =
            g.add_op_with_output(Opcode::Scalar(ScalarOp::Recip), &[a], DataKind::Scalar, "r");
        let mut inputs = HashMap::new();
        inputs.insert(a, Value::S(Cplx::ZERO));
        assert_eq!(eval_graph(&g, &inputs), Err(SemError::DivisionByZero));
    }
}
