//! The dataflow graph: a bipartite DAG of operation and data nodes.
//!
//! Edge direction follows data flow: an edge `d → o` makes datum `d` an
//! operand of operation `o`; an edge `o → d` makes `d` an output of `o`.
//! Operand order is significant and equals the order of `preds(o)`.
//!
//! Invariants (checked by [`Graph::validate`]):
//! - edges connect an op node and a data node (bipartite);
//! - the graph is acyclic;
//! - every data node has at most one producer (application inputs have
//!   none);
//! - vector/scalar/index/merge ops have exactly one output, matrix ops
//!   between one and four.

use crate::node::{Category, DataKind, Node, NodeId, NodeKind, Opcode};
use std::collections::VecDeque;
use std::fmt;

#[derive(Clone, Debug, Default)]
pub struct Graph {
    pub name: String,
    nodes: Vec<Node>,
    preds: Vec<Vec<NodeId>>,
    succs: Vec<Vec<NodeId>>,
}

/// Errors reported by [`Graph::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IrError {
    NotBipartite { from: NodeId, to: NodeId },
    Cyclic,
    MultipleProducers { data: NodeId },
    BadOutputArity { op: NodeId, outputs: usize },
    OpWithoutInput { op: NodeId },
    DanglingEdge { node: NodeId },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::NotBipartite { from, to } => {
                write!(f, "edge {from:?}→{to:?} does not connect op and data")
            }
            IrError::Cyclic => write!(f, "graph contains a cycle"),
            IrError::MultipleProducers { data } => {
                write!(f, "data node {data:?} has more than one producer")
            }
            IrError::BadOutputArity { op, outputs } => {
                write!(f, "op {op:?} has {outputs} outputs")
            }
            IrError::OpWithoutInput { op } => write!(f, "op {op:?} has no inputs"),
            IrError::DanglingEdge { node } => write!(f, "edge references unknown {node:?}"),
        }
    }
}

impl std::error::Error for IrError {}

impl Graph {
    pub fn new(name: &str) -> Self {
        Graph {
            name: name.to_string(),
            ..Default::default()
        }
    }

    // ---- construction ------------------------------------------------------

    pub fn add_node(&mut self, kind: NodeKind, name: &str) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            name: name.to_string(),
        });
        self.preds.push(Vec::new());
        self.succs.push(Vec::new());
        id
    }

    pub fn add_data(&mut self, kind: DataKind, name: &str) -> NodeId {
        self.add_node(NodeKind::Data(kind), name)
    }

    pub fn add_op(&mut self, op: Opcode, name: &str) -> NodeId {
        self.add_node(NodeKind::Op(op), name)
    }

    /// Append `to`'s operand list with `from` (operand order = call order).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        self.succs[from.idx()].push(to);
        self.preds[to.idx()].push(from);
    }

    /// Convenience: add an op with its operands and a single fresh output
    /// datum; returns `(op, output)`.
    pub fn add_op_with_output(
        &mut self,
        op: Opcode,
        inputs: &[NodeId],
        out_kind: DataKind,
        name: &str,
    ) -> (NodeId, NodeId) {
        let o = self.add_op(op, name);
        for &i in inputs {
            self.add_edge(i, o);
        }
        let d = self.add_data(out_kind, &format!("{name}.out"));
        self.add_edge(o, d);
        (o, d)
    }

    // ---- access -------------------------------------------------------------

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.idx()]
    }

    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.idx()]
    }

    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    pub fn category(&self, id: NodeId) -> Category {
        self.nodes[id.idx()].category()
    }

    /// The opcode of an operation node (`None` for data nodes).
    pub fn opcode(&self, id: NodeId) -> Option<Opcode> {
        match self.nodes[id.idx()].kind {
            NodeKind::Op(op) => Some(op),
            NodeKind::Data(_) => None,
        }
    }

    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        &self.preds[id.idx()]
    }

    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id.idx()]
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// All edges as (from, to) pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.ids()
            .flat_map(move |f| self.succs(f).iter().map(move |&t| (f, t)))
    }

    /// The unique producer of a data node, if any.
    pub fn producer(&self, data: NodeId) -> Option<NodeId> {
        debug_assert!(self.category(data).is_data());
        self.preds[data.idx()].first().copied()
    }

    /// Application inputs: data nodes with no producer.
    pub fn inputs(&self) -> Vec<NodeId> {
        self.ids()
            .filter(|&i| self.category(i).is_data() && self.preds(i).is_empty())
            .collect()
    }

    /// Application outputs: data nodes with no consumer.
    pub fn outputs(&self) -> Vec<NodeId> {
        self.ids()
            .filter(|&i| self.category(i).is_data() && self.succs(i).is_empty())
            .collect()
    }

    /// Count nodes of a category.
    pub fn count(&self, cat: Category) -> usize {
        self.ids().filter(|&i| self.category(i) == cat).count()
    }

    // ---- validation & analysis ----------------------------------------------

    pub fn validate(&self) -> Result<(), IrError> {
        for (from, to) in self.edges() {
            if from.idx() >= self.len() || to.idx() >= self.len() {
                return Err(IrError::DanglingEdge {
                    node: if from.idx() >= self.len() { from } else { to },
                });
            }
            if self.category(from).is_op() == self.category(to).is_op() {
                return Err(IrError::NotBipartite { from, to });
            }
        }
        for id in self.ids() {
            let cat = self.category(id);
            if cat.is_data() {
                if self.preds(id).len() > 1 {
                    return Err(IrError::MultipleProducers { data: id });
                }
            } else {
                if self.preds(id).is_empty() {
                    return Err(IrError::OpWithoutInput { op: id });
                }
                let outs = self.succs(id).len();
                let max_out = match self.opcode(id) {
                    Some(Opcode::Matrix { .. }) => 4,
                    _ => 1,
                };
                if outs == 0 || outs > max_out {
                    return Err(IrError::BadOutputArity {
                        op: id,
                        outputs: outs,
                    });
                }
            }
        }
        self.topo_order().ok_or(IrError::Cyclic).map(|_| ())
    }

    /// Kahn topological order; `None` if cyclic.
    pub fn topo_order(&self) -> Option<Vec<NodeId>> {
        let n = self.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.preds[i].len()).collect();
        let mut q: VecDeque<NodeId> = self.ids().filter(|&i| indeg[i.idx()] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = q.pop_front() {
            order.push(u);
            for &v in self.succs(u) {
                indeg[v.idx()] -= 1;
                if indeg[v.idx()] == 0 {
                    q.push_back(v);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Earliest start times under a latency function (data nodes inherit
    /// producer completion; op nodes wait for all operands).
    pub fn earliest_starts<F: Fn(NodeId) -> i32>(&self, latency: &F) -> Vec<i32> {
        let order = self.topo_order().expect("earliest_starts on cyclic graph");
        let mut es = vec![0i32; self.len()];
        for &u in &order {
            for &v in self.succs(u) {
                es[v.idx()] = es[v.idx()].max(es[u.idx()] + latency(u));
            }
        }
        es
    }

    /// Critical-path length in clock cycles: the maximum over nodes of
    /// earliest start + latency. This is the paper's `|Cr.P|`.
    pub fn critical_path<F: Fn(NodeId) -> i32>(&self, latency: &F) -> i32 {
        let es = self.earliest_starts(latency);
        self.ids()
            .map(|i| es[i.idx()] + latency(i))
            .max()
            .unwrap_or(0)
    }

    /// Remove the given nodes, compacting ids; returns the old→new id map
    /// (`None` for removed nodes). Edges incident to removed nodes vanish.
    pub fn remove_nodes(&mut self, remove: &[NodeId]) -> Vec<Option<NodeId>> {
        let mut dead = vec![false; self.len()];
        for &r in remove {
            dead[r.idx()] = true;
        }
        let mut map: Vec<Option<NodeId>> = Vec::with_capacity(self.len());
        let mut next = 0u32;
        for &d in &dead {
            if d {
                map.push(None);
            } else {
                map.push(Some(NodeId(next)));
                next += 1;
            }
        }
        let mut nodes = Vec::with_capacity(next as usize);
        let mut preds = Vec::with_capacity(next as usize);
        let mut succs = Vec::with_capacity(next as usize);
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.len() {
            if dead[i] {
                continue;
            }
            nodes.push(self.nodes[i].clone());
            preds.push(
                self.preds[i]
                    .iter()
                    .filter_map(|p| map[p.idx()])
                    .collect::<Vec<_>>(),
            );
            succs.push(
                self.succs[i]
                    .iter()
                    .filter_map(|s| map[s.idx()])
                    .collect::<Vec<_>>(),
            );
        }
        self.nodes = nodes;
        self.preds = preds;
        self.succs = succs;
        map
    }

    /// Replace data node `old` with `new` in the operand list of `op`,
    /// preserving operand order.
    pub fn replace_operand(&mut self, op: NodeId, old: NodeId, new: NodeId) {
        for p in &mut self.preds[op.idx()] {
            if *p == old {
                *p = new;
            }
        }
        self.succs[old.idx()].retain(|&s| s != op);
        self.succs[new.idx()].push(op);
    }

    /// Redirect the output edge of `op` from datum `old` to datum `new`.
    pub fn replace_output(&mut self, op: NodeId, old: NodeId, new: NodeId) {
        for sx in &mut self.succs[op.idx()] {
            if *sx == old {
                *sx = new;
            }
        }
        self.preds[old.idx()].retain(|&p| p != op);
        self.preds[new.idx()].push(op);
    }

    /// Graph-properties summary string like the paper's
    /// `|V| = 143, |E| = 194`.
    pub fn summary<F: Fn(NodeId) -> i32>(&self, latency: &F) -> String {
        format!(
            "|V| = {}, |E| = {}, |Cr.P| = {}, #v_data = {}",
            self.len(),
            self.edge_count(),
            self.critical_path(latency),
            self.count(Category::VectorData),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{CoreOp, ScalarOp};

    fn tiny() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        // a, b vectors → dotp → scalar s → sqrt → scalar r
        let mut g = Graph::new("tiny");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (_, s) = g.add_op_with_output(
            Opcode::vector(CoreOp::DotP),
            &[a, b],
            DataKind::Scalar,
            "dot",
        );
        let (_, r) = g.add_op_with_output(
            Opcode::Scalar(ScalarOp::Sqrt),
            &[s],
            DataKind::Scalar,
            "sqrt",
        );
        (g, a, b, s, r)
    }

    #[test]
    fn build_and_validate() {
        let (g, a, b, s, _) = tiny();
        g.validate().unwrap();
        assert_eq!(g.len(), 6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.inputs(), vec![a, b]);
        assert_eq!(
            g.producer(s).map(|p| g.category(p)),
            Some(Category::VectorOp)
        );
    }

    #[test]
    fn bipartite_violation_detected() {
        let mut g = Graph::new("bad");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        g.add_edge(a, b); // data → data
        assert!(matches!(g.validate(), Err(IrError::NotBipartite { .. })));
    }

    #[test]
    fn cycle_detected() {
        let mut g = Graph::new("cyc");
        let d = g.add_data(DataKind::Scalar, "d");
        let o = g.add_op(Opcode::Scalar(ScalarOp::Neg), "neg");
        g.add_edge(d, o);
        g.add_edge(o, d); // o produces its own input
                          // Multiple producers check fires first? d has 1 producer; op has
                          // 1 in, 1 out — passes arity; topo must fail.
        assert_eq!(g.validate(), Err(IrError::Cyclic));
    }

    #[test]
    fn multiple_producers_detected() {
        let mut g = Graph::new("mp");
        let a = g.add_data(DataKind::Scalar, "a");
        let o1 = g.add_op(Opcode::Scalar(ScalarOp::Neg), "n1");
        let o2 = g.add_op(Opcode::Scalar(ScalarOp::Neg), "n2");
        let d = g.add_data(DataKind::Scalar, "d");
        g.add_edge(a, o1);
        g.add_edge(a, o2);
        g.add_edge(o1, d);
        g.add_edge(o2, d);
        assert_eq!(g.validate(), Err(IrError::MultipleProducers { data: d }));
    }

    #[test]
    fn matrix_op_may_have_four_outputs() {
        let mut g = Graph::new("m");
        let ins: Vec<NodeId> = (0..4)
            .map(|i| g.add_data(DataKind::Vector, &format!("in{i}")))
            .collect();
        let m = g.add_op(Opcode::matrix(CoreOp::Mul), "mmul");
        for &i in &ins {
            g.add_edge(i, m);
        }
        for i in 0..4 {
            let d = g.add_data(DataKind::Vector, &format!("out{i}"));
            g.add_edge(m, d);
        }
        g.validate().unwrap();
    }

    #[test]
    fn vector_op_with_two_outputs_rejected() {
        let mut g = Graph::new("v2");
        let a = g.add_data(DataKind::Vector, "a");
        let o = g.add_op(Opcode::vector(CoreOp::Add), "add");
        g.add_edge(a, o);
        let d1 = g.add_data(DataKind::Vector, "d1");
        let d2 = g.add_data(DataKind::Vector, "d2");
        g.add_edge(o, d1);
        g.add_edge(o, d2);
        assert!(matches!(
            g.validate(),
            Err(IrError::BadOutputArity { outputs: 2, .. })
        ));
    }

    #[test]
    fn critical_path_with_unit_and_pipeline_latencies() {
        let (g, ..) = tiny();
        // dotp latency 7, sqrt latency 8, data 0.
        let lat = |id: NodeId| match g.node(id).kind {
            NodeKind::Op(Opcode::Vector { .. }) => 7,
            NodeKind::Op(Opcode::Scalar(_)) => 8,
            _ => 0,
        };
        assert_eq!(g.critical_path(&lat), 15);
    }

    #[test]
    fn topo_order_is_consistent() {
        let (g, ..) = tiny();
        let order = g.topo_order().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.len()];
            for (i, &n) in order.iter().enumerate() {
                p[n.idx()] = i;
            }
            p
        };
        for (f, t) in g.edges() {
            assert!(pos[f.idx()] < pos[t.idx()]);
        }
    }

    #[test]
    fn remove_nodes_compacts_and_remaps() {
        let (mut g, a, ..) = tiny();
        let before = g.len();
        // Remove input `a` and the dot op (making an invalid graph, but
        // remove itself must stay consistent).
        let dot = g.succs(a)[0];
        let map = g.remove_nodes(&[a, dot]);
        assert_eq!(g.len(), before - 2);
        assert!(map[a.idx()].is_none());
        assert!(map[dot.idx()].is_none());
        // No dangling edges survive.
        for (f, t) in g.edges() {
            assert!(f.idx() < g.len() && t.idx() < g.len());
        }
    }

    #[test]
    fn replace_operand_keeps_order() {
        let mut g = Graph::new("ro");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let c = g.add_data(DataKind::Vector, "c");
        let o = g.add_op(Opcode::vector(CoreOp::Sub), "sub");
        g.add_edge(a, o);
        g.add_edge(b, o);
        g.replace_operand(o, b, c);
        assert_eq!(g.preds(o), &[a, c]);
        assert!(g.succs(b).is_empty());
        assert_eq!(g.succs(c), &[o]);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::node::{CoreOp, DataKind, Opcode, ScalarOp};

    fn diamond() -> (Graph, Vec<NodeId>) {
        // a → {op1, op2} → {d1, d2} → op3 → out : classic diamond.
        let mut g = Graph::new("diamond");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (_, d1) =
            g.add_op_with_output(Opcode::vector(CoreOp::Add), &[a, b], DataKind::Vector, "o1");
        let (_, d2) =
            g.add_op_with_output(Opcode::vector(CoreOp::Sub), &[a, b], DataKind::Vector, "o2");
        let (_, out) = g.add_op_with_output(
            Opcode::vector(CoreOp::Mul),
            &[d1, d2],
            DataKind::Vector,
            "o3",
        );
        (g, vec![a, b, d1, d2, out])
    }

    #[test]
    fn inputs_and_outputs_detected() {
        let (g, ns) = diamond();
        assert_eq!(g.inputs(), vec![ns[0], ns[1]]);
        assert_eq!(g.outputs(), vec![ns[4]]);
    }

    #[test]
    fn earliest_starts_respect_diamond_join() {
        let (g, ns) = diamond();
        let lat = |id: NodeId| match g.node(id).kind {
            NodeKind::Op(_) => 7,
            _ => 0,
        };
        let es = g.earliest_starts(&lat);
        assert_eq!(es[ns[0].idx()], 0);
        assert_eq!(es[ns[2].idx()], 7); // d1 ready after one trip
        assert_eq!(es[ns[4].idx()], 14); // out after two trips
        assert_eq!(g.critical_path(&lat), 14);
    }

    #[test]
    fn summary_format() {
        let (g, _) = diamond();
        let lat = |_: NodeId| 1;
        let s = g.summary(&lat);
        assert!(s.starts_with("|V| = 8, |E| = 9"));
        assert!(s.contains("#v_data = 5"));
    }

    #[test]
    fn producer_of_input_is_none() {
        let (g, ns) = diamond();
        assert_eq!(g.producer(ns[0]), None);
        assert!(g.producer(ns[2]).is_some());
    }

    #[test]
    fn op_without_input_rejected() {
        let mut g = Graph::new("t");
        let o = g.add_op(Opcode::Scalar(ScalarOp::Neg), "n");
        let d = g.add_data(DataKind::Scalar, "d");
        g.add_edge(o, d);
        assert!(matches!(g.validate(), Err(IrError::OpWithoutInput { .. })));
    }

    #[test]
    fn edges_iterator_matches_adjacency() {
        let (g, _) = diamond();
        let mut count = 0;
        for (f, t) in g.edges() {
            assert!(g.succs(f).contains(&t));
            assert!(g.preds(t).contains(&f));
            count += 1;
        }
        assert_eq!(count, g.edge_count());
    }

    #[test]
    fn node_mut_allows_opcode_rewrite() {
        let (mut g, _) = diamond();
        let op = g.ids().find(|&n| g.category(n).is_op()).unwrap();
        if let NodeKind::Op(o) = &mut g.node_mut(op).kind {
            *o = Opcode::vector(CoreOp::Mac);
        }
        assert_eq!(g.opcode(op), Some(Opcode::vector(CoreOp::Mac)));
    }
}
