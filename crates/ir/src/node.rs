//! Node taxonomy of the intermediate representation (§3.2 of the paper).
//!
//! The IR is a bipartite dataflow DAG of *operation* nodes and *data*
//! nodes. Every node belongs to one of the paper's seven categories:
//! `vector_op`, `matrix_op`, `scalar_op`, `index`, `merge`, `vector_data`,
//! `scalar_data`.
//!
//! Vector-core operations mirror the EIT pipeline: an optional
//! *pre-processing* stage (PE2), the *core* CMAC stage (PE3) and an
//! optional *post-processing* stage (PE4). A stand-alone pre- or
//! post-processing operation is encoded with [`CoreOp::Pass`]; the merge
//! pass (fig. 6) later folds such nodes into their neighbours so that each
//! remaining vector node models one trip through the seven-stage pipeline.

use std::fmt;

/// Pre-processing operations executed by PE2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PreOp {
    /// Conjugate-transpose preparation of an operand (matrix Hermitian).
    Hermitian,
    /// Element masking with a 4-bit lane mask.
    Mask(u8),
    /// Lane shuffle/broadcast with a packed 4×2-bit permutation.
    Shuffle(u8),
}

/// Core CMAC-stage operations executed by PE3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CoreOp {
    /// Identity: the node only pre- or post-processes.
    Pass,
    /// Element-wise complex addition.
    Add,
    /// Element-wise complex subtraction.
    Sub,
    /// Element-wise complex multiplication.
    Mul,
    /// Vector × scalar scaling.
    Scale,
    /// Dot product (conjugating the second operand), vector → scalar.
    DotP,
    /// Squared Euclidean norm, vector → scalar.
    SquSum,
    /// Fused multiply-accumulate `a∘b + c` (three operands).
    Mac,
}

/// Post-processing operations executed by PE4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PostOp {
    /// Sort lanes by magnitude, descending.
    Sort,
    /// Element-wise conjugation of the result.
    Conj,
    /// Negate the result.
    Neg,
}

/// Operations of the scalar accelerator (division / square root / CORDIC).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScalarOp {
    Sqrt,
    /// Reciprocal square root `1/√x`.
    RSqrt,
    Div,
    Recip,
    /// CORDIC rotation (Givens rotation angle application).
    CordicRot,
    /// CORDIC vectoring (magnitude/phase extraction).
    CordicVec,
    Add,
    Sub,
    Mul,
    Neg,
}

/// Complete operation descriptor of an operation node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// A vector operation: one lane of the vector core, one trip through
    /// the pipeline. `pre` carries the operand index it applies to.
    Vector {
        pre: Option<(PreOp, u8)>,
        core: CoreOp,
        post: Option<PostOp>,
    },
    /// A matrix operation: all four lanes simultaneously.
    Matrix {
        pre: Option<(PreOp, u8)>,
        core: CoreOp,
        post: Option<PostOp>,
    },
    /// A scalar-accelerator operation.
    Scalar(ScalarOp),
    /// Extract element `k` of a vector (index unit).
    Index(u8),
    /// Merge four scalars into a vector (merge unit).
    Merge,
}

impl Opcode {
    /// Plain vector core op without pre/post stages.
    pub fn vector(core: CoreOp) -> Self {
        Opcode::Vector {
            pre: None,
            core,
            post: None,
        }
    }

    /// Plain matrix core op without pre/post stages.
    pub fn matrix(core: CoreOp) -> Self {
        Opcode::Matrix {
            pre: None,
            core,
            post: None,
        }
    }

    /// Does this opcode execute on the vector core (either as a vector or
    /// a matrix operation)?
    pub fn on_vector_core(&self) -> bool {
        matches!(self, Opcode::Vector { .. } | Opcode::Matrix { .. })
    }

    /// The *configuration* the vector core must hold to execute this op.
    /// Two vector ops may share a cycle only if their configurations are
    /// equal (paper's constraint (3)); reconfiguration counting in the
    /// modulo scheduler compares these too.
    pub fn config(&self) -> Option<VectorConfig> {
        match *self {
            Opcode::Vector { pre, core, post } | Opcode::Matrix { pre, core, post } => {
                Some(VectorConfig {
                    pre,
                    core,
                    post,
                    matrix: matches!(self, Opcode::Matrix { .. }),
                })
            }
            _ => None,
        }
    }
}

/// The vector core's configuration word (abstracted).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VectorConfig {
    pub pre: Option<(PreOp, u8)>,
    pub core: CoreOp,
    pub post: Option<PostOp>,
    pub matrix: bool,
}

/// Data node payload kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataKind {
    /// A four-element complex vector (occupies one memory slot).
    Vector,
    /// A complex scalar (held in the scalar register file).
    Scalar,
}

/// What a node is: an operation or a datum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    Op(Opcode),
    Data(DataKind),
}

/// The seven categories of §3.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    VectorOp,
    MatrixOp,
    ScalarOp,
    Index,
    Merge,
    VectorData,
    ScalarData,
}

impl Category {
    pub fn is_op(self) -> bool {
        !matches!(self, Category::VectorData | Category::ScalarData)
    }

    pub fn is_data(self) -> bool {
        !self.is_op()
    }
}

impl fmt::Display for Category {
    /// snake_case of the variant name, matching the paper's naming
    /// (`vector_op`, `scalar_data`, …).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dbg = format!("{self:?}");
        let mut out = String::new();
        for (i, ch) in dbg.chars().enumerate() {
            if ch.is_uppercase() {
                if i > 0 {
                    out.push('_');
                }
                out.push(ch.to_ascii_lowercase());
            } else {
                out.push(ch);
            }
        }
        f.write_str(&out)
    }
}

impl NodeKind {
    pub fn category(&self) -> Category {
        match self {
            NodeKind::Op(Opcode::Vector { .. }) => Category::VectorOp,
            NodeKind::Op(Opcode::Matrix { .. }) => Category::MatrixOp,
            NodeKind::Op(Opcode::Scalar(_)) => Category::ScalarOp,
            NodeKind::Op(Opcode::Index(_)) => Category::Index,
            NodeKind::Op(Opcode::Merge) => Category::Merge,
            NodeKind::Data(DataKind::Vector) => Category::VectorData,
            NodeKind::Data(DataKind::Scalar) => Category::ScalarData,
        }
    }
}

/// Identifier of a node within its [`crate::graph::Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One IR node.
#[derive(Clone, Debug)]
pub struct Node {
    pub kind: NodeKind,
    /// Human-readable label carried from the DSL (for dumps/debugging).
    pub name: String,
}

impl Node {
    pub fn category(&self) -> Category {
        self.kind.category()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_match_paper_taxonomy() {
        assert_eq!(
            NodeKind::Op(Opcode::vector(CoreOp::DotP)).category(),
            Category::VectorOp
        );
        assert_eq!(
            NodeKind::Op(Opcode::matrix(CoreOp::SquSum)).category(),
            Category::MatrixOp
        );
        assert_eq!(
            NodeKind::Op(Opcode::Scalar(ScalarOp::Sqrt)).category(),
            Category::ScalarOp
        );
        assert_eq!(NodeKind::Op(Opcode::Index(2)).category(), Category::Index);
        assert_eq!(NodeKind::Op(Opcode::Merge).category(), Category::Merge);
        assert_eq!(
            NodeKind::Data(DataKind::Vector).category(),
            Category::VectorData
        );
        assert_eq!(
            NodeKind::Data(DataKind::Scalar).category(),
            Category::ScalarData
        );
    }

    #[test]
    fn display_category_is_snake_case() {
        assert_eq!(Category::VectorOp.to_string(), "vector_op");
        assert_eq!(Category::ScalarData.to_string(), "scalar_data");
    }

    #[test]
    fn config_equality_distinguishes_stages() {
        let plain = Opcode::vector(CoreOp::Add);
        let with_post = Opcode::Vector {
            pre: None,
            core: CoreOp::Add,
            post: Some(PostOp::Sort),
        };
        assert_ne!(plain.config(), with_post.config());
        assert_eq!(plain.config(), Opcode::vector(CoreOp::Add).config());
        // Matrix vs vector with the same stages differ in configuration.
        assert_ne!(
            Opcode::matrix(CoreOp::Add).config(),
            Opcode::vector(CoreOp::Add).config()
        );
        assert!(Opcode::Scalar(ScalarOp::Div).config().is_none());
    }

    #[test]
    fn op_data_partition() {
        assert!(Category::VectorOp.is_op());
        assert!(Category::Index.is_op());
        assert!(Category::Merge.is_op());
        assert!(Category::VectorData.is_data());
        assert!(!Category::VectorData.is_op());
    }
}
