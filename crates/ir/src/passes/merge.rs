//! The pipeline-merging pass (§3.3.1, fig. 6 of the paper).
//!
//! The scheduler models the seven-stage vector pipeline as a whole, so IR
//! chains that the hardware executes in a *single* trip through the
//! pipeline — pre-processing → core → post-processing — must be folded
//! into one node before scheduling. Two patterns are folded, exactly the
//! two of fig. 6:
//!
//! - **pre-merge** (fig. 6 left): a stand-alone pre-processing op (core
//!   [`CoreOp::Pass`], only a `pre` stage) whose single output feeds
//!   exactly one vector-core op that has no `pre` stage yet;
//! - **post-merge** (fig. 6 right): a stand-alone post-processing op
//!   (core `Pass`, only a `post` stage) that is the single consumer of
//!   the output of a vector-core op without a `post` stage — including a
//!   matrix op whose (single) vector output is post-processed.
//!
//! Merging is run to fixpoint; each fold removes one op node and one data
//! node. The pass reports how many folds of each kind it performed.

use crate::graph::Graph;
use crate::node::{CoreOp, NodeId, Opcode};

/// Statistics of one [`merge_pipeline_ops`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeStats {
    pub pre_merges: usize,
    pub post_merges: usize,
    pub nodes_removed: usize,
}

/// Is this opcode a stand-alone pre-processing node?
fn standalone_pre(op: &Opcode) -> Option<(crate::node::PreOp, u8)> {
    match op {
        Opcode::Vector {
            pre: Some(p),
            core: CoreOp::Pass,
            post: None,
        }
        | Opcode::Matrix {
            pre: Some(p),
            core: CoreOp::Pass,
            post: None,
        } => Some(*p),
        _ => None,
    }
}

/// Is this opcode a stand-alone post-processing node?
fn standalone_post(op: &Opcode) -> Option<crate::node::PostOp> {
    match op {
        Opcode::Vector {
            pre: None,
            core: CoreOp::Pass,
            post: Some(p),
        }
        | Opcode::Matrix {
            pre: None,
            core: CoreOp::Pass,
            post: Some(p),
        } => Some(*p),
        _ => None,
    }
}

/// Attempt one pre-merge anywhere in the graph; true if one was applied.
fn try_pre_merge(g: &mut Graph, stats: &mut MergeStats) -> bool {
    let ids: Vec<NodeId> = g.ids().collect();
    for p_id in ids {
        let Some(p_op) = g.opcode(p_id) else { continue };
        let Some((pre, _)) = standalone_pre(&p_op) else {
            continue;
        };
        // P must have exactly one output datum with exactly one consumer.
        if g.succs(p_id).len() != 1 {
            continue;
        }
        let d = g.succs(p_id)[0];
        if g.succs(d).len() != 1 {
            continue;
        }
        let c_id = g.succs(d)[0];
        let Some(c_op) = g.opcode(c_id) else { continue };
        let folded = match c_op {
            Opcode::Vector {
                pre: None,
                core,
                post,
            } if core != CoreOp::Pass => Some(Opcode::Vector {
                pre: Some((pre, 0)),
                core,
                post,
            }),
            Opcode::Matrix {
                pre: None,
                core,
                post,
            } if core != CoreOp::Pass => Some(Opcode::Matrix {
                pre: Some((pre, 0)),
                core,
                post,
            }),
            _ => None,
        };
        let Some(mut folded) = folded else { continue };
        // Which operand of C is d? The pre stage applies to that operand.
        let operand_idx = g
            .preds(c_id)
            .iter()
            .position(|&x| x == d)
            .expect("d must be an operand of its consumer") as u8;
        match &mut folded {
            Opcode::Vector {
                pre: Some((_, idx)),
                ..
            }
            | Opcode::Matrix {
                pre: Some((_, idx)),
                ..
            } => *idx = operand_idx,
            _ => unreachable!(),
        }
        // Rewire: C's operand d ← P's inputs (in order), then drop P and d.
        let p_inputs: Vec<NodeId> = g.preds(p_id).to_vec();
        // Replace d with the first input, append the rest after it is not
        // meaningful for a single-input pre op; standalone pres are unary.
        debug_assert_eq!(p_inputs.len(), 1, "standalone pre ops are unary");
        g.replace_operand(c_id, d, p_inputs[0]);
        if let crate::node::NodeKind::Op(op) = &mut g.node_mut(c_id).kind {
            *op = folded;
        }
        g.remove_nodes(&[p_id, d]);
        stats.pre_merges += 1;
        stats.nodes_removed += 2;
        return true;
    }
    false
}

/// Attempt one post-merge anywhere in the graph; true if one was applied.
fn try_post_merge(g: &mut Graph, stats: &mut MergeStats) -> bool {
    let ids: Vec<NodeId> = g.ids().collect();
    for c_id in ids {
        let Some(c_op) = g.opcode(c_id) else { continue };
        let Some(post) = standalone_post(&c_op) else {
            continue;
        };
        // C is unary with one output.
        if g.preds(c_id).len() != 1 || g.succs(c_id).len() != 1 {
            continue;
        }
        let d = g.preds(c_id)[0];
        let out = g.succs(c_id)[0];
        // d must be produced by a vector-core op without a post stage and
        // consumed only by C.
        let Some(p_id) = g.producer(d) else { continue };
        if g.succs(d).len() != 1 || g.succs(p_id).len() != 1 {
            continue;
        }
        let Some(p_op) = g.opcode(p_id) else { continue };
        let folded = match p_op {
            Opcode::Vector {
                pre,
                core,
                post: None,
            } if core != CoreOp::Pass => Some(Opcode::Vector {
                pre,
                core,
                post: Some(post),
            }),
            Opcode::Matrix {
                pre,
                core,
                post: None,
            } if core != CoreOp::Pass => Some(Opcode::Matrix {
                pre,
                core,
                post: Some(post),
            }),
            _ => None,
        };
        let Some(folded) = folded else { continue };
        // Rewire: P now writes `out` directly; drop C and d.
        g.replace_output(p_id, d, out);
        if let crate::node::NodeKind::Op(op) = &mut g.node_mut(p_id).kind {
            *op = folded;
        }
        g.remove_nodes(&[c_id, d]);
        stats.post_merges += 1;
        stats.nodes_removed += 2;
        return true;
    }
    false
}

/// Fold pre-/post-processing chains into single pipeline nodes, to
/// fixpoint. Returns the statistics of the run.
pub fn merge_pipeline_ops(g: &mut Graph) -> MergeStats {
    let mut stats = MergeStats::default();
    loop {
        let a = try_pre_merge(g, &mut stats);
        let b = try_post_merge(g, &mut stats);
        if !a && !b {
            break;
        }
    }
    debug_assert!(g.validate().is_ok(), "merge pass broke IR invariants");
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Category, DataKind, PostOp, PreOp};

    /// fig. 6 left: hermitian (pre) → v_mul.
    #[test]
    fn pre_merge_folds_hermitian_into_core_op() {
        let mut g = Graph::new("pre");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (_, ah) = g.add_op_with_output(
            Opcode::Vector {
                pre: Some((PreOp::Hermitian, 0)),
                core: CoreOp::Pass,
                post: None,
            },
            &[a],
            DataKind::Vector,
            "herm",
        );
        let (_, _out) = g.add_op_with_output(
            Opcode::vector(CoreOp::Mul),
            &[ah, b],
            DataKind::Vector,
            "mul",
        );
        g.validate().unwrap();
        let before = g.len();
        let stats = merge_pipeline_ops(&mut g);
        assert_eq!(stats.pre_merges, 1);
        assert_eq!(stats.post_merges, 0);
        assert_eq!(g.len(), before - 2);
        // Exactly one vector op remains, with a fused pre stage on
        // operand 0.
        let v_ops: Vec<_> = g
            .ids()
            .filter(|&i| g.category(i) == Category::VectorOp)
            .collect();
        assert_eq!(v_ops.len(), 1);
        match g.opcode(v_ops[0]).unwrap() {
            Opcode::Vector {
                pre: Some((PreOp::Hermitian, 0)),
                core: CoreOp::Mul,
                post: None,
            } => {}
            other => panic!("unexpected fold: {other:?}"),
        }
        g.validate().unwrap();
    }

    /// fig. 6 right: matrix op whose vector output is post-processed.
    #[test]
    fn post_merge_folds_sort_into_matrix_op() {
        let mut g = Graph::new("post");
        let ins: Vec<_> = (0..4)
            .map(|i| g.add_data(DataKind::Vector, &format!("r{i}")))
            .collect();
        let (_, v) = g.add_op_with_output(
            Opcode::matrix(CoreOp::SquSum),
            &ins,
            DataKind::Vector,
            "squsum",
        );
        let (_, _sorted) = g.add_op_with_output(
            Opcode::Vector {
                pre: None,
                core: CoreOp::Pass,
                post: Some(PostOp::Sort),
            },
            &[v],
            DataKind::Vector,
            "sort",
        );
        let stats = merge_pipeline_ops(&mut g);
        assert_eq!(stats.post_merges, 1);
        let m_ops: Vec<_> = g
            .ids()
            .filter(|&i| g.category(i) == Category::MatrixOp)
            .collect();
        assert_eq!(m_ops.len(), 1);
        match g.opcode(m_ops[0]).unwrap() {
            Opcode::Matrix {
                pre: None,
                core: CoreOp::SquSum,
                post: Some(PostOp::Sort),
            } => {}
            other => panic!("unexpected fold: {other:?}"),
        }
        g.validate().unwrap();
    }

    /// A full pre → core → post chain collapses to one node.
    #[test]
    fn chain_collapses_to_single_pipeline_node() {
        let mut g = Graph::new("chain");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (_, am) = g.add_op_with_output(
            Opcode::Vector {
                pre: Some((PreOp::Mask(0b1010), 0)),
                core: CoreOp::Pass,
                post: None,
            },
            &[a],
            DataKind::Vector,
            "mask",
        );
        let (_, s) = g.add_op_with_output(
            Opcode::vector(CoreOp::Add),
            &[am, b],
            DataKind::Vector,
            "add",
        );
        let (_, _sorted) = g.add_op_with_output(
            Opcode::Vector {
                pre: None,
                core: CoreOp::Pass,
                post: Some(PostOp::Sort),
            },
            &[s],
            DataKind::Vector,
            "sort",
        );
        let stats = merge_pipeline_ops(&mut g);
        assert_eq!(stats.pre_merges, 1);
        assert_eq!(stats.post_merges, 1);
        let ops: Vec<_> = g.ids().filter(|&i| g.category(i).is_op()).collect();
        assert_eq!(ops.len(), 1);
        match g.opcode(ops[0]).unwrap() {
            Opcode::Vector {
                pre: Some((PreOp::Mask(0b1010), 0)),
                core: CoreOp::Add,
                post: Some(PostOp::Sort),
            } => {}
            other => panic!("unexpected fold: {other:?}"),
        }
    }

    /// No merge when the intermediate datum has a second consumer: its
    /// value is observable and must be materialised.
    #[test]
    fn shared_intermediate_blocks_merge() {
        let mut g = Graph::new("shared");
        let a = g.add_data(DataKind::Vector, "a");
        let (_, ah) = g.add_op_with_output(
            Opcode::Vector {
                pre: Some((PreOp::Hermitian, 0)),
                core: CoreOp::Pass,
                post: None,
            },
            &[a],
            DataKind::Vector,
            "herm",
        );
        let b = g.add_data(DataKind::Vector, "b");
        g.add_op_with_output(
            Opcode::vector(CoreOp::Mul),
            &[ah, b],
            DataKind::Vector,
            "m1",
        );
        g.add_op_with_output(
            Opcode::vector(CoreOp::Add),
            &[ah, b],
            DataKind::Vector,
            "m2",
        );
        let before = g.len();
        let stats = merge_pipeline_ops(&mut g);
        assert_eq!(stats.pre_merges, 0);
        assert_eq!(g.len(), before);
    }

    /// No merge into an op that already has the stage occupied.
    #[test]
    fn occupied_pre_stage_blocks_merge() {
        let mut g = Graph::new("occupied");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (_, ah) = g.add_op_with_output(
            Opcode::Vector {
                pre: Some((PreOp::Hermitian, 0)),
                core: CoreOp::Pass,
                post: None,
            },
            &[a],
            DataKind::Vector,
            "herm",
        );
        g.add_op_with_output(
            Opcode::Vector {
                pre: Some((PreOp::Mask(1), 1)),
                core: CoreOp::Mul,
                post: None,
            },
            &[ah, b],
            DataKind::Vector,
            "mul",
        );
        let stats = merge_pipeline_ops(&mut g);
        assert_eq!(stats.pre_merges, 0);
    }

    /// Merging reduces the critical path the same way the hardware does:
    /// two pipeline trips become one.
    #[test]
    fn merge_halves_pipeline_latency_of_chain() {
        use crate::latency::LatencyModel;
        let mut g = Graph::new("lat");
        let a = g.add_data(DataKind::Vector, "a");
        let (_, ah) = g.add_op_with_output(
            Opcode::Vector {
                pre: Some((PreOp::Hermitian, 0)),
                core: CoreOp::Pass,
                post: None,
            },
            &[a],
            DataKind::Vector,
            "herm",
        );
        let b = g.add_data(DataKind::Vector, "b");
        g.add_op_with_output(
            Opcode::vector(CoreOp::Mul),
            &[ah, b],
            DataKind::Vector,
            "mul",
        );
        let lm = LatencyModel::default();
        let before = g.critical_path(&lm.of(&g));
        assert_eq!(before, 14);
        merge_pipeline_ops(&mut g);
        let after = g.critical_path(&lm.of(&g));
        assert_eq!(after, 7);
    }
}
