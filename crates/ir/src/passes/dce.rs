//! Dead-code elimination: remove operations whose results can never
//! reach an application output.
//!
//! DSL programs routinely record intermediates that end up unused (the
//! run-for-debugging style encourages it); scheduling them would waste
//! lanes and memory slots. The pass keeps every data node reachable
//! *backwards* from the outputs (live), plus the application inputs —
//! inputs are externally visible state and never removed, even when no
//! live op consumes them.

use crate::graph::Graph;
use crate::node::NodeId;

/// Statistics of one [`eliminate_dead_code`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DceStats {
    pub ops_removed: usize,
    pub data_removed: usize,
}

/// Remove every op (and its outputs) that no application output depends
/// on. `keep` marks extra data nodes to treat as live roots (e.g. values
/// an embedder wants to observe).
pub fn eliminate_dead_code(g: &mut Graph, keep: &[NodeId]) -> DceStats {
    let mut live = vec![false; g.len()];
    // Roots: outputs + explicitly kept + all inputs.
    let mut stack: Vec<NodeId> = g.outputs();
    stack.extend_from_slice(keep);
    for n in g.ids() {
        if g.category(n).is_data() && g.producer(n).is_none() {
            live[n.idx()] = true; // inputs stay, but don't pull anything in
        }
    }
    while let Some(n) = stack.pop() {
        if live[n.idx()] {
            continue;
        }
        live[n.idx()] = true;
        for &p in g.preds(n) {
            stack.push(p);
        }
    }
    // An op is live iff marked; its outputs follow it (an op with one live
    // output keeps all outputs — matrix ops write atomically).
    let mut dead: Vec<NodeId> = Vec::new();
    let mut ops_removed = 0;
    let mut data_removed = 0;
    for n in g.ids() {
        let cat = g.category(n);
        if cat.is_op() {
            let any_live_out = g.succs(n).iter().any(|&d| live[d.idx()]);
            if !any_live_out && !live[n.idx()] {
                dead.push(n);
                ops_removed += 1;
                for &d in g.succs(n) {
                    dead.push(d);
                    data_removed += 1;
                }
            }
        } else if !live[n.idx()] && g.producer(n).is_none() {
            // unreachable: inputs were marked live above
        }
    }
    // Removing ops may orphan upstream data; iterate to a fixpoint.
    if !dead.is_empty() {
        g.remove_nodes(&dead);
        let rec = eliminate_dead_code(g, &[]);
        ops_removed += rec.ops_removed;
        data_removed += rec.data_removed;
    }
    DceStats {
        ops_removed,
        data_removed,
    }
}

/// Aggressive variant: treat `outputs` as the *only* observable values
/// and delete every op not needed for them (inputs always stay).
pub fn prune_to_outputs(g: &mut Graph, outputs: &[NodeId]) -> DceStats {
    let mut live = vec![false; g.len()];
    let mut stack: Vec<NodeId> = outputs.to_vec();
    while let Some(n) = stack.pop() {
        if live[n.idx()] {
            continue;
        }
        live[n.idx()] = true;
        for &p in g.preds(n) {
            stack.push(p);
        }
    }
    let mut dead = Vec::new();
    let mut ops_removed = 0;
    let mut data_removed = 0;
    for n in g.ids() {
        if live[n.idx()] {
            continue;
        }
        let cat = g.category(n);
        if cat.is_op() {
            dead.push(n);
            ops_removed += 1;
        } else if g.producer(n).is_some() {
            dead.push(n);
            data_removed += 1;
        }
        // Producer-less data (inputs) always stay.
    }
    g.remove_nodes(&dead);
    DceStats {
        ops_removed,
        data_removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{CoreOp, DataKind, Opcode};

    #[test]
    fn unused_chain_is_removed() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        // Live chain.
        let (_, x) = g.add_op_with_output(
            Opcode::vector(CoreOp::Add),
            &[a, b],
            DataKind::Vector,
            "live",
        );
        let _ = x;
        // Dead chain: two dependent ops, nothing downstream.
        let (_, d1) = g.add_op_with_output(
            Opcode::vector(CoreOp::Mul),
            &[a, b],
            DataKind::Vector,
            "dead1",
        );
        let (_, _d2) = g.add_op_with_output(
            Opcode::vector(CoreOp::Sub),
            &[d1, b],
            DataKind::Vector,
            "dead2",
        );
        let before = g.len();
        // Everything is a sink here (x, d2) — so nothing is dead yet.
        let st = eliminate_dead_code(&mut g, &[]);
        assert_eq!(st.ops_removed, 0);
        assert_eq!(g.len(), before);
    }

    #[test]
    fn keep_list_protects_named_values() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let (_, x) =
            g.add_op_with_output(Opcode::vector(CoreOp::SquSum), &[a], DataKind::Scalar, "x");
        let (_, y) = g.add_op_with_output(
            Opcode::Scalar(crate::node::ScalarOp::Sqrt),
            &[x],
            DataKind::Scalar,
            "y",
        );
        // Both x and y live (y is the sink); protecting x changes nothing.
        let st = eliminate_dead_code(&mut g, &[x]);
        assert_eq!(st.ops_removed, 0);
        let _ = y;
        g.validate().unwrap();
    }

    #[test]
    fn orphaned_upstream_collapses_transitively() {
        // in → op1 → d1 → op2 → d2, and separately in → live → out.
        // Remove nothing at first; then simulate "d2 became unobserved" by
        // rebuilding without consuming d2 and adding a live sink.
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let (_, live_out) = g.add_op_with_output(
            Opcode::vector(CoreOp::Add),
            &[a, a],
            DataKind::Vector,
            "live",
        );
        let (_, d1) =
            g.add_op_with_output(Opcode::vector(CoreOp::Mul), &[a, a], DataKind::Vector, "u1");
        let (op2, d2) = g.add_op_with_output(
            Opcode::vector(CoreOp::Sub),
            &[d1, a],
            DataKind::Vector,
            "u2",
        );
        // Make d2 live? No — instead mark only live_out as output by giving
        // d2 a consumer we then strip: simplest is to DCE with keep=[d2]
        // (nothing removed), then DCE without keep but treating d2's chain
        // as dead requires d2 to not be a sink. Give d2 a dead consumer
        // whose own output is consumed by nothing *and* d2's chain is not
        // an output... Since all sinks are roots, the realistic dead-code
        // scenario is produced by graph surgery: drop d2 from the sink set
        // by removing it outright.
        g.remove_nodes(&[op2, d2]);
        // Now d1 is a sink... still "output". The pass treats any sink as
        // observable, so nothing is removed — documents the convention.
        let st = eliminate_dead_code(&mut g, &[]);
        assert_eq!(st.ops_removed, 0);
        let _ = live_out;
        g.validate().unwrap();
    }

    /// The realistic trigger: an embedder declares the true outputs via
    /// a keep-list *after* deleting the rest of the sink set.
    #[test]
    fn explicit_root_set_prunes_everything_else() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let (_, wanted) = g.add_op_with_output(
            Opcode::vector(CoreOp::Add),
            &[a, a],
            DataKind::Vector,
            "keep",
        );
        let (_, d1) =
            g.add_op_with_output(Opcode::vector(CoreOp::Mul), &[a, a], DataKind::Vector, "u1");
        let (_, d2) = g.add_op_with_output(
            Opcode::vector(CoreOp::Sub),
            &[d1, a],
            DataKind::Vector,
            "u2",
        );
        let _ = d2;
        let st = prune_to_outputs(&mut g, &[wanted]);
        assert_eq!(st.ops_removed, 2);
        assert_eq!(st.data_removed, 2);
        g.validate().unwrap();
        assert_eq!(g.outputs().len(), 1);
    }
}
