//! Common-subexpression elimination: operations with the same opcode and
//! the same operand list compute the same values, so all but one can be
//! removed and their consumers redirected.
//!
//! DSL programs create duplicates naturally — e.g. `a.v_dotp(&b)` written
//! twice in different expressions records two identical dot products.
//! Scheduling both wastes a lane-cycle and a memory slot; after CSE the
//! kernel pays once. The pass works bottom-up in topological order so
//! chains of duplicates collapse in one run.

use crate::graph::Graph;
use crate::node::{NodeId, Opcode};
use std::collections::HashMap;

/// Statistics of one [`eliminate_common_subexpressions`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CseStats {
    pub ops_removed: usize,
    pub data_removed: usize,
}

/// Merge structurally identical operations. Returns the statistics and
/// leaves the graph valid.
pub fn eliminate_common_subexpressions(g: &mut Graph) -> CseStats {
    let mut stats = CseStats::default();
    while let Some((dup, orig)) = find_duplicate(g) {
        // Redirect every consumer of dup's outputs to orig's outputs
        // (position-wise — matrix ops produce up to four).
        let dup_outs: Vec<NodeId> = g.succs(dup).to_vec();
        let orig_outs: Vec<NodeId> = g.succs(orig).to_vec();
        debug_assert_eq!(dup_outs.len(), orig_outs.len());
        for (&d_out, &o_out) in dup_outs.iter().zip(&orig_outs) {
            for consumer in g.succs(d_out).to_vec() {
                g.replace_operand(consumer, d_out, o_out);
            }
        }
        let mut dead = vec![dup];
        dead.extend(&dup_outs);
        stats.ops_removed += 1;
        stats.data_removed += dup_outs.len();
        g.remove_nodes(&dead);
    }
    debug_assert!(g.validate().is_ok(), "CSE broke IR invariants");
    stats
}

/// Find one (duplicate, original) op pair: same opcode, same operands.
fn find_duplicate(g: &Graph) -> Option<(NodeId, NodeId)> {
    let mut seen: HashMap<(Opcode, Vec<NodeId>), NodeId> = HashMap::new();
    for n in g.ids() {
        let Some(op) = g.opcode(n) else { continue };
        let key = (op, g.preds(n).to_vec());
        match seen.get(&key) {
            Some(&orig) => return Some((n, orig)),
            None => {
                seen.insert(key, n);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Category, CoreOp, DataKind, Opcode};

    #[test]
    fn duplicate_dot_products_collapse() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (_, d1) =
            g.add_op_with_output(Opcode::vector(CoreOp::DotP), &[a, b], DataKind::Scalar, "x");
        let (_, d2) =
            g.add_op_with_output(Opcode::vector(CoreOp::DotP), &[a, b], DataKind::Scalar, "y");
        // Both consumed downstream.
        let (_, _) = g.add_op_with_output(
            Opcode::Scalar(crate::node::ScalarOp::Add),
            &[d1, d2],
            DataKind::Scalar,
            "sum",
        );
        let st = eliminate_common_subexpressions(&mut g);
        assert_eq!(st.ops_removed, 1);
        assert_eq!(st.data_removed, 1);
        assert_eq!(g.count(Category::VectorOp), 1);
        // The adder now reads the surviving scalar twice.
        let add = g
            .ids()
            .find(|&n| g.category(n) == Category::ScalarOp)
            .unwrap();
        assert_eq!(g.preds(add)[0], g.preds(add)[1]);
        g.validate().unwrap();
    }

    #[test]
    fn operand_order_distinguishes_ops() {
        // dotp(a,b) and dotp(b,a) are different computations (conjugation).
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        g.add_op_with_output(Opcode::vector(CoreOp::DotP), &[a, b], DataKind::Scalar, "x");
        g.add_op_with_output(Opcode::vector(CoreOp::DotP), &[b, a], DataKind::Scalar, "y");
        let st = eliminate_common_subexpressions(&mut g);
        assert_eq!(st.ops_removed, 0);
    }

    #[test]
    fn chains_of_duplicates_collapse_transitively() {
        // Two identical adds feed two (then-identical) muls.
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (_, s1) =
            g.add_op_with_output(Opcode::vector(CoreOp::Add), &[a, b], DataKind::Vector, "s1");
        let (_, s2) =
            g.add_op_with_output(Opcode::vector(CoreOp::Add), &[a, b], DataKind::Vector, "s2");
        g.add_op_with_output(
            Opcode::vector(CoreOp::Mul),
            &[s1, b],
            DataKind::Vector,
            "m1",
        );
        g.add_op_with_output(
            Opcode::vector(CoreOp::Mul),
            &[s2, b],
            DataKind::Vector,
            "m2",
        );
        let st = eliminate_common_subexpressions(&mut g);
        // add collapses first, making the muls identical → both collapse.
        assert_eq!(st.ops_removed, 2);
        assert_eq!(g.count(Category::VectorOp), 2);
        g.validate().unwrap();
    }

    #[test]
    fn cse_preserves_semantics() {
        use crate::sem::{eval_graph, Value};
        use std::collections::HashMap as Map;
        let build = || {
            let mut g = Graph::new("t");
            let a = g.add_data(DataKind::Vector, "a");
            let b = g.add_data(DataKind::Vector, "b");
            let (_, d1) =
                g.add_op_with_output(Opcode::vector(CoreOp::DotP), &[a, b], DataKind::Scalar, "x");
            let (_, d2) =
                g.add_op_with_output(Opcode::vector(CoreOp::DotP), &[a, b], DataKind::Scalar, "y");
            let (_, out) = g.add_op_with_output(
                Opcode::Scalar(crate::node::ScalarOp::Mul),
                &[d1, d2],
                DataKind::Scalar,
                "sq",
            );
            (g, a, b, out)
        };
        let inputs = |a: NodeId, b: NodeId| {
            let mut m: Map<NodeId, Value> = Map::new();
            m.insert(a, Value::V([crate::cplx::Cplx::real(2.0); 4]));
            m.insert(b, Value::V([crate::cplx::Cplx::real(3.0); 4]));
            m
        };
        let (g0, a0, b0, out0) = build();
        let v0 = eval_graph(&g0, &inputs(a0, b0)).unwrap()[&out0];
        let (mut g1, a1, b1, _) = build();
        eliminate_common_subexpressions(&mut g1);
        let out1 = g1.outputs()[0];
        let v1 = eval_graph(&g1, &inputs(a1, b1)).unwrap()[&out1];
        assert!(v0.approx_eq(&v1, 1e-12));
    }

    #[test]
    fn matmul_diagonal_symmetry_is_not_folded() {
        // In MATMUL (A·Aᴴ) the (i,j) and (j,i) dot products have swapped
        // operands → CSE must keep all 16 (matching the paper's |V| = 44).
        let mut g = Graph::new("mm");
        let rows: Vec<NodeId> = (0..4)
            .map(|i| g.add_data(DataKind::Vector, &format!("v{i}")))
            .collect();
        for &ri in &rows {
            for &rj in &rows {
                g.add_op_with_output(
                    Opcode::vector(CoreOp::DotP),
                    &[ri, rj],
                    DataKind::Scalar,
                    "d",
                );
            }
        }
        let st = eliminate_common_subexpressions(&mut g);
        assert_eq!(st.ops_removed, 0);
        assert_eq!(g.count(Category::VectorOp), 16);
    }
}
