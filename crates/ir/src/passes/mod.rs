//! IR-to-IR transformations applied before scheduling.

pub mod cse;
pub mod dce;
pub mod merge;
