//! XML serialisation of the dataflow graph.
//!
//! The paper's DSL emits the IR "in XML format … which is later on input
//! to the code generation tool chain". This module provides the same
//! interchange point: [`to_xml`] writes a graph, [`from_xml`] reads one
//! back. The format is a small, self-describing element-per-node schema:
//!
//! ```xml
//! <graph name="matmul">
//!   <node id="0" kind="data" data="vector" name="v1"/>
//!   <node id="8" kind="op" category="vector_op" core="dotp" name="dot"/>
//!   <edge from="0" to="8"/>
//! </graph>
//! ```
//!
//! The parser is hand-rolled (no external dependencies) and handles the
//! subset the writer produces: elements, attributes, self-closing tags,
//! comments and the five standard entities.

use crate::graph::Graph;
use crate::node::{CoreOp, DataKind, NodeId, NodeKind, Opcode, PostOp, PreOp, ScalarOp};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Errors raised by [`from_xml`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XmlError {
    Syntax(String),
    UnknownAttr(String),
    MissingAttr(&'static str),
    BadValue(String),
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XmlError::Syntax(m) => write!(f, "XML syntax error: {m}"),
            XmlError::UnknownAttr(a) => write!(f, "unknown attribute {a}"),
            XmlError::MissingAttr(a) => write!(f, "missing attribute {a}"),
            XmlError::BadValue(v) => write!(f, "bad value {v}"),
        }
    }
}

impl std::error::Error for XmlError {}

// ---- writing ----------------------------------------------------------------

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(ch),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, XmlError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch != '&' {
            out.push(ch);
            continue;
        }
        let mut ent = String::new();
        for c in chars.by_ref() {
            if c == ';' {
                break;
            }
            ent.push(c);
        }
        out.push(match ent.as_str() {
            "amp" => '&',
            "lt" => '<',
            "gt" => '>',
            "quot" => '"',
            "apos" => '\'',
            other => return Err(XmlError::BadValue(format!("&{other};"))),
        });
    }
    Ok(out)
}

fn core_str(c: CoreOp) -> &'static str {
    match c {
        CoreOp::Pass => "pass",
        CoreOp::Add => "add",
        CoreOp::Sub => "sub",
        CoreOp::Mul => "mul",
        CoreOp::Scale => "scale",
        CoreOp::DotP => "dotp",
        CoreOp::SquSum => "squsum",
        CoreOp::Mac => "mac",
    }
}

fn core_from(s: &str) -> Result<CoreOp, XmlError> {
    Ok(match s {
        "pass" => CoreOp::Pass,
        "add" => CoreOp::Add,
        "sub" => CoreOp::Sub,
        "mul" => CoreOp::Mul,
        "scale" => CoreOp::Scale,
        "dotp" => CoreOp::DotP,
        "squsum" => CoreOp::SquSum,
        "mac" => CoreOp::Mac,
        other => return Err(XmlError::BadValue(other.into())),
    })
}

fn pre_str(p: PreOp) -> String {
    match p {
        PreOp::Hermitian => "hermitian".into(),
        PreOp::Mask(m) => format!("mask:{m}"),
        PreOp::Shuffle(sh) => format!("shuffle:{sh}"),
    }
}

fn pre_from(s: &str) -> Result<PreOp, XmlError> {
    if s == "hermitian" {
        return Ok(PreOp::Hermitian);
    }
    if let Some(m) = s.strip_prefix("mask:") {
        return m
            .parse()
            .map(PreOp::Mask)
            .map_err(|_| XmlError::BadValue(s.into()));
    }
    if let Some(m) = s.strip_prefix("shuffle:") {
        return m
            .parse()
            .map(PreOp::Shuffle)
            .map_err(|_| XmlError::BadValue(s.into()));
    }
    Err(XmlError::BadValue(s.into()))
}

fn post_str(p: PostOp) -> &'static str {
    match p {
        PostOp::Sort => "sort",
        PostOp::Conj => "conj",
        PostOp::Neg => "neg",
    }
}

fn post_from(s: &str) -> Result<PostOp, XmlError> {
    Ok(match s {
        "sort" => PostOp::Sort,
        "conj" => PostOp::Conj,
        "neg" => PostOp::Neg,
        other => return Err(XmlError::BadValue(other.into())),
    })
}

fn scalar_str(s: ScalarOp) -> &'static str {
    match s {
        ScalarOp::Sqrt => "sqrt",
        ScalarOp::RSqrt => "rsqrt",
        ScalarOp::Div => "div",
        ScalarOp::Recip => "recip",
        ScalarOp::CordicRot => "cordic_rot",
        ScalarOp::CordicVec => "cordic_vec",
        ScalarOp::Add => "add",
        ScalarOp::Sub => "sub",
        ScalarOp::Mul => "mul",
        ScalarOp::Neg => "neg",
    }
}

fn scalar_from(s: &str) -> Result<ScalarOp, XmlError> {
    Ok(match s {
        "sqrt" => ScalarOp::Sqrt,
        "rsqrt" => ScalarOp::RSqrt,
        "div" => ScalarOp::Div,
        "recip" => ScalarOp::Recip,
        "cordic_rot" => ScalarOp::CordicRot,
        "cordic_vec" => ScalarOp::CordicVec,
        "add" => ScalarOp::Add,
        "sub" => ScalarOp::Sub,
        "mul" => ScalarOp::Mul,
        "neg" => ScalarOp::Neg,
        other => return Err(XmlError::BadValue(other.into())),
    })
}

/// Serialise a graph to XML.
pub fn to_xml(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, r#"<graph name="{}">"#, escape(&g.name));
    for id in g.ids() {
        let node = g.node(id);
        match &node.kind {
            NodeKind::Data(dk) => {
                let dks = match dk {
                    DataKind::Vector => "vector",
                    DataKind::Scalar => "scalar",
                };
                let _ = writeln!(
                    out,
                    r#"  <node id="{}" kind="data" data="{}" name="{}"/>"#,
                    id.0,
                    dks,
                    escape(&node.name)
                );
            }
            NodeKind::Op(op) => {
                let mut attrs = String::new();
                match op {
                    Opcode::Vector { pre, core, post } | Opcode::Matrix { pre, core, post } => {
                        let cat = if matches!(op, Opcode::Matrix { .. }) {
                            "matrix_op"
                        } else {
                            "vector_op"
                        };
                        let _ = write!(attrs, r#" category="{cat}" core="{}""#, core_str(*core));
                        if let Some((p, idx)) = pre {
                            let _ = write!(attrs, r#" pre="{}" pre_operand="{idx}""#, pre_str(*p));
                        }
                        if let Some(p) = post {
                            let _ = write!(attrs, r#" post="{}""#, post_str(*p));
                        }
                    }
                    Opcode::Scalar(s) => {
                        let _ = write!(attrs, r#" category="scalar_op" op="{}""#, scalar_str(*s));
                    }
                    Opcode::Index(k) => {
                        let _ = write!(attrs, r#" category="index" element="{k}""#);
                    }
                    Opcode::Merge => {
                        let _ = write!(attrs, r#" category="merge""#);
                    }
                }
                let _ = writeln!(
                    out,
                    r#"  <node id="{}" kind="op"{attrs} name="{}"/>"#,
                    id.0,
                    escape(&node.name)
                );
            }
        }
    }
    // Emit each node's incoming edges in operand order so that a parse
    // reconstructs identical `preds` lists (operand order is significant).
    for t in g.ids() {
        for &f in g.preds(t) {
            let _ = writeln!(out, r#"  <edge from="{}" to="{}"/>"#, f.0, t.0);
        }
    }
    out.push_str("</graph>\n");
    out
}

// ---- parsing ------------------------------------------------------------------

struct Element {
    name: String,
    attrs: HashMap<String, String>,
    closing: bool,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            let r = self.rest();
            let trimmed = r.trim_start();
            self.pos += r.len() - trimmed.len();
            if let Some(after) = self.rest().strip_prefix("<!--") {
                match after.find("-->") {
                    Some(k) => self.pos += 4 + k + 3,
                    None => {
                        self.pos = self.src.len();
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    /// Next element tag, or `None` at end of input.
    fn next_element(&mut self) -> Result<Option<Element>, XmlError> {
        self.skip_ws_and_comments();
        if self.rest().is_empty() {
            return Ok(None);
        }
        if !self.rest().starts_with('<') {
            return Err(XmlError::Syntax(format!(
                "expected '<' at byte {}",
                self.pos
            )));
        }
        let end = self
            .rest()
            .find('>')
            .ok_or_else(|| XmlError::Syntax("unterminated tag".into()))?;
        let tag = &self.rest()[1..end];
        self.pos += end + 1;

        let closing = tag.starts_with('/');
        let tag = tag.trim_start_matches('/');
        let tag = tag.trim_end_matches('/').trim();

        let (name, attr_src) = match tag.find(char::is_whitespace) {
            Some(k) => (&tag[..k], tag[k..].trim()),
            None => (tag, ""),
        };
        let mut attrs = HashMap::new();
        let mut rest = attr_src;
        while !rest.is_empty() {
            let eq = rest
                .find('=')
                .ok_or_else(|| XmlError::Syntax(format!("attribute without '=': {rest}")))?;
            let key = rest[..eq].trim().to_string();
            let after = rest[eq + 1..].trim_start();
            if !after.starts_with('"') {
                return Err(XmlError::Syntax(format!("unquoted attribute {key}")));
            }
            let close = after[1..]
                .find('"')
                .ok_or_else(|| XmlError::Syntax(format!("unterminated value for {key}")))?;
            let val = &after[1..1 + close];
            attrs.insert(key, unescape(val)?);
            rest = after[close + 2..].trim_start();
        }
        Ok(Some(Element {
            name: name.to_string(),
            attrs,
            closing,
        }))
    }
}

fn req<'e>(e: &'e Element, key: &'static str) -> Result<&'e str, XmlError> {
    e.attrs
        .get(key)
        .map(String::as_str)
        .ok_or(XmlError::MissingAttr(key))
}

/// Parse a numeric attribute, naming the attribute in the error and
/// distinguishing overflow from garbage — `id="99999999999"` must say
/// "overflows", not just "bad value", or the report is useless on
/// machine-generated files where every id looks plausible.
fn parse_u32(attr: &'static str, s: &str) -> Result<u32, XmlError> {
    use std::num::IntErrorKind;
    s.parse::<u32>().map_err(|e| match e.kind() {
        IntErrorKind::PosOverflow => {
            XmlError::BadValue(format!("{attr}=\"{s}\": overflows u32 (max {})", u32::MAX))
        }
        _ => XmlError::BadValue(format!("{attr}=\"{s}\": not a non-negative integer")),
    })
}

/// Same contract as [`parse_u32`] for the u8-sized attributes
/// (`element`, `pre_operand`).
fn parse_u8(attr: &'static str, s: &str) -> Result<u8, XmlError> {
    use std::num::IntErrorKind;
    s.parse::<u8>().map_err(|e| match e.kind() {
        IntErrorKind::PosOverflow => {
            XmlError::BadValue(format!("{attr}=\"{s}\": overflows u8 (max {})", u8::MAX))
        }
        _ => XmlError::BadValue(format!("{attr}=\"{s}\": not a non-negative integer")),
    })
}

/// Parse a graph from XML produced by [`to_xml`].
pub fn from_xml(src: &str) -> Result<Graph, XmlError> {
    let mut lex = Lexer::new(src);
    let root = lex
        .next_element()?
        .ok_or_else(|| XmlError::Syntax("empty document".into()))?;
    if root.name != "graph" || root.closing {
        return Err(XmlError::Syntax("expected <graph> root".into()));
    }
    let mut g = Graph::new(root.attrs.get("name").map(String::as_str).unwrap_or(""));
    // Node ids must be re-mapped: the writer emits them densely in order,
    // but we tolerate any ordering.
    let mut id_map: HashMap<u32, NodeId> = HashMap::new();
    let mut pending_edges: Vec<(u32, u32)> = Vec::new();

    while let Some(el) = lex.next_element()? {
        if el.closing {
            if el.name == "graph" {
                break;
            }
            continue;
        }
        match el.name.as_str() {
            "node" => {
                let id = parse_u32("id", req(&el, "id")?)?;
                let name = el.attrs.get("name").cloned().unwrap_or_default();
                let kind = match req(&el, "kind")? {
                    "data" => {
                        let dk = match req(&el, "data")? {
                            "vector" => DataKind::Vector,
                            "scalar" => DataKind::Scalar,
                            other => return Err(XmlError::BadValue(other.into())),
                        };
                        NodeKind::Data(dk)
                    }
                    "op" => {
                        let op = match req(&el, "category")? {
                            cat @ ("vector_op" | "matrix_op") => {
                                let core = core_from(req(&el, "core")?)?;
                                let pre = match el.attrs.get("pre") {
                                    Some(p) => {
                                        let idx = el
                                            .attrs
                                            .get("pre_operand")
                                            .map(|v| parse_u8("pre_operand", v))
                                            .transpose()?
                                            .unwrap_or(0);
                                        Some((pre_from(p)?, idx))
                                    }
                                    None => None,
                                };
                                let post =
                                    el.attrs.get("post").map(|p| post_from(p)).transpose()?;
                                if cat == "matrix_op" {
                                    Opcode::Matrix { pre, core, post }
                                } else {
                                    Opcode::Vector { pre, core, post }
                                }
                            }
                            "scalar_op" => Opcode::Scalar(scalar_from(req(&el, "op")?)?),
                            "index" => Opcode::Index(parse_u8("element", req(&el, "element")?)?),
                            "merge" => Opcode::Merge,
                            other => return Err(XmlError::BadValue(other.into())),
                        };
                        NodeKind::Op(op)
                    }
                    other => return Err(XmlError::BadValue(other.into())),
                };
                let nid = g.add_node(kind, &name);
                id_map.insert(id, nid);
            }
            "edge" => {
                pending_edges.push((
                    parse_u32("from", req(&el, "from")?)?,
                    parse_u32("to", req(&el, "to")?)?,
                ));
            }
            other => return Err(XmlError::Syntax(format!("unexpected <{other}>"))),
        }
    }

    for (f, t) in pending_edges {
        let (Some(&f), Some(&t)) = (id_map.get(&f), id_map.get(&t)) else {
            return Err(XmlError::BadValue(format!("edge {f}->{t}")));
        };
        g.add_edge(f, t);
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::CoreOp;

    fn sample() -> Graph {
        let mut g = Graph::new("sample & <demo>");
        let a = g.add_data(DataKind::Vector, "a\"quoted\"");
        let b = g.add_data(DataKind::Vector, "b");
        let (_, s) = g.add_op_with_output(
            Opcode::Vector {
                pre: Some((PreOp::Mask(5), 1)),
                core: CoreOp::DotP,
                post: Some(PostOp::Conj),
            },
            &[a, b],
            DataKind::Scalar,
            "dot",
        );
        let (_, r) = g.add_op_with_output(
            Opcode::Scalar(ScalarOp::RSqrt),
            &[s],
            DataKind::Scalar,
            "rsqrt",
        );
        let idx = g.add_op(Opcode::Index(3), "idx");
        g.add_edge(b, idx);
        let d = g.add_data(DataKind::Scalar, "b3");
        g.add_edge(idx, d);
        let m = g.add_op(Opcode::Merge, "merge");
        g.add_edge(d, m);
        g.add_edge(r, m);
        let out = g.add_data(DataKind::Vector, "out");
        g.add_edge(m, out);
        g
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g = sample();
        let xml = to_xml(&g);
        let g2 = from_xml(&xml).unwrap();
        assert_eq!(g2.name, g.name);
        assert_eq!(g2.len(), g.len());
        assert_eq!(g2.edge_count(), g.edge_count());
        for id in g.ids() {
            assert_eq!(g2.node(id).kind, g.node(id).kind, "{id:?}");
            assert_eq!(g2.node(id).name, g.node(id).name);
            assert_eq!(g2.preds(id), g.preds(id));
        }
    }

    #[test]
    fn roundtrip_twice_is_identity() {
        let g = sample();
        let x1 = to_xml(&g);
        let x2 = to_xml(&from_xml(&x1).unwrap());
        assert_eq!(x1, x2);
    }

    #[test]
    fn escaping_special_chars() {
        assert_eq!(
            escape("a<b>&\"c\"'d'"),
            "a&lt;b&gt;&amp;&quot;c&quot;&apos;d&apos;"
        );
        assert_eq!(unescape("a&lt;b&gt;&amp;").unwrap(), "a<b>&");
        assert!(unescape("&bogus;").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let g = sample();
        let xml = format!("<!-- header -->\n{}", to_xml(&g));
        assert!(from_xml(&xml).is_ok());
    }

    #[test]
    fn missing_attr_reported() {
        let r = from_xml(r#"<graph name="g"><node id="0" kind="data"/></graph>"#);
        assert!(matches!(r, Err(XmlError::MissingAttr("data"))));
    }

    #[test]
    fn dangling_edge_reported() {
        let r = from_xml(r#"<graph name="g"><edge from="0" to="1"/></graph>"#);
        assert!(matches!(r, Err(XmlError::BadValue(_))));
    }

    #[test]
    fn bad_root_reported() {
        assert!(matches!(from_xml("<nope/>"), Err(XmlError::Syntax(_))));
        assert!(matches!(from_xml(""), Err(XmlError::Syntax(_))));
    }

    #[test]
    fn numeric_attr_errors_are_positioned_and_overflow_aware() {
        // Overflow must be called out as overflow and name the attribute.
        let r = from_xml(
            r#"<graph name="g"><node id="99999999999" kind="data" data="scalar"/></graph>"#,
        );
        let Err(XmlError::BadValue(msg)) = r else {
            panic!("expected BadValue, got {r:?}")
        };
        assert!(msg.contains("id=\"99999999999\""), "{msg}");
        assert!(msg.contains("overflows u32"), "{msg}");

        // Garbage is a different diagnostic, still naming the attribute.
        let r = from_xml(r#"<graph name="g"><edge from="x" to="1"/></graph>"#);
        let Err(XmlError::BadValue(msg)) = r else {
            panic!()
        };
        assert!(msg.contains("from=\"x\""), "{msg}");
        assert!(msg.contains("not a non-negative integer"), "{msg}");

        // u8-sized attributes get the same treatment.
        let r = from_xml(
            r#"<graph name="g">
                <node id="0" kind="data" data="vector" name="v"/>
                <node id="1" kind="op" category="index" element="300" name="i"/>
            </graph>"#,
        );
        let Err(XmlError::BadValue(msg)) = r else {
            panic!()
        };
        assert!(msg.contains("element=\"300\""), "{msg}");
        assert!(msg.contains("overflows u8"), "{msg}");
    }

    #[test]
    fn sparse_ids_tolerated() {
        let xml = r#"<graph name="g">
            <node id="7" kind="data" data="scalar" name="x"/>
            <node id="42" kind="op" category="scalar_op" op="neg" name="n"/>
            <node id="3" kind="data" data="scalar" name="y"/>
            <edge from="7" to="42"/>
            <edge from="42" to="3"/>
        </graph>"#;
        let g = from_xml(xml).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 2);
        g.validate().unwrap();
    }
}
