//! Complex arithmetic for the DSL's evaluation semantics.
//!
//! The EIT vector core computes on complex-valued samples (CMAC units);
//! the DSL therefore evaluates every expression over `Cplx` while it
//! records the IR, which is what makes a DSL program *runnable* for
//! functional debugging (the role the paper gives the Scala embedding).

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Cplx {
    pub re: f64,
    pub im: f64,
}

impl Cplx {
    pub const ZERO: Cplx = Cplx { re: 0.0, im: 0.0 };
    pub const ONE: Cplx = Cplx { re: 1.0, im: 0.0 };

    pub fn new(re: f64, im: f64) -> Self {
        Cplx { re, im }
    }

    /// Real number as a complex value.
    pub fn real(re: f64) -> Self {
        Cplx { re, im: 0.0 }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Cplx {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²` (always real, returned as `f64`).
    pub fn abs2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.abs2().sqrt()
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        // For the common case of non-negative reals (norms), stay exact.
        if self.im == 0.0 && self.re >= 0.0 {
            return Cplx::real(self.re.sqrt());
        }
        let r = self.abs();
        let re = ((r + self.re) / 2.0).sqrt();
        let im = ((r - self.re) / 2.0).sqrt() * self.im.signum();
        Cplx { re, im }
    }

    /// Multiplicative inverse `1/z`.
    pub fn recip(self) -> Self {
        let d = self.abs2();
        Cplx {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Reciprocal square root `1/√z`.
    pub fn rsqrt(self) -> Self {
        self.sqrt().recip()
    }

    /// Approximate equality within `eps` (component-wise).
    pub fn approx_eq(self, other: Cplx, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }
}

impl Add for Cplx {
    type Output = Cplx;
    fn add(self, o: Cplx) -> Cplx {
        Cplx {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
}

impl Sub for Cplx {
    type Output = Cplx;
    fn sub(self, o: Cplx) -> Cplx {
        Cplx {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

impl Mul for Cplx {
    type Output = Cplx;
    fn mul(self, o: Cplx) -> Cplx {
        Cplx {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

impl Div for Cplx {
    type Output = Cplx;
    // Division via the reciprocal is the intended formula, not a typo.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, o: Cplx) -> Cplx {
        self * o.recip()
    }
}

impl Neg for Cplx {
    type Output = Cplx;
    fn neg(self) -> Cplx {
        Cplx {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Mul<f64> for Cplx {
    type Output = Cplx;
    fn mul(self, s: f64) -> Cplx {
        Cplx {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl From<f64> for Cplx {
    fn from(re: f64) -> Self {
        Cplx::real(re)
    }
}

impl From<(f64, f64)> for Cplx {
    fn from((re, im): (f64, f64)) -> Self {
        Cplx { re, im }
    }
}

impl fmt::Debug for Cplx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im == 0.0 {
            write!(f, "{}", self.re)
        } else if self.im < 0.0 {
            write!(f, "{}{}i", self.re, self.im)
        } else {
            write!(f, "{}+{}i", self.re, self.im)
        }
    }
}

impl fmt::Display for Cplx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn field_axioms_spotchecks() {
        let a = Cplx::new(1.5, -2.0);
        let b = Cplx::new(-0.5, 3.0);
        let c = Cplx::new(2.0, 0.25);
        assert!((a + b - b).approx_eq(a, EPS));
        assert!((a * b / b).approx_eq(a, EPS));
        assert!(((a + b) * c).approx_eq(a * c + b * c, EPS));
        assert!((a * b).approx_eq(b * a, EPS));
    }

    #[test]
    fn conj_and_abs() {
        let z = Cplx::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.conj(), Cplx::new(3.0, -4.0));
        assert!((z * z.conj()).approx_eq(Cplx::real(25.0), EPS));
    }

    #[test]
    fn sqrt_of_positive_real_is_exact() {
        assert_eq!(Cplx::real(9.0).sqrt(), Cplx::real(3.0));
        assert_eq!(Cplx::real(0.0).sqrt(), Cplx::ZERO);
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(2.0, 3.0), (-1.0, 1.0), (-4.0, 0.0), (0.5, -0.7)] {
            let z = Cplx::new(re, im);
            let s = z.sqrt();
            assert!((s * s).approx_eq(z, 1e-10), "z={z:?}");
            // principal branch: non-negative real part
            assert!(s.re >= 0.0 || (s.re == 0.0 && s.im >= 0.0));
        }
    }

    #[test]
    fn recip_and_rsqrt() {
        let z = Cplx::new(0.0, 2.0);
        assert!((z * z.recip()).approx_eq(Cplx::ONE, EPS));
        let r = Cplx::real(4.0).rsqrt();
        assert!(r.approx_eq(Cplx::real(0.5), EPS));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cplx::real(2.0).to_string(), "2");
        assert_eq!(Cplx::new(1.0, 1.0).to_string(), "1+1i");
        assert_eq!(Cplx::new(1.0, -1.0).to_string(), "1-1i");
    }
}
