//! # eit-ir — the dataflow intermediate representation
//!
//! The IR of §3.2 of the paper: a bipartite, acyclic dataflow graph whose
//! vertices are *operation* nodes (vector/matrix/scalar/index/merge ops)
//! and *data* nodes (vectors and scalars). Matrices never appear as data:
//! the DSL expands each matrix into its four row vectors so the code
//! generator can merge and allocate them freely (§3.2.1).
//!
//! Provided here:
//! - [`node`]/[`graph`] — the graph itself, building, validation
//!   (bipartite, acyclic, single-producer), topological order, earliest
//!   starts and the critical path `|Cr.P|`;
//! - [`latency`] — the latency/duration annotation `l_i`, `d_i` of §3.3;
//! - [`passes::merge`] — the fig. 6 pipeline-merging pass;
//! - [`xml`] — the XML interchange format emitted by the DSL.

pub mod cplx;
pub mod dot;
pub mod graph;
pub mod latency;
pub mod node;
pub mod passes;
pub mod sem;
pub mod xml;

pub use cplx::Cplx;
pub use dot::to_dot;
pub use graph::{Graph, IrError};
pub use latency::{LatencyModel, OpClass};
pub use node::{
    Category, CoreOp, DataKind, Node, NodeId, NodeKind, Opcode, PostOp, PreOp, ScalarOp,
    VectorConfig,
};
pub use passes::cse::{eliminate_common_subexpressions, CseStats};
pub use passes::dce::{eliminate_dead_code, prune_to_outputs, DceStats};
pub use passes::merge::{merge_pipeline_ops, MergeStats};
pub use sem::{apply, eval_graph, SemError, Value};
pub use xml::{from_xml, to_xml, XmlError};
