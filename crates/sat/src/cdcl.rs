//! A compact CDCL solver: two-watched-literal propagation, first-UIP
//! conflict analysis, VSIDS-lite variable activities on an indexed heap,
//! phase saving, and Luby-sequence restarts with learnt-clause reduction
//! at restart boundaries. No dependencies outside std.

/// Variable index (0-based).
pub type Var = u32;

/// A literal: variable + sign, packed as `var << 1 | negated`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit(u32);

impl Lit {
    pub fn pos(v: Var) -> Lit {
        Lit(v << 1)
    }
    pub fn neg(v: Var) -> Lit {
        Lit(v << 1 | 1)
    }
    pub fn var(self) -> Var {
        self.0 >> 1
    }
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }
    fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for Lit {
    /// DIMACS style: 1-based, minus for negation.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{}",
            if self.is_neg() { "-" } else { "" },
            self.var() + 1
        )
    }
}

/// Counters of one `solve` run (cumulative across restarts).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    pub decisions: u64,
    pub conflicts: u64,
    pub propagations: u64,
    pub restarts: u64,
    pub learnt: u64,
}

/// Result of a `solve` call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveOutcome {
    Sat,
    Unsat,
    /// The `should_stop` callback fired (deadline or cancellation) before
    /// a decision either way.
    Stopped,
}

struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
}

const UNDEF: u32 = u32::MAX;

pub struct Solver {
    clauses: Vec<Clause>,
    /// `watches[l.idx()]`: clauses with `l` among their two watched
    /// literals — visited when `l` becomes false.
    watches: Vec<Vec<u32>>,
    /// Per-var assignment: 0 = unassigned, 1 = true, -1 = false.
    assign: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    act_inc: f64,
    heap: VarHeap,
    /// Saved phase per var (last assigned polarity; `false` initially —
    /// the encoding is mostly-false, so this is the productive default).
    polarity: Vec<bool>,
    seen: Vec<bool>,
    unsat: bool,
    pub stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            act_inc: 1.0,
            heap: VarHeap::default(),
            polarity: Vec::new(),
            seen: Vec::new(),
            unsat: false,
            stats: SolverStats::default(),
        }
    }

    pub fn n_vars(&self) -> u32 {
        self.assign.len() as u32
    }

    pub fn new_var(&mut self) -> Var {
        let v = self.assign.len() as Var;
        self.assign.push(0);
        self.level.push(0);
        self.reason.push(UNDEF);
        self.activity.push(0.0);
        self.polarity.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.insert(v, &self.activity);
        v
    }

    fn lit_value(&self, l: Lit) -> i8 {
        let a = self.assign[l.var() as usize];
        if l.is_neg() {
            -a
        } else {
            a
        }
    }

    /// Model value of a variable after `SolveOutcome::Sat`. An
    /// unconstrained variable left unassigned reads as `false`.
    pub fn model_value(&self, v: Var) -> bool {
        self.assign[v as usize] == 1
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Add an input clause. Must be called before `solve`. Tautologies
    /// are dropped; literals already false at the root are stripped.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        if self.unsat {
            return;
        }
        debug_assert_eq!(self.decision_level(), 0);
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            debug_assert!(l.var() < self.n_vars());
            if self.lit_value(l) == 1 || c.contains(&l.negated()) {
                return; // satisfied at root / tautology
            }
            if self.lit_value(l) == -1 || c.contains(&l) {
                continue; // root-false or duplicate
            }
            c.push(l);
        }
        match c.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(c[0], UNDEF) {
                    self.unsat = true;
                }
            }
            _ => {
                let ci = self.clauses.len() as u32;
                self.watches[c[0].idx()].push(ci);
                self.watches[c[1].idx()].push(ci);
                self.clauses.push(Clause {
                    lits: c,
                    learnt: false,
                });
            }
        }
    }

    /// Assign `l` true with the given reason clause; `false` on conflict
    /// with an existing assignment.
    fn enqueue(&mut self, l: Lit, reason: u32) -> bool {
        match self.lit_value(l) {
            1 => true,
            -1 => false,
            _ => {
                let v = l.var() as usize;
                self.assign[v] = if l.is_neg() { -1 } else { 1 };
                self.level[v] = self.decision_level() as u32;
                self.reason[v] = reason;
                self.polarity[v] = !l.is_neg();
                self.trail.push(l);
                true
            }
        }
    }

    /// Propagate to fixpoint; returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = p.negated();
            let ws = std::mem::take(&mut self.watches[false_lit.idx()]);
            let mut keep: Vec<u32> = Vec::with_capacity(ws.len());
            let mut confl: Option<u32> = None;
            'clauses: for (wi, &ci) in ws.iter().enumerate() {
                enum Act {
                    Rewatch(Lit),
                    Unit(Lit),
                    Satisfied,
                    Conflict,
                }
                let act = {
                    let c = &mut self.clauses[ci as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                    let first = c.lits[0];
                    let first_val = {
                        let a = self.assign[first.var() as usize];
                        if first.is_neg() {
                            -a
                        } else {
                            a
                        }
                    };
                    if first_val == 1 {
                        Act::Satisfied
                    } else {
                        let mut found = None;
                        for k in 2..c.lits.len() {
                            let l = c.lits[k];
                            let a = self.assign[l.var() as usize];
                            let val = if l.is_neg() { -a } else { a };
                            if val != -1 {
                                found = Some(k);
                                break;
                            }
                        }
                        match found {
                            Some(k) => {
                                c.lits.swap(1, k);
                                Act::Rewatch(c.lits[1])
                            }
                            None if first_val == -1 => Act::Conflict,
                            None => Act::Unit(first),
                        }
                    }
                };
                match act {
                    Act::Rewatch(w) => {
                        self.watches[w.idx()].push(ci);
                        continue 'clauses;
                    }
                    Act::Satisfied => keep.push(ci),
                    Act::Unit(first) => {
                        keep.push(ci);
                        self.stats.propagations += 1;
                        let ok = self.enqueue(first, ci);
                        debug_assert!(ok);
                    }
                    Act::Conflict => {
                        keep.push(ci);
                        keep.extend_from_slice(&ws[wi + 1..]);
                        confl = Some(ci);
                        break 'clauses;
                    }
                }
            }
            self.watches[false_lit.idx()] = keep;
            if confl.is_some() {
                self.qhead = self.trail.len();
                return confl;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v as usize] += self.act_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
        self.heap.update(v, &self.activity);
    }

    /// First-UIP learning. Returns the learnt clause (asserting literal
    /// first) and the backtrack level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 = UIP
        let mut touched: Vec<Var> = Vec::new();
        let cur_level = self.decision_level() as u32;
        let mut counter = 0usize;
        let mut idx = self.trail.len();
        let mut expanding = false;
        loop {
            let skip = usize::from(expanding);
            // Reason clauses keep their implied literal at position 0.
            for li in skip..self.clauses[confl as usize].lits.len() {
                let q = self.clauses[confl as usize].lits[li];
                let v = q.var();
                if !self.seen[v as usize] && self.level[v as usize] > 0 {
                    self.seen[v as usize] = true;
                    touched.push(v);
                    self.bump_var(v);
                    if self.level[v as usize] >= cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var() as usize] {
                    break;
                }
            }
            let p = self.trail[idx];
            self.seen[p.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = p.negated();
                break;
            }
            confl = self.reason[p.var() as usize];
            debug_assert_ne!(confl, UNDEF, "non-decision literal must have a reason");
            expanding = true;
        }
        for v in touched {
            self.seen[v as usize] = false;
        }
        // Backtrack to the second-highest level in the clause.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var() as usize] > self.level[learnt[max_i].var() as usize] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var() as usize] as usize
        };
        (learnt, bt)
    }

    fn cancel_until(&mut self, lvl: usize) {
        if self.decision_level() <= lvl {
            return;
        }
        let lim = self.trail_lim[lvl];
        for i in (lim..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assign[v as usize] = 0;
            self.reason[v as usize] = UNDEF;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(lvl);
        self.qhead = lim;
    }

    /// Install a learnt clause and enqueue its asserting literal.
    fn record_learnt(&mut self, learnt: Vec<Lit>) {
        self.stats.learnt += 1;
        if learnt.len() == 1 {
            let ok = self.enqueue(learnt[0], UNDEF);
            if !ok {
                self.unsat = true;
            }
            return;
        }
        let ci = self.clauses.len() as u32;
        self.watches[learnt[0].idx()].push(ci);
        self.watches[learnt[1].idx()].push(ci);
        let first = learnt[0];
        self.clauses.push(Clause {
            lits: learnt,
            learnt: true,
        });
        let ok = self.enqueue(first, ci);
        debug_assert!(ok);
    }

    /// Drop the oldest half of the long learnt clauses. Only sound at
    /// decision level 0 (no reason above the root can dangle); watches
    /// are rebuilt and propagation restarted from the top of the trail.
    fn reduce_learnts(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        let learnt_ids: Vec<usize> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && c.lits.len() > 2)
            .map(|(i, _)| i)
            .collect();
        let drop: std::collections::HashSet<usize> =
            learnt_ids[..learnt_ids.len() / 2].iter().copied().collect();
        let mut kept = Vec::with_capacity(self.clauses.len() - drop.len());
        for (i, c) in self.clauses.drain(..).enumerate() {
            if !drop.contains(&i) {
                kept.push(c);
            }
        }
        self.clauses = kept;
        for w in &mut self.watches {
            w.clear();
        }
        for v in 0..self.assign.len() {
            self.reason[v] = UNDEF;
        }
        for (i, c) in self.clauses.iter().enumerate() {
            self.watches[c.lits[0].idx()].push(i as u32);
            self.watches[c.lits[1].idx()].push(i as u32);
        }
        // Re-scan the root trail so the watch invariant is restored.
        self.qhead = 0;
    }

    fn pick_branch(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assign[v as usize] == 0 {
                return Some(v);
            }
        }
        None
    }

    /// Run the CDCL loop. `should_stop` is polled periodically; when it
    /// returns true the search stops with `SolveOutcome::Stopped`.
    pub fn solve(&mut self, should_stop: &mut dyn FnMut() -> bool) -> SolveOutcome {
        if self.unsat {
            return SolveOutcome::Unsat;
        }
        const RESTART_BASE: u64 = 128;
        let mut restart_num = 0u64;
        let mut conflicts_left = luby(restart_num + 1) * RESTART_BASE;
        let mut reduce_at = (self.clauses.len() as u64 / 2).max(4000);
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SolveOutcome::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.cancel_until(bt);
                self.record_learnt(learnt);
                if self.unsat {
                    return SolveOutcome::Unsat;
                }
                self.act_inc /= 0.95;
                conflicts_left = conflicts_left.saturating_sub(1);
                if self.stats.conflicts.is_multiple_of(128) && should_stop() {
                    return SolveOutcome::Stopped;
                }
            } else if conflicts_left == 0 {
                restart_num += 1;
                self.stats.restarts += 1;
                conflicts_left = luby(restart_num + 1) * RESTART_BASE;
                self.cancel_until(0);
                if self.stats.learnt > reduce_at {
                    self.reduce_learnts();
                    reduce_at = reduce_at + reduce_at / 2;
                }
            } else {
                match self.pick_branch() {
                    None => return SolveOutcome::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        if self.stats.decisions.is_multiple_of(1024) && should_stop() {
                            return SolveOutcome::Stopped;
                        }
                        self.trail_lim.push(self.trail.len());
                        let l = if self.polarity[v as usize] {
                            Lit::pos(v)
                        } else {
                            Lit::neg(v)
                        };
                        let ok = self.enqueue(l, UNDEF);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence (1-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8…
fn luby(i: u64) -> u64 {
    let mut i = i;
    loop {
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

/// Max-heap over variables keyed by activity, with a position index for
/// in-place updates (the usual MiniSat order heap).
#[derive(Default)]
struct VarHeap {
    heap: Vec<Var>,
    pos: Vec<usize>,
}

const NOT_IN_HEAP: usize = usize::MAX;

impl VarHeap {
    fn insert(&mut self, v: Var, act: &[f64]) {
        if (v as usize) >= self.pos.len() {
            self.pos.resize(v as usize + 1, NOT_IN_HEAP);
        }
        if self.pos[v as usize] != NOT_IN_HEAP {
            return;
        }
        self.pos[v as usize] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn update(&mut self, v: Var, act: &[f64]) {
        if (v as usize) < self.pos.len() && self.pos[v as usize] != NOT_IN_HEAP {
            self.sift_up(self.pos[v as usize], act);
        }
    }

    fn pop(&mut self, act: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().unwrap();
        self.pos[top as usize] = NOT_IN_HEAP;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let p = (i - 1) / 2;
            if act[self.heap[i] as usize] <= act[self.heap[p] as usize] {
                break;
            }
            self.swap(i, p);
            i = p;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l] as usize] > act[self.heap[best] as usize] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[best] as usize] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a;
        self.pos[self.heap[b] as usize] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_stop() -> impl FnMut() -> bool {
        || false
    }

    fn solver_with(n: u32, clauses: &[&[Lit]]) -> Solver {
        let mut s = Solver::new();
        for _ in 0..n {
            s.new_var();
        }
        for c in clauses {
            s.add_clause(c);
        }
        s
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let p = Lit::pos;
        let n = Lit::neg;
        let mut s = solver_with(2, &[&[p(0), p(1)], &[n(0)]]);
        assert_eq!(s.solve(&mut no_stop()), SolveOutcome::Sat);
        assert!(!s.model_value(0));
        assert!(s.model_value(1));

        let mut s = solver_with(1, &[&[p(0)], &[n(0)]]);
        assert_eq!(s.solve(&mut no_stop()), SolveOutcome::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[h][b]: pigeon h in bin b. Each pigeon somewhere; no two share.
        let mut s = Solver::new();
        let v: Vec<Vec<Lit>> = (0..3)
            .map(|_| (0..2).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for h in &v {
            s.add_clause(&[h[0], h[1]]);
        }
        for b in 0..2 {
            for (h1, r1) in v.iter().enumerate() {
                for r2 in &v[h1 + 1..] {
                    s.add_clause(&[r1[b].negated(), r2[b].negated()]);
                }
            }
        }
        assert_eq!(s.solve(&mut no_stop()), SolveOutcome::Unsat);
        assert!(s.stats.conflicts > 0);
    }

    #[test]
    fn random_3cnf_agrees_with_brute_force() {
        // Deterministic xorshift corpus; 12 vars → 4096-row truth table.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..60 {
            let n_vars = 12u32;
            let n_clauses = 20 + (case % 40);
            let clauses: Vec<Vec<Lit>> = (0..n_clauses)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = (next() % n_vars as u64) as u32;
                            if next() % 2 == 0 {
                                Lit::pos(v)
                            } else {
                                Lit::neg(v)
                            }
                        })
                        .collect()
                })
                .collect();
            let brute_sat = (0..1u32 << n_vars).any(|m| {
                clauses
                    .iter()
                    .all(|c| c.iter().any(|l| ((m >> l.var()) & 1 == 1) != l.is_neg()))
            });
            let mut s = Solver::new();
            for _ in 0..n_vars {
                s.new_var();
            }
            for c in &clauses {
                s.add_clause(c);
            }
            let out = s.solve(&mut no_stop());
            assert_eq!(
                out,
                if brute_sat {
                    SolveOutcome::Sat
                } else {
                    SolveOutcome::Unsat
                },
                "case {case} disagrees with brute force"
            );
            if out == SolveOutcome::Sat {
                for c in &clauses {
                    assert!(
                        c.iter().any(|l| s.model_value(l.var()) != l.is_neg()),
                        "case {case}: model does not satisfy {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn stop_callback_interrupts() {
        // Hard pigeonhole (7 into 6) with an immediately-true stop.
        let mut s = Solver::new();
        let v: Vec<Vec<Lit>> = (0..7)
            .map(|_| (0..6).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for h in &v {
            s.add_clause(&h.clone());
        }
        for b in 0..6 {
            for (h1, r1) in v.iter().enumerate() {
                for r2 in &v[h1 + 1..] {
                    s.add_clause(&[r1[b].negated(), r2[b].negated()]);
                }
            }
        }
        let mut calls = 0u32;
        let out = s.solve(&mut || {
            calls += 1;
            true
        });
        assert_eq!(out, SolveOutcome::Stopped);
        assert!(calls >= 1);
    }
}
