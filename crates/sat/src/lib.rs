//! A small, self-contained SAT backend for the §4.3 modulo-scheduling
//! model: a CDCL solver (watched literals, 1UIP conflict learning,
//! VSIDS-lite activity, Luby restarts) plus an order-encoding CNF
//! compiler for one candidate II, with a DIMACS escape hatch.
//!
//! Like the rest of the workspace, the crate is std-only. The solver is
//! deliberately minimal — the point is not to beat tuned SAT solvers but
//! to give the modulo sweep a second, independently-implemented decision
//! procedure that the CP engine can race (and be cross-checked against;
//! cross-backend disagreement is a first-class test oracle for the
//! solver-independent verifiers).

pub mod cdcl;
pub mod encode;

pub use cdcl::{Lit, SolveOutcome, Solver, SolverStats, Var};
pub use encode::{encode_modulo, Cnf, EncodeError, ModuloEncoding};
