//! Order-encoding CNF compiler for one candidate II of the §4.3 modulo
//! model, mirroring the CP probe model constraint for constraint:
//!
//! - every *op* node gets an absolute start `s ∈ [est, lst]` encoded in
//!   order literals `O_{n,v} ⇔ s_n ≥ v` (monotone chains); window
//!   position `t = s mod II` and stage `k = s div II` are derived, with
//!   window wrap-around excluded by forbidding values whose residue
//!   exceeds `II − max(dur,1)` — exactly the CP model's `t` domain;
//! - *data* nodes are eliminated: a produced datum starts exactly
//!   `latency(producer)` after its producer (the CP `eq_offset`), so
//!   every data-mediated precedence folds into an op-level difference
//!   `s_a + δ ≤ s_b`, encoded as the classic `O_{a,v} → O_{b,v+δ}`
//!   ladder after an est/lst fixpoint has tightened both domains;
//! - per-unit resource conflicts at each residue (the CP `Cumulative`
//!   over `t`): start-residue auxiliaries `ST_{n,r}` are implied by the
//!   start value, and a weighted sequential-counter at-most-`count`
//!   bounds the occupancy-weighted load at every residue of the window
//!   (`UnitTable` occupancy/width, full-width ops by pairwise
//!   exclusion);
//! - one configuration per window slot: differently-configured
//!   vector-core ops may not share a start residue.
//!
//! The encoding covers the paper's first model (reconfigurations
//! excluded, switches counted in post-processing); the banded
//! include-reconfig variant stays CP-only.

use crate::cdcl::{Lit, Var};
use eit_arch::ArchSpec;
use eit_ir::{Category, Graph, NodeId, OpClass};
use std::collections::HashMap;

/// A plain clause database, decoupled from the solver so the same
/// encoding can be solved or dumped as DIMACS.
#[derive(Default)]
pub struct Cnf {
    pub n_vars: u32,
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    fn new_var(&mut self) -> Var {
        let v = self.n_vars;
        self.n_vars += 1;
        v
    }

    fn add(&mut self, clause: Vec<Lit>) {
        self.clauses.push(clause);
    }

    /// Render in DIMACS CNF format (1-based literals).
    pub fn to_dimacs(&self, comments: &[String]) -> String {
        let mut out = String::new();
        for c in comments {
            out.push_str("c ");
            out.push_str(c);
            out.push('\n');
        }
        out.push_str(&format!("p cnf {} {}\n", self.n_vars, self.clauses.len()));
        for c in &self.clauses {
            for &l in c {
                let v = (l.var() + 1) as i64;
                out.push_str(&format!("{} ", if l.is_neg() { -v } else { v }));
            }
            out.push_str("0\n");
        }
        out
    }
}

/// Structured model-build failure: the graph refers to something the
/// machine model cannot price (mirrors the CP probe's named
/// diagnostics).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncodeError {
    pub node: String,
    pub detail: String,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node '{}': {}", self.node, self.detail)
    }
}

/// One candidate II compiled to CNF, with enough structure kept to
/// decode a model back into `(t, k, s)` assignments.
pub struct ModuloEncoding {
    pub cnf: Cnf,
    pub ii: i32,
    /// Op nodes in graph order.
    ops: Vec<NodeId>,
    /// Inclusive start-domain bounds per op (post est/lst fixpoint).
    lo: Vec<i32>,
    hi: Vec<i32>,
    /// First order variable per op: `O_{i,v}` for `v ∈ (lo_i, hi_i]` is
    /// `base[i] + (v − lo_i − 1)`; empty domains have no variables.
    base: Vec<Var>,
}

/// `O_{i,v}` as a three-valued literal: values at or below `lo` are
/// always reached, values above `hi` never.
enum OLit {
    True,
    False,
    Is(Lit),
}

impl ModuloEncoding {
    /// Read the start times out of a satisfying assignment. Returns
    /// `(t, k, s)` in the shapes the modulo scheduler uses: window
    /// position and stage per *op*, absolute start per *node* (produced
    /// data at `s_producer + latency(producer)`, inputs at 0). Total —
    /// an arbitrary (even partial) assignment decodes to *some* value
    /// in-domain; soundness comes from the caller re-verifying.
    pub fn decode(
        &self,
        g: &Graph,
        spec: &ArchSpec,
        model: &dyn Fn(Var) -> bool,
    ) -> (
        HashMap<NodeId, i32>,
        HashMap<NodeId, i32>,
        HashMap<NodeId, i32>,
    ) {
        let mut t = HashMap::new();
        let mut k = HashMap::new();
        let mut s = HashMap::new();
        for (i, &n) in self.ops.iter().enumerate() {
            // Monotone chain: s = greatest v with O_{i,v} true. Scan to
            // the first false literal so even a non-monotone (partial)
            // assignment yields a well-defined value.
            let mut v = self.lo[i];
            while v < self.hi[i] && model(self.base[i] + (v - self.lo[i]) as u32) {
                v += 1;
            }
            s.insert(n, v);
            t.insert(n, v % self.ii);
            k.insert(n, v / self.ii);
        }
        for n in g.ids() {
            if g.category(n).is_data() {
                let start = match g.producer(n) {
                    Some(p) => s.get(&p).copied().unwrap_or(0) + spec.latency(&g.node(p).kind),
                    None => 0,
                };
                s.insert(n, start);
            }
        }
        (t, k, s)
    }
}

/// Compile the modulo model at one candidate II. `Ok(None)` means the
/// candidate is statically refuted (some op's start domain is empty
/// after the difference/residue fixpoint) — no solver run is needed,
/// matching the CP probe's static-cut `None`.
pub fn encode_modulo(
    g: &Graph,
    spec: &ArchSpec,
    ii: i32,
) -> Result<Option<ModuloEncoding>, EncodeError> {
    let latency = |n: NodeId| spec.latency(&g.node(n).kind);
    let duration = |n: NodeId| spec.duration(&g.node(n).kind);
    let ops: Vec<NodeId> = g.ids().filter(|&n| g.category(n).is_op()).collect();
    let op_ix: HashMap<NodeId, usize> = ops.iter().enumerate().map(|(i, &n)| (n, i)).collect();

    // Same stage/horizon bounds as the CP probe (exclude-reconfig form).
    let cp = g.critical_path(&latency);
    let k_max = cp / ii + 2;

    // Fold the bipartite op/data precedence structure into op-level
    // difference constraints `s[a] + delta <= s[b]` plus per-op release
    // offsets from producer-less input data (pinned at 0, as in the CP
    // model's `new_const(0)`).
    let mut diffs: Vec<(usize, usize, i32)> = Vec::new();
    let mut lo = vec![0i32; ops.len()];
    for (from, to) in g.edges() {
        let fc = g.category(from);
        let tc = g.category(to);
        if fc.is_op() && tc.is_data() {
            continue; // definition edge: the datum is pinned to its producer
        }
        let (anchor, off) = if fc.is_data() {
            match g.producer(from) {
                Some(p) => (Some(p), latency(p) + latency(from)),
                None => (None, latency(from)),
            }
        } else {
            (Some(from), latency(from))
        };
        if !tc.is_op() {
            // data→data never occurs in this IR (edges alternate
            // op/data); refuse rather than mis-model it.
            return Err(EncodeError {
                node: g.node(to).name.clone(),
                detail: "unsupported data→data precedence edge in the SAT encoding".into(),
            });
        }
        let ti = op_ix[&to];
        match anchor {
            Some(a) => diffs.push((op_ix[&a], ti, off)),
            None => lo[ti] = lo[ti].max(off),
        }
    }

    let mut hi: Vec<i32> = ops
        .iter()
        .map(|&n| k_max * ii + (ii - duration(n).max(1)))
        .collect();

    // est/lst fixpoint over the difference graph, interleaved with the
    // residue-window trim (a start must leave room for the op's
    // occupancy inside its window instance). The graph is a DAG and all
    // updates are monotone within bounded domains, so this terminates.
    let residue_ok = |i: usize, v: i32| v % ii <= ii - duration(ops[i]).max(1);
    loop {
        let mut changed = false;
        for _ in 0..ops.len().max(1) {
            let mut pass = false;
            for &(a, b, d) in &diffs {
                if lo[a] + d > lo[b] {
                    lo[b] = lo[a] + d;
                    pass = true;
                }
                if hi[b] - d < hi[a] {
                    hi[a] = hi[b] - d;
                    pass = true;
                }
            }
            changed |= pass;
            if !pass {
                break;
            }
        }
        for i in 0..ops.len() {
            while lo[i] <= hi[i] && !residue_ok(i, lo[i]) {
                lo[i] += 1;
                changed = true;
            }
            while lo[i] <= hi[i] && !residue_ok(i, hi[i]) {
                hi[i] -= 1;
                changed = true;
            }
            if lo[i] > hi[i] {
                return Ok(None); // statically refuted at this II
            }
        }
        if !changed {
            break;
        }
    }

    let mut cnf = Cnf::default();
    let base: Vec<Var> = (0..ops.len())
        .map(|i| {
            let b = cnf.n_vars;
            for _ in lo[i]..hi[i] {
                cnf.new_var();
            }
            b
        })
        .collect();
    let order = |i: usize, v: i32| -> OLit {
        if v <= lo[i] {
            OLit::True
        } else if v > hi[i] {
            OLit::False
        } else {
            OLit::Is(Lit::pos(base[i] + (v - lo[i] - 1) as u32))
        }
    };

    // Monotone chains: s ≥ v implies s ≥ v−1.
    for i in 0..ops.len() {
        for v in lo[i] + 2..=hi[i] {
            if let (OLit::Is(a), OLit::Is(b)) = (order(i, v), order(i, v - 1)) {
                cnf.add(vec![a.negated(), b]);
            }
        }
        // Interior residue-invalid values: forbid `s == v` by forcing the
        // chain past it ((¬O_v ∨ O_{v+1})); the bounds themselves were
        // trimmed to valid values above.
        for v in lo[i] + 1..hi[i] {
            if !residue_ok(i, v) {
                if let (OLit::Is(a), OLit::Is(b)) = (order(i, v), order(i, v + 1)) {
                    cnf.add(vec![a.negated(), b]);
                }
            }
        }
    }

    // Precedence ladders. After the fixpoint, `lo[b] ≥ lo[a]+d` and
    // `hi[a] ≤ hi[b]−d`, so every rung has both ends in range (rungs
    // with a trivially-true head are skipped by the OLit match).
    for &(a, b, d) in &diffs {
        for v in lo[a] + 1..=hi[a] {
            match (order(a, v), order(b, v + d)) {
                (OLit::Is(la), OLit::Is(lb)) => cnf.add(vec![la.negated(), lb]),
                (OLit::Is(_), OLit::True) => {}
                (OLit::Is(la), OLit::False) => cnf.add(vec![la.negated()]),
                _ => unreachable!("order literal inside (lo, hi] is concrete"),
            }
        }
    }

    // Start-residue auxiliaries: ST_{i,r} is *implied* by `s_i ≡ r`; the
    // reverse direction is unconstrained, which is sound for pure
    // at-most counting (a model may over-approximate the true residues,
    // never under-approximate).
    let mut st: Vec<HashMap<i32, Lit>> = vec![HashMap::new(); ops.len()];
    for i in 0..ops.len() {
        for v in lo[i]..=hi[i] {
            if !residue_ok(i, v) {
                continue;
            }
            let r = v % ii;
            let st_lit = *st[i].entry(r).or_insert_with(|| Lit::pos(cnf.new_var()));
            // (s==v) → ST: ¬(O_v ∧ ¬O_{v+1}) ∨ ST.
            let mut clause = vec![st_lit];
            match order(i, v) {
                OLit::True => {}
                OLit::Is(l) => clause.push(l.negated()),
                OLit::False => continue,
            }
            match order(i, v + 1) {
                OLit::False => {}
                OLit::Is(l) => clause.push(l),
                OLit::True => continue,
            }
            cnf.add(clause);
        }
    }

    // One configuration per window slot: differently-configured
    // vector-core ops never share a start residue. A vector op without a
    // configuration entry is a malformed graph — name it instead of
    // panicking (the CP path degrades the same way).
    let vop_cfg = |&n: &NodeId| match g.opcode(n).and_then(|o| o.config()) {
        Some(c) => Ok((n, c)),
        None => Err(EncodeError {
            node: g.node(n).name.clone(),
            detail: "vector-core op has no configuration entry in its opcode".into(),
        }),
    };
    let vops = ops
        .iter()
        .filter(|&&n| g.category(n) == Category::VectorOp)
        .map(vop_cfg)
        .collect::<Result<Vec<_>, _>>()?;
    for (x, (i, ci)) in vops.iter().enumerate() {
        for (j, cj) in &vops[x + 1..] {
            if ci == cj {
                continue;
            }
            let (a, b) = (op_ix[i], op_ix[j]);
            for (&r, &la) in &st[a] {
                if let Some(&lb) = st[b].get(&r) {
                    cnf.add(vec![la.negated(), lb.negated()]);
                }
            }
        }
    }

    // Per-unit resource constraints at every window residue (the CP
    // Cumulative over t): an op starting at residue r' occupies
    // r'..r'+dur−1 with its class width; the fixpoint's residue trim
    // guarantees no wrap-around.
    for unit in &spec.units.units {
        let classes: Vec<OpClass> = unit.ops.iter().map(|o| o.class).collect();
        let cap = unit.count as i32;
        let mut per_residue: Vec<Vec<(Lit, i32)>> = vec![Vec::new(); ii as usize];
        for (i, &n) in ops.iter().enumerate() {
            let Some(c) = OpClass::of(&g.node(n).kind) else {
                continue;
            };
            if !classes.contains(&c) {
                continue;
            }
            let w = spec.units.class_width(c).unwrap_or(1) as i32;
            let dur = duration(n);
            for (&r, &l) in &st[i] {
                for q in r..(r + dur).min(ii) {
                    per_residue[q as usize].push((l, w));
                }
            }
        }
        for items in &per_residue {
            at_most_k(&mut cnf, items, cap);
        }
    }

    Ok(Some(ModuloEncoding {
        cnf,
        ii,
        ops,
        lo,
        hi,
        base,
    }))
}

/// Weighted at-most-`cap` over literals: full-width items by pairwise
/// exclusion, the rest through a unary sequential counter with each
/// literal repeated `weight` times.
fn at_most_k(cnf: &mut Cnf, items: &[(Lit, i32)], cap: i32) {
    let mut rest: Vec<(Lit, i32)> = Vec::new();
    let mut full: Vec<Lit> = Vec::new();
    for &(l, w) in items {
        if w <= 0 {
            continue;
        } else if w > cap {
            cnf.add(vec![l.negated()]);
        } else if w == cap {
            full.push(l);
        } else {
            rest.push((l, w));
        }
    }
    let rest_total: i64 = rest.iter().map(|&(_, w)| w as i64).sum();
    for (x, &l) in full.iter().enumerate() {
        for &o in &full[x + 1..] {
            cnf.add(vec![l.negated(), o.negated()]);
        }
        for &(o, _) in &rest {
            cnf.add(vec![l.negated(), o.negated()]);
        }
    }
    if rest_total <= cap as i64 {
        return;
    }
    let lits: Vec<Lit> = rest
        .iter()
        .flat_map(|&(l, w)| std::iter::repeat_n(l, w as usize))
        .collect();
    // Sequential counter (Sinz LTseq): r_{i,j} ⇔ "at least j+1 of the
    // first i+1 literals hold"; overflow of the cap is a conflict.
    let k = cap as usize;
    let mut prev: Vec<Option<Var>> = vec![None; k];
    for (i, &li) in lits.iter().enumerate() {
        let mut cur: Vec<Option<Var>> = vec![None; k];
        for slot in cur.iter_mut().take(k.min(i + 1)) {
            *slot = Some(cnf.new_var());
        }
        cnf.add(vec![li.negated(), Lit::pos(cur[0].expect("k >= 1"))]);
        for j in 0..k {
            if let (Some(p), Some(c)) = (prev[j], cur[j]) {
                cnf.add(vec![Lit::neg(p), Lit::pos(c)]);
            }
        }
        for j in 1..k {
            if let (Some(p), Some(c)) = (prev[j - 1], cur[j]) {
                cnf.add(vec![li.negated(), Lit::neg(p), Lit::pos(c)]);
            }
        }
        if let Some(p) = prev[k - 1] {
            cnf.add(vec![li.negated(), Lit::neg(p)]);
        }
        prev = cur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdcl::{SolveOutcome, Solver};

    fn solve_cnf(cnf: &Cnf) -> Option<Vec<bool>> {
        let mut s = Solver::new();
        for _ in 0..cnf.n_vars {
            s.new_var();
        }
        for c in &cnf.clauses {
            s.add_clause(c);
        }
        match s.solve(&mut || false) {
            SolveOutcome::Sat => Some((0..cnf.n_vars).map(|v| s.model_value(v)).collect()),
            _ => None,
        }
    }

    #[test]
    fn at_most_k_bounds_weighted_sums() {
        // 3 items of weight 2 under cap 4: any 2 fit, all 3 do not.
        let mut cnf = Cnf::default();
        let xs: Vec<Lit> = (0..3).map(|_| Lit::pos(cnf.new_var())).collect();
        let items: Vec<(Lit, i32)> = xs.iter().map(|&l| (l, 2)).collect();
        at_most_k(&mut cnf, &items, 4);
        let mut two = cnf.clauses.clone();
        two.push(vec![xs[0]]);
        two.push(vec![xs[1]]);
        let cnf_two = Cnf {
            n_vars: cnf.n_vars,
            clauses: two,
        };
        assert!(
            solve_cnf(&cnf_two).is_some(),
            "two of weight 2 must fit in 4"
        );
        let mut three = cnf.clauses.clone();
        for &x in &xs {
            three.push(vec![x]);
        }
        let cnf_three = Cnf {
            n_vars: cnf.n_vars,
            clauses: three,
        };
        assert!(
            solve_cnf(&cnf_three).is_none(),
            "three of weight 2 overflow 4"
        );
    }

    #[test]
    fn full_width_items_are_exclusive() {
        let mut cnf = Cnf::default();
        let a = Lit::pos(cnf.new_var());
        let b = Lit::pos(cnf.new_var());
        let c = Lit::pos(cnf.new_var());
        at_most_k(&mut cnf, &[(a, 4), (b, 4), (c, 1)], 4);
        let sat_with = |forced: &[Lit]| {
            let mut cs = cnf.clauses.clone();
            cs.extend(forced.iter().map(|&l| vec![l]));
            solve_cnf(&Cnf {
                n_vars: cnf.n_vars,
                clauses: cs,
            })
            .is_some()
        };
        assert!(sat_with(&[a]));
        assert!(!sat_with(&[a, b]), "two full-width items may not co-issue");
        assert!(!sat_with(&[a, c]), "full-width excludes any co-resident");
        assert!(sat_with(&[c]));
    }

    #[test]
    fn dimacs_roundtrip_shape() {
        let mut cnf = Cnf::default();
        let a = Lit::pos(cnf.new_var());
        let b = Lit::pos(cnf.new_var());
        cnf.add(vec![a, b.negated()]);
        let d = cnf.to_dimacs(&["hello".into()]);
        assert!(d.starts_with("c hello\np cnf 2 1\n"));
        assert!(d.contains("1 -2 0\n"));
    }
}
