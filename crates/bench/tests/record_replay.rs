//! Record → replay identity over the paper's six table kernels, both
//! straight-line and modulo, mirroring the `eitc --record` / `--replay`
//! pipeline: merge + CSE first (the recorded IR hash covers the graph
//! the solver actually sees), record the solve, then re-drive it
//! strictly and check it matches node for node.

use eit_arch::ArchSpec;
use eit_core::{
    modulo_schedule, replay_modulo, replay_schedule, schedule, schedule_header, ModuloOptions,
    SchedulerOptions,
};
use eit_cp::trace::{MemorySink, SearchEvent, TraceHandle};
use eit_cp::{RecorderSink, ReplayOptions, Trace};
use eit_ir::Graph;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const KERNELS: [&str; 6] = ["qrd", "arf", "matmul", "fir", "detector", "blockmm"];

/// The kernel exactly as `eitc --record` schedules it: merged, CSE'd.
fn prepared(name: &str) -> Graph {
    let mut g = eit_apps::by_name(name).expect("table kernel").graph;
    eit_ir::merge_pipeline_ops(&mut g);
    eit_ir::eliminate_common_subexpressions(&mut g);
    g
}

fn sched_opts() -> SchedulerOptions {
    SchedulerOptions {
        timeout: Some(Duration::from_secs(120)),
        state_hash_every: Some(16),
        ..Default::default()
    }
}

#[test]
fn straight_line_record_replay_identity_on_all_table_kernels() {
    let spec = ArchSpec::eit();
    for name in KERNELS {
        let g = prepared(name);
        let sink = Arc::new(Mutex::new(MemorySink::unbounded()));
        let mut opts = sched_opts();
        opts.trace = Some(TraceHandle::new(Arc::clone(&sink)));
        let r = schedule(&g, &spec, &opts);
        assert!(r.schedule.is_some(), "{name} must schedule");
        let recorded: Vec<SearchEvent> = sink.lock().unwrap().events.iter().cloned().collect();
        assert!(!recorded.is_empty(), "{name} recorded nothing");

        let rep = replay_schedule(
            &g,
            &spec,
            &sched_opts(),
            &recorded,
            &ReplayOptions::default(),
        );
        assert!(rep.ok, "{name}: strict divergence: {:?}", rep.divergence);
        // Replay never searches beyond the recorded tree.
        assert_eq!(
            rep.replay_nodes, rep.recorded_nodes,
            "{name}: replay re-searched"
        );
        assert_eq!(rep.checked as usize, recorded.len());

        // Lenient accepts whatever strict accepts.
        let lenient = replay_schedule(
            &g,
            &spec,
            &sched_opts(),
            &recorded,
            &ReplayOptions { strict: false },
        );
        assert!(lenient.ok, "{name}: lenient rejected a faithful replay");
    }
}

#[test]
fn modulo_record_replay_identity_on_all_table_kernels() {
    let spec = ArchSpec::eit();
    for name in KERNELS {
        let g = prepared(name);
        let sink = Arc::new(Mutex::new(MemorySink::unbounded()));
        let opts = ModuloOptions {
            trace: Some(TraceHandle::new(Arc::clone(&sink))),
            state_hash_every: Some(16),
            ..Default::default()
        };
        let r = modulo_schedule(&g, &spec, &opts).unwrap_or_else(|| panic!("{name} modulo"));
        let recorded: Vec<SearchEvent> = sink.lock().unwrap().events.iter().cloned().collect();
        assert!(
            recorded
                .iter()
                .any(|e| matches!(e, SearchEvent::Stream { .. })),
            "{name}: no probe streams recorded"
        );
        // The last stream marker is the winning II.
        let last_stream = recorded
            .iter()
            .rev()
            .find_map(|e| match e {
                SearchEvent::Stream { id } => Some(*id),
                _ => None,
            })
            .unwrap();
        assert_eq!(last_stream as i32, r.ii_issue);

        let rep = replay_modulo(&g, &spec, &opts, &recorded, &ReplayOptions::default());
        assert!(
            rep.ok,
            "{name}: divergence {:?} / structure {:?}",
            rep.divergence, rep.structure_error
        );
        assert_eq!(
            rep.replay_nodes, rep.recorded_nodes,
            "{name}: replay re-searched"
        );
    }
}

#[test]
fn trace_file_roundtrip_preserves_events_and_hash() {
    let spec = ArchSpec::eit();
    let g = prepared("matmul");
    let mut opts = sched_opts();
    let header = schedule_header(&g, &spec, &opts);
    let dir = std::env::temp_dir().join("eit-record-replay-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("matmul.trace");
    let sink = Arc::new(Mutex::new(RecorderSink::create(&path, &header).unwrap()));
    opts.trace = Some(TraceHandle::new(Arc::clone(&sink)));
    schedule(&g, &spec, &opts);
    let (live_hash, live_events) = {
        let s = sink.lock().unwrap();
        (s.hash(), s.events())
    };

    let t = Trace::read(&path).unwrap();
    assert_eq!(t.file_hash, live_hash);
    assert_eq!(t.events.len() as u64, live_events);
    assert_eq!(t.header.ir_hash, header.ir_hash);
    assert_eq!(t.header.arch_hash, header.arch_hash);
    assert_eq!(t.header.config, header.config);

    let rep = replay_schedule(
        &g,
        &spec,
        &sched_opts(),
        &t.events,
        &ReplayOptions::default(),
    );
    assert!(rep.ok, "divergence: {:?}", rep.divergence);
    std::fs::remove_file(&path).ok();
}

#[test]
fn perturbed_solver_diverges_with_a_named_event() {
    // Record qrd, then replay against a *different* problem framing (no
    // memory model): the solver's trajectory changes and the replay must
    // point at the first mismatching event instead of re-searching.
    let spec = ArchSpec::eit();
    let g = prepared("qrd");
    let sink = Arc::new(Mutex::new(MemorySink::unbounded()));
    let mut opts = sched_opts();
    opts.trace = Some(TraceHandle::new(Arc::clone(&sink)));
    schedule(&g, &spec, &opts);
    let recorded: Vec<SearchEvent> = sink.lock().unwrap().events.iter().cloned().collect();

    let mut perturbed = sched_opts();
    perturbed.memory = false;
    let rep = replay_schedule(&g, &spec, &perturbed, &recorded, &ReplayOptions::default());
    assert!(!rep.ok);
    let (_, d) = rep.divergence.expect("must name the first mismatch");
    assert!(d.index < recorded.len());
    assert!(d.expected.is_some() || d.actual.is_some());
    // The replay aborted at the divergence, far short of the recording.
    assert!(rep.replay_nodes <= rep.recorded_nodes);
}
