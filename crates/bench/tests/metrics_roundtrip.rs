//! Golden test for the run-metrics document: a real compile of a small
//! kernel produces a [`RunMetrics`] JSON that parses back through the
//! in-repo parser with the expected shape and internally consistent
//! numbers. This is the same guarantee the CI smoke check leans on.

use eit_bench::{Json, RunMetrics};
use eit_core::{compile, CompileOptions, SchedulerOptions};
use std::time::Duration;

fn compile_matmul() -> (eit_core::Compiled, eit_arch::ArchSpec) {
    let kernel = eit_apps::by_name("matmul").unwrap();
    let spec = eit_arch::ArchSpec::eit();
    let out = compile(
        kernel.graph.clone(),
        &spec,
        &CompileOptions {
            scheduler: SchedulerOptions {
                timeout: Some(Duration::from_secs(60)),
                profile: true,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("matmul must compile");
    (out, spec)
}

#[test]
fn metrics_document_round_trips_with_consistent_numbers() {
    let (out, spec) = compile_matmul();

    let mut m = RunMetrics::new("test", "matmul");
    m.arch(&spec)
        .solver(out.status, Some(out.schedule.makespan), &out.solver, None)
        .spans(&out.timings)
        .propagators(&out.propagator_profile)
        .program(&out.program);

    let text = m.render();
    let doc = Json::parse(&text).expect("rendered metrics must parse");

    // Header: versioned schema first, then provenance.
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(eit_bench::metrics::SCHEMA)
    );
    assert_eq!(doc.get("tool").and_then(Json::as_str), Some("test"));
    assert_eq!(doc.get("kernel").and_then(Json::as_str), Some("matmul"));

    // Arch section mirrors the spec.
    let arch = doc.get("arch").expect("arch section");
    assert_eq!(
        arch.get("lanes").and_then(Json::as_u64),
        Some(spec.n_lanes as u64)
    );
    assert_eq!(
        arch.get("slots").and_then(Json::as_u64),
        Some(spec.n_slots() as u64)
    );

    // Solver section is consistent with the returned stats.
    let solver = doc.get("solver").expect("solver section");
    assert_eq!(solver.get("status").and_then(Json::as_str), Some("optimal"));
    assert_eq!(
        solver.get("makespan").and_then(Json::as_u64),
        Some(out.schedule.makespan as u64)
    );
    assert_eq!(
        solver.get("nodes").and_then(Json::as_u64),
        Some(out.solver.nodes)
    );
    assert_eq!(
        solver.get("propagations").and_then(Json::as_u64),
        Some(out.solver.propagations)
    );

    // Spans are non-empty and cover the pipeline stages in order.
    let spans = doc.get("spans").and_then(Json::as_arr).expect("spans");
    let phases: Vec<&str> = spans
        .iter()
        .map(|s| s.get("phase").and_then(Json::as_str).unwrap())
        .collect();
    for required in ["validate", "model_build", "search", "codegen"] {
        assert!(phases.contains(&required), "missing span {required}");
    }
    let pos = |p: &str| phases.iter().position(|x| *x == p).unwrap();
    assert!(pos("validate") < pos("model_build"));
    assert!(pos("model_build") < pos("search"));
    assert!(pos("search") < pos("codegen"));

    // Propagator invocations sum to the solver's propagation count: the
    // profile and the search statistics describe the same run.
    let props = doc
        .get("propagators")
        .and_then(Json::as_arr)
        .expect("propagators");
    assert!(!props.is_empty());
    let invocations: u64 = props
        .iter()
        .map(|p| p.get("invocations").and_then(Json::as_u64).unwrap())
        .sum();
    assert_eq!(invocations, out.solver.propagations);

    // The parsed document re-renders byte-identically (stable writer).
    assert_eq!(doc.render(), text);
}

#[test]
fn sim_section_round_trips() {
    let (out, spec) = compile_matmul();
    let kernel = eit_apps::by_name("matmul").unwrap();
    let report = eit_arch::simulate(&out.graph, &spec, &out.schedule, &kernel.inputs);

    let mut m = RunMetrics::new("test", "matmul");
    m.sim(&report);
    let doc = Json::parse(&m.render()).expect("sim metrics must parse");

    let sim = doc.get("sim").expect("sim section");
    assert_eq!(sim.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        sim.get("makespan").and_then(Json::as_u64),
        Some(report.makespan as u64)
    );
    let hist = sim
        .get("lane_histogram")
        .and_then(Json::as_arr)
        .expect("lane histogram");
    assert_eq!(hist.len(), spec.n_lanes as usize + 1);
    let timeline = sim
        .get("reconfig_timeline")
        .and_then(Json::as_arr)
        .expect("timeline");
    assert_eq!(timeline.len(), report.config_loads as usize);
    assert_eq!(timeline[0].get("cycle").and_then(Json::as_u64), Some(0));
}
