//! Differential check of the two modulo-scheduling decision procedures
//! on the paper's six table kernels: the CP sweep and the CDCL/CNF sweep
//! are independent implementations of the same §4.3 model, so they must
//! agree on the minimum feasible II everywhere, and both schedules must
//! pass the solver-independent verifier AND the unrolled simulator
//! validation. Any divergence here is a bug in one of the backends (or,
//! more interestingly, in the shared model).

use eit_arch::ArchSpec;
use eit_core::{modulo_schedule_checked, validate_modulo, Backend, ModuloOptions};
use eit_ir::Graph;
use std::time::Duration;

const KERNELS: [&str; 6] = ["qrd", "arf", "matmul", "fir", "detector", "blockmm"];

/// The kernel exactly as `eitc --modulo` schedules it: merge pass only.
fn prepared(name: &str) -> Graph {
    let mut g = eit_apps::by_name(name).expect("table kernel").graph;
    eit_ir::merge_pipeline_ops(&mut g);
    g
}

fn opts(backend: Backend) -> ModuloOptions {
    ModuloOptions {
        backend,
        timeout_per_ii: Duration::from_secs(120),
        total_timeout: Duration::from_secs(120),
        ..Default::default()
    }
}

#[test]
fn sat_and_cp_agree_on_ii_for_all_table_kernels() {
    let spec = ArchSpec::eit();
    for name in KERNELS {
        let g = prepared(name);
        let cp = modulo_schedule_checked(&g, &spec, &opts(Backend::Cp))
            .unwrap_or_else(|e| panic!("{name}: cp backend failed: {e}"))
            .unwrap_or_else(|| panic!("{name}: cp found no schedule"));
        let sat = modulo_schedule_checked(&g, &spec, &opts(Backend::Sat))
            .unwrap_or_else(|e| panic!("{name}: sat backend failed: {e}"))
            .unwrap_or_else(|| panic!("{name}: sat found no schedule"));

        assert_eq!(
            sat.ii_issue, cp.ii_issue,
            "{name}: backends disagree on the minimum feasible II"
        );
        assert_eq!(cp.backend, "cp");
        assert_eq!(sat.backend, "sat");
        assert!(sat.sat.is_some(), "{name}: sat result must carry counters");

        for (label, r) in [("cp", &cp), ("sat", &sat)] {
            let v = eit_arch::verify_modulo(&g, &spec, &r.s, r.ii_issue);
            assert!(v.is_empty(), "{name}/{label}: verifier found {v:?}");
            let v = validate_modulo(&g, &spec, r, 3);
            assert!(v.is_empty(), "{name}/{label}: simulator found {v:?}");
        }
    }
}

#[test]
fn race_agrees_with_cp_on_ii_for_all_table_kernels() {
    let spec = ArchSpec::eit();
    for name in KERNELS {
        let g = prepared(name);
        let cp = modulo_schedule_checked(&g, &spec, &opts(Backend::Cp))
            .unwrap_or_else(|e| panic!("{name}: cp backend failed: {e}"))
            .unwrap_or_else(|| panic!("{name}: cp found no schedule"));
        let race = modulo_schedule_checked(&g, &spec, &opts(Backend::Race))
            .unwrap_or_else(|e| panic!("{name}: race failed: {e}"))
            .unwrap_or_else(|| panic!("{name}: race found no schedule"));
        assert_eq!(
            race.ii_issue, cp.ii_issue,
            "{name}: race winner must land on the CP II"
        );
        assert!(
            race.backend == "cp" || race.backend == "sat",
            "{name}: unattributed race winner {:?}",
            race.backend
        );
        let v = eit_arch::verify_modulo(&g, &spec, &race.s, race.ii_issue);
        assert!(v.is_empty(), "{name}/race: verifier found {v:?}");
    }
}
