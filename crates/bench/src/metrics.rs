//! Self-describing machine-readable run metrics.
//!
//! A [`RunMetrics`] gathers everything one toolchain run produced —
//! architecture parameters, solver outcome and statistics, phase-timing
//! spans, the per-propagator profile, simulator counters and the emitted
//! program — into one ordered JSON document. The schema is versioned
//! ([`SCHEMA`]) and every section is optional except the header, so the
//! table binaries and `eitc` can emit exactly what they computed.
//!
//! The document round-trips through [`crate::json::Json::parse`]; the CI
//! smoke check and the golden test rely on that.

use crate::json::Json;
use eit_arch::{ArchSpec, SimReport};
use eit_core::{PhaseTimings, Program};
use eit_cp::{PropProfile, SearchStats, SearchStatus};

/// Version tag of the metrics document layout.
pub const SCHEMA: &str = "eit-run-metrics/1";

/// Builder for one run's metrics document.
pub struct RunMetrics {
    sections: Vec<(String, Json)>,
}

impl RunMetrics {
    /// Start a document for `kernel` as produced by `tool` (the binary
    /// name, e.g. `"eitc"` or `"table1"`).
    pub fn new(tool: &str, kernel: &str) -> Self {
        RunMetrics {
            sections: vec![
                ("schema".into(), Json::str(SCHEMA)),
                ("tool".into(), Json::str(tool)),
                ("kernel".into(), Json::str(kernel)),
            ],
        }
    }

    fn push(&mut self, key: &str, value: Json) -> &mut Self {
        self.sections.push((key.to_string(), value));
        self
    }

    /// The machine the run targeted.
    pub fn arch(&mut self, spec: &ArchSpec) -> &mut Self {
        self.push(
            "arch",
            Json::Obj(vec![
                ("lanes".into(), Json::int(spec.n_lanes as u64)),
                ("banks".into(), Json::int(spec.n_banks as u64)),
                ("page_size".into(), Json::int(spec.page_size as u64)),
                ("slots".into(), Json::int(spec.n_slots() as u64)),
                ("read_ports".into(), Json::int(spec.max_vector_reads as u64)),
                (
                    "write_ports".into(),
                    Json::int(spec.max_vector_writes as u64),
                ),
                (
                    "pipeline_depth".into(),
                    Json::int(spec.pipeline_depth() as u64),
                ),
            ]),
        )
    }

    /// Solver outcome and search statistics.
    pub fn solver(
        &mut self,
        status: SearchStatus,
        makespan: Option<i32>,
        stats: &SearchStats,
        winner: Option<usize>,
    ) -> &mut Self {
        let mut obj = vec![
            ("status".into(), Json::str(status.as_str())),
            (
                "makespan".into(),
                makespan.map_or(Json::Null, |m| Json::num(m as f64)),
            ),
            ("nodes".into(), Json::int(stats.nodes)),
            ("fails".into(), Json::int(stats.fails)),
            ("solutions".into(), Json::int(stats.solutions)),
            ("propagations".into(), Json::int(stats.propagations)),
            ("max_depth".into(), Json::int(stats.max_depth as u64)),
            ("restarts".into(), Json::int(stats.restarts)),
            ("nogoods_posted".into(), Json::int(stats.nogoods_posted)),
            ("nogoods_pruned".into(), Json::int(stats.nogoods_pruned)),
            ("time_us".into(), Json::int(stats.time.as_micros() as u64)),
        ];
        if let Some(w) = winner {
            obj.push(("winner".into(), Json::int(w as u64)));
        }
        self.push("solver", Json::Obj(obj))
    }

    /// Domain-representation histogram of the solved model: how many
    /// variables ended the search on the bitset fast path vs. interval
    /// lists (see `eit_cp::Domain` and DESIGN.md §5k).
    pub fn domains(&mut self, reps: (usize, usize)) -> &mut Self {
        self.push(
            "domains",
            Json::Obj(vec![
                ("bitset".into(), Json::int(reps.0 as u64)),
                ("interval".into(), Json::int(reps.1 as u64)),
            ]),
        )
    }

    /// Phase-timing spans, in record order.
    pub fn spans(&mut self, timings: &PhaseTimings) -> &mut Self {
        let spans = timings
            .spans
            .iter()
            .map(|(name, d)| {
                Json::Obj(vec![
                    ("phase".into(), Json::str(name.clone())),
                    ("time_us".into(), Json::int(d.as_micros() as u64)),
                ])
            })
            .collect();
        self.push("spans", Json::Arr(spans))
    }

    /// The per-propagator profile (already aggregated and sorted).
    pub fn propagators(&mut self, profile: &[PropProfile]) -> &mut Self {
        let rows = profile
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("name".into(), Json::str(p.name)),
                    ("invocations".into(), Json::int(p.invocations)),
                    ("wakes".into(), Json::int(p.wakes)),
                    ("no_op_runs".into(), Json::int(p.no_op_runs)),
                    ("prunings".into(), Json::int(p.prunings)),
                    ("failures".into(), Json::int(p.failures)),
                    ("time_us".into(), Json::int(p.time.as_micros() as u64)),
                ])
            })
            .collect();
        self.push("propagators", Json::Arr(rows))
    }

    /// Simulator outcome: utilization, violations, and the activity
    /// counters (lane histogram, bank traffic, port peaks, reconfig
    /// timeline).
    pub fn sim(&mut self, report: &SimReport) -> &mut Self {
        let c = &report.counters;
        let ints = |xs: &[u64]| Json::Arr(xs.iter().map(|&x| Json::int(x)).collect());
        let timeline = c
            .reconfig_timeline
            .iter()
            .map(|(t, cfg)| {
                Json::Obj(vec![
                    ("cycle".into(), Json::num(*t as f64)),
                    ("config".into(), Json::str(format!("{:?}", cfg.core))),
                ])
            })
            .collect();
        self.push(
            "sim",
            Json::Obj(vec![
                ("ok".into(), Json::Bool(report.ok())),
                (
                    "violations".into(),
                    Json::int(report.violations.len() as u64),
                ),
                ("makespan".into(), Json::num(report.makespan as f64)),
                ("lane_cycles".into(), Json::int(report.lane_cycles)),
                ("utilization".into(), Json::num(report.utilization)),
                (
                    "units".into(),
                    Json::Obj(vec![
                        ("vector".into(), Json::num(report.units.vector)),
                        ("accelerator".into(), Json::num(report.units.accelerator)),
                        ("index_merge".into(), Json::num(report.units.index_merge)),
                    ]),
                ),
                (
                    "reconfig_switches".into(),
                    Json::int(report.reconfig_switches as u64),
                ),
                ("config_loads".into(), Json::int(report.config_loads as u64)),
                ("lane_histogram".into(), ints(&c.lane_histogram)),
                ("bank_reads".into(), ints(&c.bank_reads)),
                ("bank_writes".into(), ints(&c.bank_writes)),
                (
                    "port_pressure".into(),
                    Json::Obj(vec![
                        ("peak_reads".into(), Json::int(c.peak_reads as u64)),
                        (
                            "peak_reads_cycle".into(),
                            Json::num(c.peak_reads_cycle as f64),
                        ),
                        ("peak_writes".into(), Json::int(c.peak_writes as u64)),
                        (
                            "peak_writes_cycle".into(),
                            Json::num(c.peak_writes_cycle as f64),
                        ),
                    ]),
                ),
                ("reconfig_timeline".into(), Json::Arr(timeline)),
            ]),
        )
    }

    /// The generated configuration-stream program's summary numbers.
    pub fn program(&mut self, program: &Program) -> &mut Self {
        self.push(
            "program",
            Json::Obj(vec![
                ("cycles".into(), Json::int(program.n_cycles as u64)),
                (
                    "instructions".into(),
                    Json::int(program.n_instructions as u64),
                ),
                (
                    "reconfig_switches".into(),
                    Json::int(program.reconfig_switches as u64),
                ),
                ("utilization".into(), Json::num(program.utilization)),
            ]),
        )
    }

    /// Attach an arbitrary extra section (e.g. a table binary's rows).
    pub fn section(&mut self, key: &str, value: Json) -> &mut Self {
        self.push(key, value)
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(self.sections.clone())
    }

    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Write the document to `path`.
    pub fn write_to(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_is_self_describing_and_ordered() {
        let m = RunMetrics::new("eitc", "qrd");
        let j = m.to_json();
        assert_eq!(j.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(j.get("tool").unwrap().as_str(), Some("eitc"));
        assert_eq!(j.get("kernel").unwrap().as_str(), Some("qrd"));
        let Json::Obj(members) = &j else { panic!() };
        assert_eq!(members[0].0, "schema");
    }
}
