//! `fuzz` — deterministic differential fuzzer CLI.
//!
//! Drives [`eit_core::fuzz`] from the command line:
//!
//! ```text
//! fuzz --seed 5 --cases 200 [--out DIR] [--no-modulo] [--no-shrink] \
//!      [--timeout SECS] [--arch-fuzz] [--backend-fuzz]
//! ```
//!
//! `--backend-fuzz` cross-checks every CP modulo result against the
//! independent SAT backend: equal minimum II, and the SAT schedule clean
//! under both verifiers.
//!
//! `--arch-fuzz` walks the architecture×kernel product space: every case
//! draws a fresh generated machine (always `validate()`-clean) before
//! generating the kernel, and failures shrink to an arch-XML + kernel-XML
//! reproducer pair.
//!
//! Exit status 0 when every case passes differentially, 1 when any case
//! fails (reproducers are written to `--out`, default `fuzz-failures/`),
//! 2 on bad arguments. Same seed, same verdicts, every run.

use eit_core::fuzz::{run, FuzzOptions};
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: fuzz [--seed N] [--cases N] [--out DIR] [--no-modulo] \
         [--no-shrink] [--timeout SECS] [--arch-fuzz] [--backend-fuzz]"
    );
    std::process::exit(2)
}

fn main() {
    let mut opts = FuzzOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--seed" => opts.seed = val().parse().unwrap_or_else(|_| usage()),
            "--cases" => opts.cases = val().parse().unwrap_or_else(|_| usage()),
            "--out" => opts.out_dir = Some(val().into()),
            "--no-modulo" => opts.check_modulo = false,
            "--arch-fuzz" => opts.arch_fuzz = true,
            "--backend-fuzz" => opts.backend_fuzz = true,
            "--no-shrink" => opts.shrink = false,
            "--timeout" => {
                opts.solver_timeout = Duration::from_secs(val().parse().unwrap_or_else(|_| usage()))
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let t0 = Instant::now();
    let report = run(&opts);
    let dt = t0.elapsed();
    println!(
        "fuzz: seed {} — {} case(s), {} differential check(s) in {:.1}s",
        opts.seed,
        report.cases,
        report.checks,
        dt.as_secs_f64()
    );
    if report.ok() {
        println!("fuzz: all cases passed");
        return;
    }
    for f in &report.failures {
        eprintln!(
            "fuzz: FAIL case {} (case_seed {}): stage {} — {}",
            f.case, f.case_seed, f.stage, f.detail
        );
        if let Some(p) = &f.reproducer {
            eprintln!("fuzz:   reproducer: {}", p.display());
        }
    }
    eprintln!("fuzz: {} failing case(s)", report.failures.len());
    std::process::exit(1);
}
