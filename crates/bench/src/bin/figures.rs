//! Executable reproductions of the paper's behavioural figures.
//!
//! - **Fig. 3** — the IR of Listing 1 (MATMUL): node/edge census and the
//!   XML dump the DSL emits;
//! - **Fig. 4/5** — `m_squsum` as one matrix operation vs the equivalent
//!   four-vector + merge expansion (node-count comparison);
//! - **Fig. 6** — the pipeline-merging pass on its two canonical
//!   patterns;
//! - **Fig. 8** — memory-access legality of the three example matrices
//!   (A: bank conflict, B: page/line conflict, C: accessible).
//!
//! Run: `cargo run --release -p eit-bench --bin figures`

use eit_arch::{matrix_accessible_in_one_cycle, ArchSpec};
use eit_bench::{prepared, rule};
use eit_dsl::Ctx;
use eit_ir::{merge_pipeline_ops, Category, CoreOp, DataKind, Opcode, PostOp, PreOp};

fn fig3() {
    println!("Fig. 3 — IR of Listing 1 (MATMUL)");
    let p = prepared("matmul");
    let g = &p.kernel.graph;
    println!(
        "  |V| = {}, |E| = {}; {} v_dotP ops, {} merges, {} scalar data, {} vector data",
        g.len(),
        g.edge_count(),
        g.count(Category::VectorOp),
        g.count(Category::Merge),
        g.count(Category::ScalarData),
        g.count(Category::VectorData),
    );
    println!("  bipartite: {}", g.validate().is_ok());
    let xml = eit_ir::to_xml(g);
    println!("  XML dump: {} lines (first 3):", xml.lines().count());
    for line in xml.lines().take(3) {
        println!("    {line}");
    }
}

fn fig45() {
    println!("Fig. 4/5 — matrix op vs four-vector expansion of A.m_squsum");
    // Matrix version: one matrix_op node.
    let ctx = Ctx::new("fig4");
    let a = ctx.matrix([[1.0; 4]; 4]);
    let _ = a.m_squsum();
    let gm = ctx.finish();
    // Vector version: four v_squsum + merge (via index-free scalars).
    let ctx = Ctx::new("fig5");
    let rows = [
        ctx.vector([1.0; 4]),
        ctx.vector([1.0; 4]),
        ctx.vector([1.0; 4]),
        ctx.vector([1.0; 4]),
    ];
    let sums: Vec<_> = rows.iter().map(|r| r.v_squsum()).collect();
    let _ = ctx.merge([&sums[0], &sums[1], &sums[2], &sums[3]]);
    let gv = ctx.finish();
    println!(
        "  matrix form: |V| = {} ({} matrix op); vector form: |V| = {} ({} vector ops + {} merge)",
        gm.len(),
        gm.count(Category::MatrixOp),
        gv.len(),
        gv.count(Category::VectorOp),
        gv.count(Category::Merge),
    );
    println!(
        "  → the matrix version removes the merge node and {} nodes overall",
        gv.len() - gm.len()
    );
}

fn fig6() {
    println!("Fig. 6 — pipeline merging");
    // Left: pre-processing (hermitian) into a core op.
    let mut g = eit_ir::Graph::new("left");
    let a = g.add_data(DataKind::Vector, "a");
    let b = g.add_data(DataKind::Vector, "b");
    let (_, ah) = g.add_op_with_output(
        Opcode::Vector {
            pre: Some((PreOp::Hermitian, 0)),
            core: CoreOp::Pass,
            post: None,
        },
        &[a],
        DataKind::Vector,
        "herm",
    );
    g.add_op_with_output(
        Opcode::vector(CoreOp::Mul),
        &[ah, b],
        DataKind::Vector,
        "mul",
    );
    let before = g.len();
    let st = merge_pipeline_ops(&mut g);
    println!(
        "  pre-merge:  {} → {} nodes ({} fold)",
        before,
        g.len(),
        st.pre_merges
    );
    // Right: matrix op with post-processing on its vector output.
    let mut g = eit_ir::Graph::new("right");
    let ins: Vec<_> = (0..4)
        .map(|i| g.add_data(DataKind::Vector, &format!("r{i}")))
        .collect();
    let (_, v) = g.add_op_with_output(Opcode::matrix(CoreOp::SquSum), &ins, DataKind::Vector, "ss");
    g.add_op_with_output(
        Opcode::Vector {
            pre: None,
            core: CoreOp::Pass,
            post: Some(PostOp::Sort),
        },
        &[v],
        DataKind::Vector,
        "sort",
    );
    let before = g.len();
    let st = merge_pipeline_ops(&mut g);
    println!(
        "  post-merge: {} → {} nodes ({} fold)",
        before,
        g.len(),
        st.post_merges
    );
}

fn fig8() {
    println!("Fig. 8 — memory access legality (16 banks, 4-bank pages, 3 slots/bank)");
    let mut spec = ArchSpec::eit();
    spec.slots_per_bank = 3;
    let cases: [(&str, [u32; 4], bool); 3] = [
        ("A (two bank conflicts)", [0, 1, 16, 17], false),
        ("B (page 3 on two lines)", [8, 9, 12, 29], false),
        ("C (conflict-free)", [34, 35, 22, 23], true),
    ];
    for (label, slots, expect) in cases {
        let ok = matrix_accessible_in_one_cycle(&spec, &slots);
        assert_eq!(ok, expect, "fig. 8 case {label}");
        println!(
            "  matrix {label}: slots {slots:?} → {}",
            if ok {
                "accessible in 1 cycle"
            } else {
                "NOT accessible"
            }
        );
    }
}

fn main() {
    rule(78);
    fig3();
    rule(78);
    fig45();
    rule(78);
    fig6();
    rule(78);
    fig8();
    rule(78);
}
