//! Kernel summary: the paper's graph-properties columns for every
//! bundled kernel, before and after the merge pass.
//!
//! Run: `cargo run --release -p eit-bench --bin summary`

use eit_ir::{merge_pipeline_ops, LatencyModel};

fn main() {
    let lm = LatencyModel::default();
    println!(
        "{:<8} {:>6} {:>6} {:>8} {:>9}   {:>6} {:>6} {:>8} {:>7}",
        "kernel", "|V|", "|E|", "|Cr.P|", "#v_data", "|V|'", "|E|'", "|Cr.P|'", "folds"
    );
    for name in ["qrd", "arf", "matmul", "fir", "detector", "blockmm"] {
        let k = eit_apps::by_name(name).unwrap();
        let g0 = &k.graph;
        let cp0 = g0.critical_path(&lm.of(g0));
        let vd = g0.count(eit_ir::Category::VectorData);
        let mut g1 = g0.clone();
        let stats = merge_pipeline_ops(&mut g1);
        let cp1 = g1.critical_path(&lm.of(&g1));
        println!(
            "{:<8} {:>6} {:>6} {:>8} {:>9}   {:>6} {:>6} {:>8} {:>7}",
            name,
            g0.len(),
            g0.edge_count(),
            cp0,
            vd,
            g1.len(),
            g1.edge_count(),
            cp1,
            stats.nodes_removed / 2,
        );
    }
    println!("\n(primed columns: after the fig. 6 pipeline-merge pass)");
}
