//! Table 3 — Pipelining with focus on limiting the number of
//! reconfigurations: modulo scheduling, with and without
//! reconfigurations in the optimisation, for QRD, ARF and MATMUL.
//!
//! The shape to reproduce: the model *excluding* reconfigurations finds a
//! low issue-II fast but pays many post-hoc reconfiguration stalls; the
//! model *including* them (configuration bands) spends more optimisation
//! effort and yields a better actual II — except for MATMUL, whose single
//! configuration needs no steady-state reconfiguration at all, so both
//! models tie at the resource-bound II of 4 with throughput 0.250.
//!
//! Run: `cargo run --release -p eit-bench --bin table3 [--arch A] [--metrics FILE]`

use eit_bench::{
    arch_arg, graph_props, metrics_arg, prepared, rule, write_metrics, Json, RunMetrics,
};
use eit_core::{modulo_schedule, validate_modulo, ModuloOptions};
use std::time::Duration;

fn main() {
    let metrics_path = metrics_arg();
    let arch = arch_arg();
    let mut rows = Vec::new();
    println!("Table 3: modulo scheduling, excluding vs including reconfigurations");
    rule(110);
    println!(
        "{:>8} {:>20} | {:>8} {:>6} {:>9} {:>9} | {:>8} {:>9} {:>9} {:>12}",
        "app",
        "(|V|,|E|,|Cr.P|)",
        "init II",
        "#rec",
        "act. II",
        "thr",
        "II",
        "thr",
        "", // spacing
        "opt time(ms)"
    );
    rule(110);

    for name in ["qrd", "arf", "matmul"] {
        let p = prepared(name);
        let (v, e, cp) = graph_props(&p.graph);
        let spec = arch.clone();

        let excl = modulo_schedule(
            &p.graph,
            &spec,
            &ModuloOptions {
                timeout_per_ii: Duration::from_secs(60),
                total_timeout: Duration::from_secs(300),
                ..Default::default()
            },
        )
        .expect("excl variant must find an II");
        assert!(
            validate_modulo(&p.graph, &spec, &excl, 4).is_empty(),
            "{name}: excl modulo schedule invalid"
        );

        let incl = modulo_schedule(
            &p.graph,
            &spec,
            &ModuloOptions {
                include_reconfig: true,
                timeout_per_ii: Duration::from_secs(60),
                total_timeout: Duration::from_secs(300),
                ..Default::default()
            },
        )
        .expect("incl variant must find an II");
        assert!(
            validate_modulo(&p.graph, &spec, &incl, 4).is_empty(),
            "{name}: incl modulo schedule invalid"
        );

        // Table 3 counts the *initial* configuration load for MATMUL
        // ("no reconfiguration is needed after the first instruction"),
        // so report max(switches, 1) in the #rec column like the paper.
        let rec_col = excl.switches.max(1);
        println!(
            "{:>8} {:>20} | {:>8} {:>6} {:>9} {:>9.3} | {:>8} {:>9.3} {:>9} {:>12.1}",
            name,
            format!("({v},{e},{cp})"),
            excl.ii_issue,
            rec_col,
            excl.actual_ii,
            excl.throughput,
            incl.actual_ii,
            incl.throughput,
            if incl.timed_out { "timeout*" } else { "" },
            incl.opt_time.as_secs_f64() * 1e3,
        );
        rows.push(Json::Obj(vec![
            ("app".into(), Json::str(name)),
            ("nodes".into(), Json::int(v as u64)),
            ("edges".into(), Json::int(e as u64)),
            ("critical_path".into(), Json::num(cp as f64)),
            ("excl_ii_issue".into(), Json::num(excl.ii_issue as f64)),
            ("excl_switches".into(), Json::int(rec_col as u64)),
            ("excl_actual_ii".into(), Json::num(excl.actual_ii as f64)),
            ("excl_throughput".into(), Json::num(excl.throughput)),
            ("incl_actual_ii".into(), Json::num(incl.actual_ii as f64)),
            ("incl_throughput".into(), Json::num(incl.throughput)),
            ("incl_timed_out".into(), Json::Bool(incl.timed_out)),
            (
                "incl_opt_time_us".into(),
                Json::int(incl.opt_time.as_micros() as u64),
            ),
        ]));
    }
    rule(110);
    println!("left block: optimisation excluding reconfigurations (stalls added post hoc);");
    println!("right block: optimisation including reconfigurations (configuration bands).");
    println!("paper reference: QRD (143,194,169) 32/23/55/0.018 vs 46/0.022 (3055 ms, timeout);");
    println!("                 ARF (88,128,56) 16/16/32/0.031 vs 24/0.042 (80061 ms);");
    println!("                 MATMUL (44,68,8) 4/1/4/0.250 vs 4/0.250 (2135 ms)");

    if let Some(path) = metrics_path {
        let mut m = RunMetrics::new("table3", "qrd+arf+matmul");
        m.arch(&arch).section("rows", Json::Arr(rows));
        write_metrics(&m, &path);
    }
}
