//! `eitc` — the compiler driver: kernel → schedule → machine listing.
//!
//! The whole fig. 2 flow on the command line.
//!
//! ```text
//! eitc <kernel|path.xml> [options]
//!
//!   <kernel>            qrd | arf | matmul | fir | detector | blockmm,
//!                       or a path to an IR .xml file
//!   --arch A            target machine: a preset name (eit | wide), a path
//!                       to an eit-arch/1 XML file, or inline XML; the
//!                       description is validated on load (default: eit)
//!   --dump-arch A       render the resolved architecture as eit-arch/1
//!                       XML on stdout and exit (no kernel needed); the
//!                       output reloads byte-identical via --arch
//!   --slots N           memory budget override (default: the arch's own;
//!                       64 for the builtin presets)
//!   --no-memory         schedule without the memory model (manual-baseline mode)
//!   --no-merge          skip the fig. 6 pipeline-merge pass
//!   --modulo [incl]     emit a modulo schedule instead (optionally with
//!                       reconfigurations modelled)
//!   --jobs N            worker threads for the modulo II sweep (default: 1;
//!                       N > 1 probes candidate IIs speculatively in parallel
//!                       and yields the same schedule as N = 1)
//!   --backend B         decision procedure for the modulo sweep:
//!                       cp (default), sat (the self-contained CDCL solver
//!                       over the order-encoded CNF model), or race (both
//!                       in parallel; first feasible answer wins and the
//!                       loser is cancelled). All backends agree on the
//!                       winning II; sat/race require the exclude-reconfig
//!                       model (no `--modulo incl`)
//!   --overlap M         overlapped execution of M iterations
//!   --timeout SECS      solver budget (default: 120)
//!   --emit xml          dump the (merged) IR as XML instead of compiling
//!   --emit dot          dump the (merged) IR as Graphviz DOT
//!   --emit vcd          dump the schedule as a VCD waveform
//!   --emit gantt        print a Gantt chart of the schedule instead of a listing
//!   --emit cnf          with --modulo: print the first encodable candidate
//!                       II of the sweep as a DIMACS CNF problem and exit
//!                       (escape hatch for external SAT solvers)
//!   --verify            after scheduling, re-check the result with the
//!                       independent verifier (eit-arch `verify` module) AND
//!                       the simulator's structural validation; exit 1 if
//!                       either reports a violation
//!   --trace FILE        write the solver's search events as JSON lines
//!   --record FILE       record the solve as a binary eit-trace/1 file
//!                       (canonical IR/arch hashes + every search event +
//!                       periodic store digests); replay it with --replay
//!   --replay FILE       re-validate a recorded solve in O(trace): re-drive
//!                       the solver forcing the recorded trajectory and
//!                       diff every event; exit 1 with a divergence report
//!                       on the first mismatch
//!   --strict            replay: any event mismatch fails (default)
//!   --lenient           replay: only outcome mismatches fail (solutions,
//!                       bounds, store hashes, final status)
//!   --profile           print the per-propagator profile table (stderr)
//!   --fifo              use the legacy FIFO propagation scheduler (A/B
//!                       baseline for the event-driven engine)
//!   --no-bitset         pin every solver variable to interval-list domains
//!                       instead of the hybrid bitset representation (A/B
//!                       baseline; same schedules, slower propagation)
//!   --restarts [P]      fail-budgeted restarts with nogood recording.
//!                       P = geom:BASE:FACTOR_PERCENT | luby:UNIT, with an
//!                       optional +ng suffix to record nogoods
//!                       (default policy: geom:256:150+ng)
//!   --metrics FILE      write machine-readable run metrics as JSON
//!   --serve ADDR        run as a compile daemon instead: bind ADDR and
//!                       speak the eit-serve/1 JSONL protocol until a
//!                       shutdown request arrives (no kernel argument;
//!                       --jobs sets the worker count, --timeout the
//!                       default per-request deadline, --metrics the
//!                       aggregated server metrics written at shutdown)
//! ```
//!
//! Example: `cargo run --release -p eit-bench --bin eitc -- qrd --slots 16`

use eit_arch::ArchSpec;
use eit_bench::{Json, RunMetrics};
use eit_core::pipeline::{compile, CompileError, CompileOptions};
use eit_core::{bundles_from_schedule, overlapped_execution, ModuloOptions, SchedulerOptions};
use eit_cp::trace::{JsonlSink, TraceHandle};
use eit_cp::{RecorderSink, ReplayOptions, Trace, TraceHeader};
use eit_ir::sem::Value;
use eit_ir::{Graph, NodeId};
use std::collections::HashMap;
use std::process::exit;
use std::sync::{Arc, Mutex};
use std::time::Duration;

struct Args {
    kernel: String,
    arch: Option<String>,
    dump_arch: Option<String>,
    slots: Option<u32>,
    memory: bool,
    merge: bool,
    modulo: Option<bool>, // Some(include_reconfig)
    backend: eit_core::Backend,
    jobs: usize,
    overlap: Option<usize>,
    timeout: u64,
    emit_xml: bool,
    emit_gantt: bool,
    emit_dot: bool,
    emit_vcd: bool,
    emit_cnf: bool,
    verify: bool,
    trace: Option<String>,
    record: Option<String>,
    replay: Option<String>,
    lenient: bool,
    profile: bool,
    fifo: bool,
    no_bitset: bool,
    restarts: Option<eit_cp::RestartConfig>,
    metrics: Option<String>,
    serve: Option<String>,
}

fn usage() -> ! {
    eprintln!("usage: eitc <qrd|arf|matmul|fir|detector|blockmm|path.xml>");
    eprintln!("            [--arch PRESET|FILE] [--slots N] [--no-memory] [--no-merge]");
    eprintln!("            [--modulo [incl]] [--backend cp|sat|race] [--jobs N]");
    eprintln!("            [--overlap M] [--timeout SECS]");
    eprintln!("            [--emit xml|gantt|dot|vcd|cnf] [--verify]");
    eprintln!("            [--trace FILE] [--record FILE] [--replay FILE [--strict|--lenient]]");
    eprintln!("            [--profile] [--fifo] [--no-bitset] [--restarts [POLICY]]");
    eprintln!("            [--metrics FILE]");
    eprintln!("       eitc --serve ADDR [--jobs N] [--timeout SECS] [--metrics FILE]");
    eprintln!("       eitc --dump-arch PRESET|FILE");
    exit(2);
}

fn bad_arg(what: &str) -> ! {
    eprintln!("eitc: unrecognized argument '{what}'");
    usage();
}

fn parse_args() -> Args {
    let mut args = Args {
        kernel: String::new(),
        arch: None,
        dump_arch: None,
        slots: None,
        memory: true,
        merge: true,
        modulo: None,
        backend: eit_core::Backend::Cp,
        jobs: 1,
        overlap: None,
        timeout: 120,
        emit_xml: false,
        emit_gantt: false,
        emit_dot: false,
        emit_vcd: false,
        emit_cnf: false,
        verify: false,
        trace: None,
        record: None,
        replay: None,
        lenient: false,
        profile: false,
        fifo: false,
        no_bitset: false,
        restarts: None,
        metrics: None,
        serve: None,
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--arch" => args.arch = Some(it.next().unwrap_or_else(|| usage())),
            "--dump-arch" => args.dump_arch = Some(it.next().unwrap_or_else(|| usage())),
            "--slots" => {
                args.slots = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--no-memory" => args.memory = false,
            "--no-merge" => args.merge = false,
            "--modulo" => {
                let incl = it.peek().map(String::as_str) == Some("incl");
                if incl {
                    it.next();
                }
                args.modulo = Some(incl);
            }
            "--backend" => {
                args.backend = it
                    .next()
                    .as_deref()
                    .and_then(eit_core::Backend::parse)
                    .unwrap_or_else(|| {
                        eprintln!("eitc: --backend expects cp, sat, or race");
                        usage();
                    })
            }
            "--jobs" => {
                args.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--overlap" => {
                args.overlap = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--timeout" => {
                args.timeout = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--emit" => match it.next().as_deref() {
                Some("xml") => args.emit_xml = true,
                Some("gantt") => args.emit_gantt = true,
                Some("dot") => args.emit_dot = true,
                Some("vcd") => args.emit_vcd = true,
                Some("cnf") => args.emit_cnf = true,
                Some(other) => bad_arg(&format!("--emit {other}")),
                None => usage(),
            },
            "--verify" => args.verify = true,
            "--trace" => args.trace = Some(it.next().unwrap_or_else(|| usage())),
            "--record" => args.record = Some(it.next().unwrap_or_else(|| usage())),
            "--replay" => args.replay = Some(it.next().unwrap_or_else(|| usage())),
            "--strict" => args.lenient = false,
            "--lenient" => args.lenient = true,
            "--profile" => args.profile = true,
            "--fifo" => args.fifo = true,
            "--no-bitset" => args.no_bitset = true,
            "--restarts" => {
                // The policy token is optional: a following argument is
                // consumed only when it parses as one, so `--restarts
                // qrd` still reads `qrd` as the kernel.
                let parsed = it
                    .peek()
                    .and_then(|t| eit_cp::RestartConfig::parse_token(t));
                args.restarts = Some(match parsed {
                    Some(cfg) => {
                        it.next();
                        cfg
                    }
                    None => eit_cp::RestartConfig::default(),
                });
            }
            "--metrics" => args.metrics = Some(it.next().unwrap_or_else(|| usage())),
            "--serve" => args.serve = Some(it.next().unwrap_or_else(|| usage())),
            k if !k.starts_with('-') && args.kernel.is_empty() => args.kernel = k.to_string(),
            other => bad_arg(other),
        }
    }
    if args.kernel.is_empty() && args.serve.is_none() && args.dump_arch.is_none() {
        usage();
    }
    args
}

/// Resolve an `--arch` argument: a path to an eit-arch/1 XML file wins
/// when one exists on disk; otherwise the value is handed to
/// [`eit_arch::resolve_arch`] as a preset name or inline XML. Either way
/// the description is validated before the scheduler ever sees it.
fn load_arch(arg: &str) -> ArchSpec {
    let looks_like_file = std::path::Path::new(arg).exists();
    let resolved = if looks_like_file {
        let src = std::fs::read_to_string(arg).unwrap_or_else(|e| {
            eprintln!("eitc: cannot read arch file {arg}: {e}");
            exit(1);
        });
        eit_arch::from_arch_xml(&src).map_err(|e| format!("{arg}: {e}"))
    } else {
        eit_arch::resolve_arch(arg)
    };
    resolved.unwrap_or_else(|e| {
        eprintln!("eitc: --arch: {e}");
        exit(1);
    })
}

/// Daemon mode: bind `addr` and answer `eit-serve/1` requests until a
/// shutdown op arrives; then drain, optionally write the aggregated
/// server metrics, and exit 0. `--jobs` sizes the worker pool and
/// `--timeout` becomes the default per-request wall-clock deadline.
fn serve_mode(addr: &str, args: &Args) -> ! {
    use std::io::Write as _;
    let srv = eit_serve::Server::start(eit_serve::ServeOptions {
        addr: addr.to_string(),
        workers: args.jobs,
        default_deadline: Duration::from_secs(args.timeout),
        ..Default::default()
    })
    .unwrap_or_else(|e| {
        eprintln!("eitc: cannot serve on {addr}: {e}");
        exit(1);
    });
    println!("; eit-serve/1 listening on {}", srv.local_addr());
    let _ = std::io::stdout().flush(); // scripts wait for this line
    let doc = srv.join_with_metrics();
    if let Some(path) = &args.metrics {
        if let Err(e) = std::fs::write(path, doc.render()) {
            eprintln!("eitc: cannot write metrics to {path}: {e}");
            exit(1);
        }
    }
    println!("; eit-serve: drained, shutting down");
    exit(0);
}

/// Print verification results and exit 1 on any violation. `label` names
/// the schedule being checked, `independent` is the eit-arch `verify`
/// module's verdict and `structural` the simulator's — the point of
/// running both is that they are separate implementations of the same
/// architecture rules, so a disagreement is itself reportable.
fn report_verification(
    label: &str,
    independent: &[eit_arch::Violation],
    structural: &[eit_arch::Violation],
) {
    let mut bad = false;
    for (tag, vs) in [("verifier", independent), ("simulator", structural)] {
        if vs.is_empty() {
            continue;
        }
        bad = true;
        eprintln!(
            "eitc: --verify: {label}: {tag} found {} violation(s):",
            vs.len()
        );
        for v in vs.iter().take(20) {
            eprintln!("eitc:   {v}");
        }
    }
    if independent.is_empty() != structural.is_empty() {
        eprintln!("eitc: --verify: {label}: verifier and simulator DISAGREE");
    }
    if bad {
        exit(1);
    }
    println!("; verify: {label}: clean (independent verifier + simulator agree)");
}

/// The graph plus, for built-in kernels, its reference input values (so
/// the metrics can include a simulator section).
fn load_graph(name: &str) -> (Graph, HashMap<NodeId, Value>) {
    if name.ends_with(".xml") {
        let src = std::fs::read_to_string(name).unwrap_or_else(|e| {
            eprintln!("eitc: cannot read {name}: {e}");
            exit(1);
        });
        let g = eit_ir::from_xml(&src).unwrap_or_else(|e| {
            eprintln!("eitc: cannot parse {name}: {e}");
            exit(1);
        });
        (g, HashMap::new())
    } else {
        match eit_apps::by_name(name) {
            Some(k) => (k.graph, k.inputs),
            None => {
                eprintln!("eitc: unknown kernel {name}");
                exit(1);
            }
        }
    }
}

/// The `modulo` metrics section. Everything outside `jobs`, the `*_us`
/// timing fields and the `workers` array is deterministic and identical
/// across `--jobs` values: the `probes` array is cut at the winning II —
/// probes at or below the winner always run to a natural stop (cancellation
/// only ever targets candidates above a feasible II), so their node and
/// fail counts match the sequential sweep byte for byte.
fn modulo_metrics(r: &eit_core::ModuloResult) -> Json {
    let probes: Vec<Json> = r
        .probes
        .iter()
        .filter(|p| p.ii <= r.ii_issue)
        .map(|p| {
            Json::Obj(vec![
                ("ii".into(), Json::int(p.ii as u64)),
                ("outcome".into(), Json::str(p.outcome)),
                ("nodes".into(), Json::int(p.nodes)),
                ("fails".into(), Json::int(p.fails)),
                ("time_us".into(), Json::int(p.time.as_micros() as u64)),
            ])
        })
        .collect();
    let mut per_worker: Vec<(u64, u64, u64, u64)> = Vec::new();
    for p in &r.probes {
        if per_worker.len() <= p.worker {
            per_worker.resize(p.worker + 1, (0, 0, 0, 0));
        }
        let w = &mut per_worker[p.worker];
        w.0 += 1;
        w.1 += p.nodes;
        w.2 += p.fails;
        w.3 += p.time.as_micros() as u64;
    }
    let workers: Vec<Json> = per_worker
        .iter()
        .enumerate()
        .map(|(i, &(n, nodes, fails, busy))| {
            Json::Obj(vec![
                ("worker".into(), Json::int(i as u64)),
                ("probes".into(), Json::int(n)),
                ("nodes".into(), Json::int(nodes)),
                ("fails".into(), Json::int(fails)),
                ("busy_us".into(), Json::int(busy)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("ii_issue".into(), Json::int(r.ii_issue as u64)),
        ("switches".into(), Json::int(r.switches as u64)),
        ("actual_ii".into(), Json::int(r.actual_ii as u64)),
        ("throughput".into(), Json::num(r.throughput)),
        ("timed_out".into(), Json::Bool(r.timed_out)),
        ("jobs".into(), Json::int(r.jobs as u64)),
        // Which decision procedure produced the accepted schedule — under
        // `--backend race` this is the winner attribution.
        ("backend".into(), Json::str(r.backend)),
        (
            "opt_time_us".into(),
            Json::int(r.opt_time.as_micros() as u64),
        ),
        ("probes".into(), Json::Arr(probes)),
        ("workers".into(), Json::Arr(workers)),
    ];
    if let Some(s) = &r.sat {
        fields.push((
            "sat".into(),
            Json::Obj(vec![
                ("vars".into(), Json::int(s.vars)),
                ("clauses".into(), Json::int(s.clauses)),
                ("decisions".into(), Json::int(s.decisions)),
                ("conflicts".into(), Json::int(s.conflicts)),
                ("propagations".into(), Json::int(s.propagations)),
                ("restarts".into(), Json::int(s.restarts)),
            ]),
        ));
    }
    Json::Obj(fields)
}

/// Refuse a trace recorded for a different problem or solver setup.
fn check_trace_header(h: &TraceHeader, ir: u64, arch: u64, config: &str) {
    if h.ir_hash != ir {
        eprintln!(
            "eitc: replay: trace was recorded for a different IR \
             (trace {:016x}, this run {ir:016x})",
            h.ir_hash
        );
        exit(1);
    }
    if h.arch_hash != arch {
        eprintln!(
            "eitc: replay: trace was recorded for a different architecture \
             (trace {:016x}, this run {arch:016x})",
            h.arch_hash
        );
        exit(1);
    }
    if h.config != config {
        eprintln!(
            "eitc: replay: solver config mismatch (trace '{}', this run '{config}')",
            h.config
        );
        exit(1);
    }
}

/// Report a replay's outcome and exit: 0 on a clean match, 1 with a
/// divergence report (or structure error) otherwise.
fn finish_replay(path: &str, file_hash: u64, rep: eit_core::RrReport) -> ! {
    if rep.ok {
        println!(
            "; replay ok: {path} (fnv64 {file_hash:016x}): {} stream(s), \
             {} event(s) checked, replay nodes {} (recorded {})",
            rep.streams, rep.checked, rep.replay_nodes, rep.recorded_nodes
        );
        exit(0);
    }
    if let Some(msg) = &rep.structure_error {
        eprintln!("eitc: replay: malformed recording: {msg}");
    }
    if let Some((stream, d)) = &rep.divergence {
        eprintln!("eitc: replay diverged in stream {stream}:");
        eprint!("{d}");
    }
    exit(1);
}

/// The `trace` metrics section for a recorded run.
fn trace_section(path: &str, rec: &Arc<Mutex<RecorderSink>>) -> Json {
    let r = rec.lock().unwrap_or_else(|e| e.into_inner());
    Json::Obj(vec![
        ("format".into(), Json::str("eit-trace/1")),
        ("file".into(), Json::str(path)),
        ("hash".into(), Json::str(format!("{:016x}", r.hash()))),
        ("events".into(), Json::int(r.events())),
    ])
}

fn main() {
    let args = parse_args();
    if let Some(a) = &args.dump_arch {
        // The rendered bytes reload equal to the source description, so
        // `--arch <(eitc --dump-arch eit)` is the builtin path verbatim.
        print!("{}", eit_arch::to_arch_xml(&load_arch(a)));
        return;
    }
    if let Some(addr) = &args.serve {
        serve_mode(addr, &args);
    }
    let (mut g, inputs) = load_graph(&args.kernel);
    if let Err(e) = g.validate() {
        eprintln!("eitc: invalid IR: {e}");
        exit(1);
    }
    if args.merge {
        let st = eit_ir::merge_pipeline_ops(&mut g);
        if st.nodes_removed > 0 {
            eprintln!("; merge pass folded {} node pairs", st.nodes_removed / 2);
        }
    }
    if args.emit_xml {
        print!("{}", eit_ir::to_xml(&g));
        return;
    }
    if args.emit_dot {
        print!("{}", eit_ir::to_dot(&g));
        return;
    }

    // --slots only overrides when given explicitly, so a custom arch's
    // own slot budget survives `--arch machine.xml` with no other flags.
    let mut spec = match &args.arch {
        Some(a) => load_arch(a),
        None => ArchSpec::eit().with_slots(64),
    };
    if let Some(n) = args.slots {
        spec = spec.with_slots(n);
    }
    let timeout = Duration::from_secs(args.timeout);

    let rr = args.record.is_some() || args.replay.is_some();
    if args.record.is_some() && args.replay.is_some() {
        eprintln!("eitc: --record and --replay are mutually exclusive");
        exit(2);
    }
    if rr && args.trace.is_some() {
        eprintln!("eitc: --trace (JSONL) cannot be combined with --record/--replay");
        exit(2);
    }
    if rr && args.modulo.is_none() {
        // The recorded canonical IR hash must cover the exact graph the
        // solver sees, so the CSE pass runs here instead of inside
        // compile() when recording or replaying.
        let st = eit_ir::eliminate_common_subexpressions(&mut g);
        if st.ops_removed > 0 {
            eprintln!("; CSE folded {} duplicate op(s)", st.ops_removed);
        }
    }

    let trace = args.trace.as_ref().map(|path| {
        let sink = JsonlSink::create(path).unwrap_or_else(|e| {
            eprintln!("eitc: cannot open trace file {path}: {e}");
            exit(1);
        });
        TraceHandle::new(sink)
    });

    if let Some(include_reconfig) = args.modulo {
        let mut mopts = ModuloOptions {
            include_reconfig,
            backend: args.backend,
            timeout_per_ii: timeout,
            total_timeout: timeout,
            jobs: args.jobs,
            trace: trace.clone(),
            restarts: args.restarts,
            bitset: !args.no_bitset,
            ..Default::default()
        };
        if rr && args.backend != eit_core::Backend::Cp {
            // The trace format records CP search events; the SAT sweep
            // (and hence the race, whose winner varies with load) has no
            // node-per-node trajectory to diff against.
            eprintln!(
                "eitc: --record/--replay require the cp backend \
                 (got --backend {})",
                args.backend.as_str()
            );
            exit(2);
        }
        if args.emit_cnf {
            match eit_core::modulo_cnf_dimacs(&g, &spec, &mopts) {
                Ok(Some((ii, dimacs))) => {
                    eprintln!("; DIMACS CNF for candidate II {ii}");
                    print!("{dimacs}");
                }
                Ok(None) => {
                    eprintln!("eitc: every candidate II is statically refuted; no CNF to emit");
                    exit(1);
                }
                Err(e) => {
                    eprintln!("eitc: --emit cnf: {e}");
                    exit(1);
                }
            }
            return;
        }
        if let Some(path) = &args.replay {
            let t = Trace::read(path).unwrap_or_else(|e| {
                eprintln!("eitc: cannot read trace {path}: {e}");
                exit(1);
            });
            mopts.state_hash_every = (t.header.hash_every > 0).then_some(t.header.hash_every);
            check_trace_header(
                &t.header,
                eit_core::ir_hash(&g),
                eit_core::arch_hash(&spec),
                &eit_core::modulo_config_string(&mopts),
            );
            let rep = eit_core::replay_modulo(
                &g,
                &spec,
                &mopts,
                &t.events,
                &ReplayOptions {
                    strict: !args.lenient,
                },
            );
            finish_replay(path, t.file_hash, rep);
        }
        let recorder = args.record.as_ref().map(|path| {
            mopts.state_hash_every = Some(eit_core::DEFAULT_HASH_EVERY);
            let header = eit_core::modulo_header(&g, &spec, &mopts);
            let sink = RecorderSink::create(path, &header).unwrap_or_else(|e| {
                eprintln!("eitc: cannot create trace file {path}: {e}");
                exit(1);
            });
            let arc = Arc::new(Mutex::new(sink));
            mopts.trace = Some(TraceHandle::new(Arc::clone(&arc)));
            arc
        });
        let r = match eit_core::modulo_schedule_checked(&g, &spec, &mopts) {
            Ok(Some(r)) => r,
            Ok(None) => {
                eprintln!("eitc: no modulo schedule found within budget");
                exit(1);
            }
            Err(e) => {
                eprintln!("eitc: modulo scheduling failed: {e}");
                exit(1);
            }
        };
        if let (Some(path), Some(rec)) = (&args.record, &recorder) {
            let rec = rec.lock().unwrap_or_else(|e| e.into_inner());
            println!(
                "; recorded {} event(s) to {path} (eit-trace/1, fnv64 {:016x})",
                rec.events(),
                rec.hash()
            );
        }
        // Shared with the eit-serve daemon, so a served response is
        // byte-identical to this stdout by construction.
        print!("{}", eit_core::render_modulo(&g, &r));
        if let Some(path) = &args.metrics {
            let mut m = RunMetrics::new("eitc", &args.kernel);
            m.arch(&spec).section("modulo", modulo_metrics(&r));
            if let (Some(tp), Some(rec)) = (&args.record, &recorder) {
                m.section("trace", trace_section(tp, rec));
            }
            if let Err(e) = m.write_to(path) {
                eprintln!("eitc: cannot write metrics to {path}: {e}");
                exit(1);
            }
        }
        if args.verify {
            report_verification(
                &format!("modulo II {}", r.ii_issue),
                &eit_arch::verify_modulo(&g, &spec, &r.s, r.ii_issue),
                &eit_core::validate_modulo(&g, &spec, &r, 3),
            );
        }
        return;
    }

    // The straight-line path is the one-call toolchain. The merge pass
    // already ran above (so --no-merge is honoured); CSE runs here
    // unless --record/--replay hoisted it before the IR hash.
    let mut sched_opts = SchedulerOptions {
        memory: args.memory,
        timeout: Some(timeout),
        trace,
        profile: args.profile || args.metrics.is_some(),
        fifo_engine: args.fifo,
        restarts: args.restarts,
        bitset: !args.no_bitset,
        ..Default::default()
    };

    if let Some(path) = &args.replay {
        let t = Trace::read(path).unwrap_or_else(|e| {
            eprintln!("eitc: cannot read trace {path}: {e}");
            exit(1);
        });
        sched_opts.trace = None;
        sched_opts.profile = false;
        sched_opts.state_hash_every = (t.header.hash_every > 0).then_some(t.header.hash_every);
        check_trace_header(
            &t.header,
            eit_core::ir_hash(&g),
            eit_core::arch_hash(&spec),
            &eit_core::schedule_config_string(&sched_opts),
        );
        let rep = eit_core::replay_schedule(
            &g,
            &spec,
            &sched_opts,
            &t.events,
            &ReplayOptions {
                strict: !args.lenient,
            },
        );
        finish_replay(path, t.file_hash, rep);
    }

    let recorder = args.record.as_ref().map(|path| {
        sched_opts.state_hash_every = Some(eit_core::DEFAULT_HASH_EVERY);
        let header = eit_core::schedule_header(&g, &spec, &sched_opts);
        let sink = RecorderSink::create(path, &header).unwrap_or_else(|e| {
            eprintln!("eitc: cannot create trace file {path}: {e}");
            exit(1);
        });
        let arc = Arc::new(Mutex::new(sink));
        sched_opts.trace = Some(TraceHandle::new(Arc::clone(&arc)));
        arc
    });

    let out = match compile(
        g,
        &spec,
        &CompileOptions {
            cse: !rr,     // hoisted above when recording/replaying
            merge: false, // already applied (or skipped) above
            scheduler: sched_opts,
        },
    ) {
        Ok(out) => out,
        Err(CompileError::Infeasible) => {
            eprintln!("eitc: proven infeasible on this machine configuration");
            exit(1);
        }
        Err(e) => {
            eprintln!("eitc: {e}");
            exit(1);
        }
    };

    if args.verify {
        report_verification(
            "schedule",
            &eit_arch::verify_schedule(&out.graph, &spec, &out.schedule, args.memory),
            &eit_arch::validate_structure_with(&out.graph, &spec, &out.schedule, args.memory),
        );
    }

    if args.profile {
        let total: u64 = out.propagator_profile.iter().map(|p| p.invocations).sum();
        eprint!(
            "{}",
            eit_cp::render_profile_table(&out.propagator_profile, total)
        );
    }

    if let (Some(path), Some(rec)) = (&args.record, &recorder) {
        let rec = rec.lock().unwrap_or_else(|e| e.into_inner());
        println!(
            "; recorded {} event(s) to {path} (eit-trace/1, fnv64 {:016x})",
            rec.events(),
            rec.hash()
        );
    }

    if let Some(path) = &args.metrics {
        let mut m = RunMetrics::new("eitc", &args.kernel);
        m.arch(&spec)
            .solver(out.status, Some(out.schedule.makespan), &out.solver, None)
            .domains(out.domain_reps)
            .spans(&out.timings)
            .propagators(&out.propagator_profile)
            .program(&out.program);
        if let (Some(tp), Some(rec)) = (&args.record, &recorder) {
            m.section("trace", trace_section(tp, rec));
        }
        if args.memory && !inputs.is_empty() {
            let rep = eit_arch::simulate(&out.graph, &spec, &out.schedule, &inputs);
            m.sim(&rep);
        }
        if let Err(e) = m.write_to(path) {
            eprintln!("eitc: cannot write metrics to {path}: {e}");
            exit(1);
        }
    }

    if let Some(m) = args.overlap {
        let bundles = bundles_from_schedule(&out.graph, &out.schedule);
        let ov = overlapped_execution(&out.graph, &spec, &bundles, m);
        println!(
            "; overlapped execution x{m}: {} cc total ({:.1} cc/iter), {} reconfigs, {:.4} iter/cc",
            ov.makespan,
            ov.makespan as f64 / m as f64,
            ov.reconfig_switches,
            ov.throughput
        );
        if args.verify {
            report_verification(
                &format!("overlap x{m} ({} bundles)", ov.n_bundles),
                &eit_arch::verify_overlapped(&ov.graph, &spec, &ov.schedule),
                &eit_arch::validate_structure_with(&ov.graph, &spec, &ov.schedule, false),
            );
        }
        return;
    }

    if args.emit_gantt {
        print!(
            "{}",
            eit_arch::render_gantt(&out.graph, &spec, &out.schedule)
        );
        return;
    }
    if args.emit_vcd {
        print!("{}", eit_arch::to_vcd(&out.graph, &spec, &out.schedule));
        return;
    }

    if out.cse.ops_removed > 0 {
        eprintln!("; CSE folded {} duplicate op(s)", out.cse.ops_removed);
    }
    // Shared with the eit-serve daemon (see render_modulo above).
    print!("{}", eit_core::render_compiled(&out));
}
