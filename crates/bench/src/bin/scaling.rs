//! Solve-time scaling sweep (extension beyond the paper): synthetic
//! kernels of growing size through the full scheduling pipeline,
//! reporting |V|, makespan and solver effort.
//!
//! Run: `cargo run --release -p eit-bench --bin scaling [--arch A]`

use eit_apps::synth::{build, SynthParams};
use eit_bench::arch_arg;
use eit_core::{list_schedule, schedule, SchedulerOptions};
use std::time::Duration;

fn main() {
    println!(
        "{:>6} {:>6} {:>9} {:>9} {:>10} {:>10} {:>12}",
        "|V|", "ops", "CP", "heuristic", "nodes", "fails", "time (ms)"
    );
    let spec = arch_arg();
    for (layers, width) in [(2usize, 4usize), (3, 6), (4, 8), (5, 10), (6, 12)] {
        let k = build(SynthParams {
            layers,
            width,
            seed: 11,
            scalar_fraction: 0.15,
        });
        let mut g = k.graph.clone();
        eit_ir::merge_pipeline_ops(&mut g);
        let ops = g.ids().filter(|&n| g.category(n).is_op()).count();
        let r = schedule(
            &g,
            &spec,
            &SchedulerOptions {
                timeout: Some(Duration::from_secs(60)),
                ..Default::default()
            },
        );
        let heur = list_schedule(&g, &spec, false)
            .map(|h| h.schedule.makespan.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>6} {:>6} {:>9} {:>9} {:>10} {:>10} {:>12.1}",
            g.len(),
            ops,
            r.makespan.map_or("-".into(), |m| m.to_string()),
            heur,
            r.stats.nodes,
            r.stats.fails,
            r.stats.time.as_secs_f64() * 1e3,
        );
    }
}
