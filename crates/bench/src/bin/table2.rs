//! Table 2 — Overlapping iterations with focus on limiting the number of
//! reconfigurations (§4.3's ad-hoc *overlapped execution*).
//!
//! Twelve QRD iterations are pipelined by executing the k-th instruction
//! bundle of all iterations back to back. Two bundle sources:
//!
//! - **Manual**: the architects' style — a greedy ordering that minimises
//!   the number of effective instructions, scheduled *without memory
//!   allocation* (exactly what the paper says the hand-written machine
//!   code does);
//! - **Automated**: bundles read off our CP schedule (with memory
//!   allocation).
//!
//! The shape to reproduce: both mask the 7-cycle pipeline latency,
//! reconfigurations stay around 1.5–2 per iteration, and the automated
//! flow lands within ~20 % of the manual baseline.
//!
//! Run: `cargo run --release -p eit-bench --bin table2 [--arch A] [--metrics FILE]`

use eit_arch::ArchSpec;
use eit_bench::{arch_arg, metrics_arg, prepared, rule, write_metrics, Json, RunMetrics};
use eit_core::{
    bundles_from_schedule, manual_style_bundles, overlapped_execution, schedule, Bundle,
    SchedulerOptions,
};
use std::time::Duration;

fn row(
    label: &str,
    bundles: &[Bundle],
    p: &eit_bench::Prepared,
    m: usize,
    spec: &ArchSpec,
) -> Json {
    let r = overlapped_execution(&p.graph, spec, bundles, m);
    // Structural validation (memory excluded, as in the paper's manual
    // baseline which has no allocation).
    let v = eit_arch::validate_structure_with(&r.graph, spec, &r.schedule, false);
    assert!(v.is_empty(), "{label}: overlap schedule invalid: {v:?}");
    println!(
        "{:>10} {:>9} {:>12} {:>8} {:>14.2} {:>18.4}",
        label,
        r.n_bundles,
        r.makespan,
        r.reconfig_switches,
        r.reconfig_switches as f64 / m as f64,
        r.throughput
    );
    Json::Obj(vec![
        ("variant".into(), Json::str(label)),
        ("instructions".into(), Json::int(r.n_bundles as u64)),
        ("makespan".into(), Json::num(r.makespan as f64)),
        ("reconfigs".into(), Json::int(r.reconfig_switches as u64)),
        ("throughput".into(), Json::num(r.throughput)),
    ])
}

fn main() {
    let m = 12;
    let spec = arch_arg();
    let p = prepared("qrd");
    println!("Table 2: overlapped execution of {m} QRD iterations");
    rule(78);
    println!(
        "{:>10} {:>9} {:>12} {:>8} {:>14} {:>18}",
        "", "#instr", "length (cc)", "#reconf", "#reconf/#iter", "thr (iter/cc)"
    );
    rule(78);

    // Manual: instruction-count-minimising greedy, no memory allocation.
    let manual = manual_style_bundles(&p.graph, &spec);
    let manual_row = row("manual", &manual, &p, m, &spec);

    // Automated: CP schedule with memory allocation, bundles extracted.
    let r = schedule(
        &p.graph,
        &spec,
        &SchedulerOptions {
            timeout: Some(Duration::from_secs(120)),
            ..Default::default()
        },
    );
    let s = r.schedule.expect("QRD must schedule");
    let auto = bundles_from_schedule(&p.graph, &s);
    let auto_row = row("automated", &auto, &p, m, &spec);

    rule(78);
    println!("paper reference: manual 460 cc, 18 reconf (1.5/iter), 0.026 iter/cc;");
    println!("                 automated 540 cc, 24 reconf (2/iter), 0.022 iter/cc");

    if let Some(path) = metrics_arg() {
        let mut metrics = RunMetrics::new("table2", "qrd");
        metrics
            .arch(&spec)
            .solver(r.status, r.makespan, &r.stats, r.winner)
            .section("iterations", Json::int(m as u64))
            .section("rows", Json::Arr(vec![manual_row, auto_row]));
        write_metrics(&metrics, &path);
    }
}
