//! Table 1 — Scheduling QR decomposition on the EIT architecture.
//!
//! Reproduces the paper's memory-size sweep: the QRD kernel is scheduled
//! with combined memory allocation at decreasing slot budgets. The shape
//! to reproduce: the schedule length equals the critical path and stays
//! *constant* across memory sizes ("memory size is a secondary issue"),
//! until the budget crosses the kernel's live-set floor, below which the
//! instance is infeasible. The paper reports 173 cc at 64/32/16/10 slots,
//! a timeout at 9 and an infeasibility proof at 8; our kernel's live-set
//! floor sits at 8 slots (it has 8 vector inputs alive at cycle 0).
//!
//! Run: `cargo run --release -p eit-bench --bin table1 [--arch A] [--metrics FILE]`

use eit_bench::{
    arch_arg, graph_props, metrics_arg, prepared, rule, write_metrics, Json, RunMetrics,
};
use eit_core::{schedule, SchedulerOptions};
use eit_cp::SearchStatus;
use std::time::Duration;

fn main() {
    let metrics_path = metrics_arg();
    let arch = arch_arg();
    let mut rows = Vec::new();
    let p = prepared("qrd");
    let (v, e, cp) = graph_props(&p.graph);
    let vd = p.graph.count(eit_ir::Category::VectorData);
    println!("Table 1: scheduling QRD with memory allocation");
    println!("application properties: |V| = {v}, |E| = {e}, |Cr.P| = {cp}, #v_data = {vd}");
    println!("(paper: |V| = 143, |E| = 194, |Cr.P| = 169, #v_data = 49)");
    rule(78);
    println!(
        "{:>15} {:>12} {:>12} {:>12} {:>14}",
        "#slots avail", "length (cc)", "#slots used", "status", "opt. time (ms)"
    );
    rule(78);

    for slots in [64u32, 32, 16, 10, 9, 8, 7, 6] {
        let spec = arch.clone().with_slots(slots);
        let r = schedule(
            &p.graph,
            &spec,
            &SchedulerOptions {
                timeout: Some(Duration::from_secs(120)),
                ..Default::default()
            },
        );
        let status = match r.status {
            SearchStatus::Optimal => "optimal",
            SearchStatus::Feasible => "feasible*",
            SearchStatus::Infeasible => "infeasible",
            SearchStatus::Unknown => "timeout",
        };
        let (len, used) = match &r.schedule {
            Some(s) => {
                // Safety net: re-validate through the simulator.
                let violations = eit_arch::validate_structure(&p.graph, &spec, s);
                assert!(
                    violations.is_empty(),
                    "slots={slots}: schedule fails validation: {violations:?}"
                );
                (s.makespan.to_string(), s.slots_used(&p.graph).to_string())
            }
            None => ("-".into(), "-".into()),
        };
        println!(
            "{:>15} {:>12} {:>12} {:>12} {:>14.1}",
            slots,
            len,
            used,
            status,
            r.stats.time.as_secs_f64() * 1e3
        );
        rows.push(Json::Obj(vec![
            ("slots".into(), Json::int(slots as u64)),
            ("status".into(), Json::str(status)),
            (
                "makespan".into(),
                r.makespan.map_or(Json::Null, |m| Json::num(m as f64)),
            ),
            (
                "slots_used".into(),
                r.schedule
                    .as_ref()
                    .map_or(Json::Null, |s| Json::int(s.slots_used(&p.graph) as u64)),
            ),
            ("nodes".into(), Json::int(r.stats.nodes)),
            ("time_us".into(), Json::int(r.stats.time.as_micros() as u64)),
        ]));
    }
    rule(78);
    println!("paper reference: 173 cc at 64/32/16/10 slots (33/28/16/10 used, ~1.8 s),");
    println!("                 9 slots → timeout, 8 slots → infeasible");

    if let Some(path) = metrics_path {
        let mut m = RunMetrics::new("table1", "qrd");
        m.arch(&arch).section("rows", Json::Arr(rows));
        write_metrics(&m, &path);
    }
}
