//! `eit_client` — a thin `eit-serve/1` client for scripts and CI.
//!
//! ```text
//! eit_client [--addr HOST:PORT] [--retry N] <command>
//!
//!   --addr HOST:PORT    daemon address (default: 127.0.0.1:7871)
//!   --retry N           connection attempts, 200 ms apart (default: 1;
//!                       lets scripts race the daemon's startup)
//!
//!   ping                          liveness probe
//!   stats                         aggregated server metrics
//!   shutdown                      ask the daemon to drain and exit
//!   panic                         fault-injection: make a worker panic
//!   raw LINE                      send LINE verbatim (protocol testing)
//!   compile <kernel|path.xml>     compile a builtin kernel or an IR file
//!       [--arch A]                target machine: preset name, path to an
//!                                 eit-arch/1 XML file (sent inline), or
//!                                 inline XML (default: server's eit)
//!       [--slots N]               memory budget (default: the arch's own;
//!                                 64 for the server's default machine)
//!       [--modulo [incl]]         modulo schedule instead
//!       [--deadline-ms N]         per-request wall-clock deadline
//!       [--out FILE]              write the decoded listing to FILE
//! ```
//!
//! The raw response line is printed to stdout. Exit status: 0 when a
//! response arrived (including structured errors — scripts grep the
//! line), 1 on transport failure, 2 on usage errors.

use eit_bench::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::exit;
use std::time::Duration;

struct Args {
    addr: String,
    retry: u32,
    command: Command,
}

enum Command {
    Ping,
    Stats,
    Shutdown,
    Panic,
    Raw(String),
    Compile {
        kernel: String,
        arch: Option<String>,
        slots: Option<u64>,
        modulo: Option<bool>, // Some(include_reconfig)
        deadline_ms: Option<u64>,
        out: Option<String>,
    },
}

fn usage() -> ! {
    eprintln!("usage: eit_client [--addr HOST:PORT] [--retry N] <command>");
    eprintln!("       commands: ping | stats | shutdown | panic | raw LINE");
    eprintln!(
        "                 | compile <kernel|path.xml> [--arch A] [--slots N] [--modulo [incl]]"
    );
    eprintln!("                           [--deadline-ms N] [--out FILE]");
    exit(2);
}

fn parse_args() -> Args {
    let mut addr = "127.0.0.1:7871".to_string();
    let mut retry = 1u32;
    let mut it = std::env::args().skip(1).peekable();
    let command = loop {
        match it.next().as_deref() {
            Some("--addr") => addr = it.next().unwrap_or_else(|| usage()),
            Some("--retry") => {
                retry = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            Some("ping") => break Command::Ping,
            Some("stats") => break Command::Stats,
            Some("shutdown") => break Command::Shutdown,
            Some("panic") => break Command::Panic,
            Some("raw") => break Command::Raw(it.next().unwrap_or_else(|| usage())),
            Some("compile") => {
                let kernel = it.next().unwrap_or_else(|| usage());
                let mut arch = None;
                let mut slots = None;
                let mut modulo = None;
                let mut deadline_ms = None;
                let mut out = None;
                while let Some(a) = it.next() {
                    match a.as_str() {
                        "--arch" => arch = Some(it.next().unwrap_or_else(|| usage())),
                        "--slots" => {
                            slots = Some(
                                it.next()
                                    .and_then(|v| v.parse().ok())
                                    .unwrap_or_else(|| usage()),
                            )
                        }
                        "--modulo" => {
                            let incl = it.peek().map(String::as_str) == Some("incl");
                            if incl {
                                it.next();
                            }
                            modulo = Some(incl);
                        }
                        "--deadline-ms" => {
                            deadline_ms = Some(
                                it.next()
                                    .and_then(|v| v.parse().ok())
                                    .unwrap_or_else(|| usage()),
                            )
                        }
                        "--out" => out = Some(it.next().unwrap_or_else(|| usage())),
                        other => {
                            eprintln!("eit_client: unrecognized argument '{other}'");
                            usage();
                        }
                    }
                }
                break Command::Compile {
                    kernel,
                    arch,
                    slots,
                    modulo,
                    deadline_ms,
                    out,
                };
            }
            Some(other) => {
                eprintln!("eit_client: unrecognized argument '{other}'");
                usage();
            }
            None => usage(),
        }
    };
    if it.next().is_some() {
        usage();
    }
    Args {
        addr,
        retry,
        command,
    }
}

fn connect(addr: &str, retry: u32) -> TcpStream {
    let mut last = None;
    for attempt in 0..retry {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(200));
        }
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(e) => last = Some(e),
        }
    }
    eprintln!(
        "eit_client: cannot connect to {addr} after {retry} attempt(s): {}",
        last.map_or_else(|| "?".into(), |e| e.to_string())
    );
    exit(1);
}

fn request_line(cmd: &Command) -> String {
    let mut members = vec![
        ("v".to_string(), Json::str("eit-serve/1")),
        ("id".to_string(), Json::str("cli")),
    ];
    match cmd {
        Command::Ping => members.push(("op".into(), Json::str("ping"))),
        Command::Stats => members.push(("op".into(), Json::str("stats"))),
        Command::Shutdown => members.push(("op".into(), Json::str("shutdown"))),
        Command::Panic => members.push(("op".into(), Json::str("panic"))),
        Command::Raw(line) => return line.clone(),
        Command::Compile {
            kernel,
            arch,
            slots,
            modulo,
            deadline_ms,
            ..
        } => {
            members.push(("op".into(), Json::str("compile")));
            if kernel.ends_with(".xml") {
                let xml = std::fs::read_to_string(kernel).unwrap_or_else(|e| {
                    eprintln!("eit_client: cannot read {kernel}: {e}");
                    exit(1);
                });
                members.push(("xml".into(), Json::str(xml)));
            } else {
                members.push(("kernel".into(), Json::str(kernel.clone())));
            }
            if let Some(a) = arch {
                // A path to an arch file is read here and shipped inline;
                // preset names and inline XML pass through untouched. The
                // wire format only ever carries presets or XML.
                let value = if std::path::Path::new(a).exists() {
                    std::fs::read_to_string(a).unwrap_or_else(|e| {
                        eprintln!("eit_client: cannot read {a}: {e}");
                        exit(1);
                    })
                } else {
                    a.clone()
                };
                members.push(("arch".into(), Json::str(value)));
            }
            if let Some(n) = slots {
                members.push(("slots".into(), Json::int(*n)));
            }
            if let Some(incl) = modulo {
                members.push(("mode".into(), Json::str("modulo")));
                if *incl {
                    members.push(("include_reconfig".into(), Json::Bool(true)));
                }
            }
            if let Some(ms) = deadline_ms {
                members.push(("deadline_ms".into(), Json::int(*ms)));
            }
        }
    }
    Json::Obj(members).render_compact()
}

fn main() {
    let args = parse_args();
    let stream = connect(&args.addr, args.retry);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(600)));
    let mut writer = stream.try_clone().unwrap_or_else(|e| {
        eprintln!("eit_client: {e}");
        exit(1);
    });
    let mut reader = BufReader::new(stream);
    let line = request_line(&args.command);
    if writer
        .write_all(format!("{line}\n").as_bytes())
        .and_then(|()| writer.flush())
        .is_err()
    {
        eprintln!("eit_client: connection lost while sending");
        exit(1);
    }
    let mut resp = String::new();
    match reader.read_line(&mut resp) {
        Ok(0) => {
            eprintln!("eit_client: server closed the connection without responding");
            exit(1);
        }
        Ok(_) => {}
        Err(e) => {
            eprintln!("eit_client: {e}");
            exit(1);
        }
    }
    print!("{resp}");
    if let Command::Compile {
        out: Some(path), ..
    } = &args.command
    {
        match Json::parse(resp.trim_end())
            .ok()
            .as_ref()
            .and_then(|d| d.get("listing"))
            .and_then(Json::as_str)
        {
            Some(listing) => {
                if let Err(e) = std::fs::write(path, listing) {
                    eprintln!("eit_client: cannot write {path}: {e}");
                    exit(1);
                }
            }
            None => {
                eprintln!("eit_client: response carries no listing; {path} not written");
                exit(1);
            }
        }
    }
}
