//! Extension experiment: steady-state memory allocation for modulo
//! schedules. The paper assumes sufficient memory ("allocation boils down
//! to repeating … with a certain offset"); this harness *solves* the
//! steady-state allocation (N in-flight iterations at the issue II) with
//! the full constraint model and reports the real slot footprint.
//!
//! Run: `cargo run --release -p eit-bench --bin modulo_memory [--arch A]`

use eit_arch::validate_structure;
use eit_bench::{arch_arg, prepared, rule};
use eit_core::{
    allocate_modulo_memory, ii_lower_bound, modulo_schedule, schedule_at_ii, IiOutcome,
    ModuloOptions, ModuloResult,
};
use std::collections::HashMap;
use std::time::Duration;

fn main() {
    println!("Steady-state memory footprint of modulo schedules (4 in-flight iterations)");
    rule(86);
    println!(
        "{:>10} {:>8} {:>10} {:>14} {:>14} {:>12}",
        "kernel", "II", "#v_data×4", "slots used", "of available", "valid"
    );
    rule(86);
    let arch = arch_arg();
    for name in ["qrd", "arf", "matmul", "fir"] {
        let p = prepared(name);
        let spec = arch.clone();
        let Some(r) = modulo_schedule(
            &p.graph,
            &spec,
            &ModuloOptions {
                timeout_per_ii: Duration::from_secs(30),
                total_timeout: Duration::from_secs(120),
                ..Default::default()
            },
        ) else {
            println!("{name:>10}: no modulo schedule");
            continue;
        };
        match allocate_modulo_memory(&p.graph, &spec, &r, 4) {
            Some((big, sched)) => {
                let v = validate_structure(&big, &spec, &sched);
                println!(
                    "{:>10} {:>8} {:>10} {:>14} {:>14} {:>12}",
                    name,
                    r.ii_issue,
                    big.count(eit_ir::Category::VectorData),
                    sched.slots_used(&big),
                    spec.n_slots(),
                    if v.is_empty() { "yes" } else { "NO" },
                );
            }
            None => {
                // The lane-bound II does not fit in memory: sweep II
                // upward to the *memory-bound* II (extension result: for
                // deep serial kernels the vector memory, not the lanes,
                // limits the initiation interval).
                let spec2 = spec;
                let lb = ii_lower_bound(&p.graph, &spec2);
                let mut found = None;
                for ii in (r.ii_issue + 1)..=(lb + 64) {
                    let IiOutcome::Feasible(t, k, s) =
                        schedule_at_ii(&p.graph, &spec2, ii, false, Duration::from_secs(10))
                    else {
                        continue;
                    };
                    let t: HashMap<_, _> = t;
                    let switches = eit_core::modulo::count_window_switches(&p.graph, &t);
                    let rr = ModuloResult {
                        ii_issue: ii,
                        switches,
                        actual_ii: ii + switches as i32 * spec2.reconfig_cost,
                        throughput: 1.0 / (ii + switches as i32) as f64,
                        t,
                        k,
                        s,
                        opt_time: Duration::ZERO,
                        timed_out: false,
                        probes: Vec::new(),
                        jobs: 1,
                        backend: "cp",
                        sat: None,
                    };
                    if let Some((big, sched)) = allocate_modulo_memory(&p.graph, &spec2, &rr, 4) {
                        let v = validate_structure(&big, &spec2, &sched);
                        found = Some((ii, sched.slots_used(&big), v.is_empty()));
                        break;
                    }
                }
                match found {
                    Some((ii, used, ok)) => println!(
                        "{:>10} {:>8} {:>10} {:>14} {:>14} {:>12}",
                        format!("{name}*"),
                        ii,
                        "-",
                        used,
                        spec2.n_slots(),
                        if ok { "yes" } else { "NO" },
                    ),
                    None => println!(
                        "{name:>10} {:>8} — lane-bound II infeasible in memory; none found ≤ {}",
                        r.ii_issue,
                        lb + 64
                    ),
                }
            }
        }
    }
    rule(86);
    println!("* = II raised above the lane bound until the steady state fits the memory");
}
