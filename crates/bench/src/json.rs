//! Re-export of the toolchain JSON value.
//!
//! The implementation moved to [`eit_core::json`] so the `eit-serve`
//! daemon can speak the same JSON (JSONL protocol, aggregated metrics)
//! without depending on the benchmark harness. Existing
//! `eit_bench::json::Json` / `eit_bench::Json` paths keep working.

pub use eit_core::json::*;
