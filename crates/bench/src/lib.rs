//! # eit-bench — experiment harness
//!
//! Shared plumbing for the table-regeneration binaries (`table1`,
//! `table2`, `table3`, `figures`) and the Criterion benches. Each binary
//! prints the same rows as the corresponding table in the paper, side by
//! side with the paper's published numbers, and EXPERIMENTS.md records a
//! captured run.

pub mod json;
pub mod metrics;

pub use json::Json;
pub use metrics::RunMetrics;

use eit_arch::ArchSpec;
use eit_ir::{merge_pipeline_ops, Graph, LatencyModel};

/// A kernel prepared for scheduling: DSL-built, merge pass applied.
pub struct Prepared {
    pub name: &'static str,
    pub graph: Graph,
    pub kernel: eit_apps::Kernel,
}

/// Build and merge a kernel by name (panics on unknown names — harness
/// binaries own their inputs).
pub fn prepared(name: &str) -> Prepared {
    let kernel = eit_apps::by_name(name).unwrap_or_else(|| panic!("unknown kernel {name}"));
    let mut graph = kernel.graph.clone();
    merge_pipeline_ops(&mut graph);
    Prepared {
        name: kernel.name,
        graph,
        kernel,
    }
}

/// The paper's `|V|, |E|, |Cr.P|` triple for a graph.
pub fn graph_props(g: &Graph) -> (usize, usize, i32) {
    let lm = LatencyModel::default();
    let cp = g.critical_path(&lm.of(g));
    (g.len(), g.edge_count(), cp)
}

/// The default EIT machine.
pub fn eit() -> ArchSpec {
    ArchSpec::eit()
}

/// Resolve an `--arch` value the way every harness binary does: a value
/// naming an existing file is read and parsed as `eit-arch/1` XML;
/// anything else is a preset name or inline XML. Exits with a message on
/// any error — the description never reaches a scheduler unvalidated.
pub fn resolve_arch_value(v: &str) -> ArchSpec {
    let resolved = if std::path::Path::new(v).exists() {
        match std::fs::read_to_string(v) {
            Ok(src) => eit_arch::from_arch_xml(&src).map_err(|e| format!("{v}: {e}")),
            Err(e) => Err(format!("cannot read {v}: {e}")),
        }
    } else {
        eit_arch::resolve_arch(v)
    };
    resolved.unwrap_or_else(|e| {
        eprintln!("--arch: {e}");
        std::process::exit(2);
    })
}

/// `--arch PRESET|FILE` support for the table binaries: the resolved
/// target machine when the flag is present, the EIT preset otherwise.
pub fn arch_arg() -> ArchSpec {
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--arch" {
            let v = it.next().unwrap_or_else(|| {
                eprintln!("--arch needs a preset name, file path, or inline XML");
                std::process::exit(2);
            });
            return resolve_arch_value(&v);
        }
    }
    ArchSpec::eit()
}

/// Print a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// `--metrics FILE` support for the table binaries: the target path when
/// the flag is present on the command line.
pub fn metrics_arg() -> Option<String> {
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--metrics" {
            return Some(it.next().unwrap_or_else(|| {
                eprintln!("--metrics needs a file path");
                std::process::exit(2);
            }));
        }
    }
    None
}

/// Write `metrics` to `path`, exiting with a message on failure.
pub fn write_metrics(metrics: &RunMetrics, path: &str) {
    if let Err(e) = metrics.write_to(path) {
        eprintln!("cannot write metrics to {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("; metrics written to {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_kernels_are_valid() {
        for name in ["qrd", "arf", "matmul"] {
            let p = prepared(name);
            p.graph.validate().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "unknown kernel")]
    fn unknown_kernel_panics() {
        prepared("nope");
    }
}
