//! Criterion bench for Table 3: modulo scheduling (both reconfiguration
//! models) for QRD, ARF and MATMUL — the paper's "optimization time"
//! column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eit_bench::{eit, prepared};
use eit_core::{modulo_schedule, ModuloOptions};
use std::time::Duration;

fn bench_table3(c: &mut Criterion) {
    let spec = eit();
    for name in ["qrd", "arf", "matmul"] {
        let p = prepared(name);
        let mut group = c.benchmark_group(format!("table3/{name}"));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("excl_reconfig", name), &(), |b, _| {
            b.iter(|| {
                modulo_schedule(
                    &p.graph,
                    &spec,
                    &ModuloOptions {
                        timeout_per_ii: Duration::from_secs(30),
                        total_timeout: Duration::from_secs(120),
                        ..Default::default()
                    },
                )
                .map(|r| r.actual_ii)
            })
        });
        group.bench_with_input(BenchmarkId::new("incl_reconfig", name), &(), |b, _| {
            b.iter(|| {
                modulo_schedule(
                    &p.graph,
                    &spec,
                    &ModuloOptions {
                        include_reconfig: true,
                        timeout_per_ii: Duration::from_secs(30),
                        total_timeout: Duration::from_secs(120),
                        ..Default::default()
                    },
                )
                .map(|r| r.actual_ii)
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
