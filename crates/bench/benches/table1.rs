//! Criterion bench for Table 1: QRD scheduling with memory allocation
//! across slot budgets (the work the paper's "opt. time" column measures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eit_arch::ArchSpec;
use eit_bench::prepared;
use eit_core::{schedule, SchedulerOptions};
use std::time::Duration;

fn bench_table1(c: &mut Criterion) {
    let p = prepared("qrd");
    let mut group = c.benchmark_group("table1/qrd_schedule");
    group.sample_size(10);
    for slots in [64u32, 32, 16, 10, 8] {
        let spec = ArchSpec::eit().with_slots(slots);
        group.bench_with_input(BenchmarkId::from_parameter(slots), &slots, |b, _| {
            b.iter(|| {
                let r = schedule(
                    &p.graph,
                    &spec,
                    &SchedulerOptions {
                        timeout: Some(Duration::from_secs(60)),
                        ..Default::default()
                    },
                );
                assert!(r.schedule.is_some());
                r.makespan
            })
        });
    }
    group.finish();

    // The infeasibility proof below the live-set floor.
    c.bench_function("table1/qrd_infeasible_7_slots", |b| {
        let spec = ArchSpec::eit().with_slots(7);
        b.iter(|| {
            let r = schedule(
                &p.graph,
                &spec,
                &SchedulerOptions {
                    timeout: Some(Duration::from_secs(60)),
                    ..Default::default()
                },
            );
            assert!(r.schedule.is_none());
        })
    });
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
