//! Micro-benchmarks of the CP solver substrate: domain operations,
//! propagation fixpoints, the two global constraints, and end-to-end
//! search on synthetic kernels of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eit_apps::synth::{build, SynthParams};
use eit_arch::ArchSpec;
use eit_core::modulo::{allocate_modulo_memory_with, AllocOptions, AllocOutcome};
use eit_core::{modulo_schedule, schedule, ModuloOptions, SchedulerOptions};
use eit_cp::props::cumulative::CumTask;
use eit_cp::props::diff2::Rect;
use eit_cp::{Domain, Model, Phase, SearchConfig, ValSel, VarSel};
use std::time::Duration;

fn bench_domain(c: &mut Criterion) {
    c.bench_function("solver/domain_remove_middle", |b| {
        b.iter(|| {
            let mut d = Domain::interval(0, 999);
            for v in (100..900).step_by(7) {
                d.remove_value(v);
            }
            d.size()
        })
    });
    // The hybrid representation's raison d'être: on a span-128 domain
    // (every start/slot variable under a realistic horizon) the bitset
    // path does `remove_value` and `contains` as word ops where the
    // pinned interval list splits and scans runs. Same op stream, same
    // observable results — only the representation differs.
    for (name, pin) in [("bitset", false), ("interval", true)] {
        c.bench_function(&format!("solver/domain_small_ops_{name}"), |b| {
            b.iter(|| {
                let mut d = Domain::interval(0, 127);
                if pin {
                    d.pin();
                }
                let mut member = 0u32;
                for v in (0..128).step_by(3) {
                    d.remove_value(v);
                }
                for v in 0..128 {
                    member += d.contains(v) as u32;
                }
                (d.size(), member)
            })
        });
    }
    c.bench_function("solver/domain_intersect_holey", |b| {
        let a = Domain::from_values((0..1000).filter(|v| v % 3 != 0));
        let bd = Domain::from_values((0..1000).filter(|v| v % 5 != 0));
        b.iter(|| {
            let mut x = a.clone();
            x.intersect(&bd);
            x.size()
        })
    });
}

fn bench_propagation(c: &mut Criterion) {
    c.bench_function("solver/cumulative_fixpoint_100_tasks", |b| {
        b.iter(|| {
            let mut m = Model::new();
            let tasks: Vec<CumTask> = (0..100)
                .map(|_| CumTask {
                    start: m.new_var(0, 200),
                    dur: 2,
                    req: 1,
                })
                .collect();
            m.cumulative(tasks, 4);
            assert!(eit_cp::search::propagate_root(&mut m));
        })
    });
    c.bench_function("solver/diff2_fixpoint_50_rects", |b| {
        b.iter(|| {
            let mut m = Model::new();
            let one = m.new_const(1);
            let rects: Vec<Rect> = (0..50)
                .map(|_| {
                    let x = m.new_var(0, 100);
                    let y = m.new_var(0, 15);
                    let l = m.new_var(1, 20);
                    Rect {
                        origin: [x, y],
                        len: [l, one],
                    }
                })
                .collect();
            m.diff2(rects);
            assert!(eit_cp::search::propagate_root(&mut m));
        })
    });
}

fn bench_synthetic_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/synthetic_schedule");
    group.sample_size(10);
    for (layers, width) in [(2usize, 4usize), (4, 6), (6, 8)] {
        let k = build(SynthParams {
            layers,
            width,
            seed: 7,
            ..Default::default()
        });
        let mut g = k.graph.clone();
        eit_ir::merge_pipeline_ops(&mut g);
        let n = g.len();
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, _| {
            b.iter(|| {
                let r = schedule(
                    &g,
                    &ArchSpec::eit(),
                    &SchedulerOptions {
                        timeout: Some(Duration::from_secs(30)),
                        ..Default::default()
                    },
                );
                r.makespan
            })
        });
    }
    group.finish();
}

fn bench_engine_ab(c: &mut Criterion) {
    // Event-driven tiered engine vs the legacy single-queue FIFO
    // scheduler on the same synthetic scheduling instance. Both reach
    // the identical makespan (the differential suite proves tree
    // equality); the comparison isolates what mask filtering,
    // idempotence skips and incremental wakes buy in wall clock.
    let k = build(SynthParams {
        layers: 4,
        width: 6,
        seed: 7,
        ..Default::default()
    });
    let mut g = k.graph.clone();
    eit_ir::merge_pipeline_ops(&mut g);
    let mut group = c.benchmark_group("solver/engine_ab");
    group.sample_size(10);
    for (name, fifo) in [("event", false), ("fifo", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = schedule(
                    &g,
                    &ArchSpec::eit(),
                    &SchedulerOptions {
                        timeout: Some(Duration::from_secs(30)),
                        fifo_engine: fifo,
                        ..Default::default()
                    },
                );
                r.makespan
            })
        });
    }
    group.finish();
}

fn bench_search_heuristics(c: &mut Criterion) {
    // N-ary all-different-style packing via cumulative, comparing value
    // selection strategies on the same model.
    for val in [ValSel::Min, ValSel::Split] {
        c.bench_function(&format!("solver/packing_valsel_{:?}", val), |b| {
            b.iter(|| {
                let mut m = Model::new();
                let vars: Vec<_> = (0..24).map(|_| m.new_var(0, 11)).collect();
                m.cumulative(
                    vars.iter()
                        .map(|&v| CumTask {
                            start: v,
                            dur: 1,
                            req: 1,
                        })
                        .collect(),
                    2,
                );
                let cfg = SearchConfig {
                    phases: vec![Phase::new(vars, VarSel::FirstFail, val)],
                    ..Default::default()
                };
                let r = eit_cp::solve(&mut m, &cfg);
                assert!(r.is_sat());
            })
        });
    }
}

fn bench_parallel_ab(c: &mut Criterion) {
    // Sequential vs `--jobs 4` on QRD with reconfigurations modelled.
    //
    // Two shapes. `sweep_*` is the speculative II sweep itself: QRD's
    // lower bound is tight (II = 22 is feasible on the first probe), so
    // parallelism can only add thread-spawn overhead there — the pair
    // documents that the sweep's parallel mode costs little when there is
    // nothing to overlap. `alloc_*` is where the cores pay off: the
    // steady-state memory allocation at a 39-slot budget sits right on
    // the CSP phase transition — a sequential dive thrashes for over a
    // minute, while EPS hands one of the ~120 decision-prefix subtrees to
    // each worker and first-SAT racing returns a valid allocation in
    // ~100 ms. The sequential side is budget-capped at 2 s to keep the
    // bench finite, so the measured ratio (~20×) is a *lower bound* on
    // the true speedup; the acceptance bar is 2×.
    let k = eit_apps::by_name("qrd").expect("built-in kernel");
    let mut g = k.graph.clone();
    eit_ir::merge_pipeline_ops(&mut g);
    let mopts = |jobs| ModuloOptions {
        include_reconfig: true,
        jobs,
        ..Default::default()
    };
    let modulo = modulo_schedule(&g, &ArchSpec::eit(), &mopts(1)).expect("qrd incl pipelines");
    let spec = ArchSpec::eit().with_slots(39);

    let mut group = c.benchmark_group("solver/parallel_ab");
    group.sample_size(10);
    for (name, jobs) in [("sweep_seq", 1usize), ("sweep_jobs4", 4)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = modulo_schedule(&g, &ArchSpec::eit(), &mopts(jobs)).unwrap();
                assert_eq!(r.ii_issue, modulo.ii_issue);
                r.actual_ii
            })
        });
    }
    for (name, jobs, race) in [
        ("alloc_seq_2s_cap", 1usize, false),
        ("alloc_eps_jobs4", 4, true),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = allocate_modulo_memory_with(
                    &g,
                    &spec,
                    &modulo,
                    4,
                    &AllocOptions {
                        timeout: Duration::from_secs(2),
                        jobs,
                        race,
                        ..Default::default()
                    },
                );
                if jobs > 1 {
                    assert!(
                        matches!(out, AllocOutcome::Allocated(..)),
                        "EPS should crack the 39-slot allocation within budget"
                    );
                }
                matches!(out, AllocOutcome::Allocated(..))
            })
        });
    }
    group.finish();
}

fn bench_restart_ab(c: &mut Criterion) {
    // Restarts + nogood recording on the same phase-transition instance
    // the EPS bench uses: QRD's steady-state memory allocation at a
    // 39-slot budget. A plain sequential dive commits to a bad prefix
    // and thrashes until the 2 s cap; geometric restarts abandon the
    // prefix, the recorded nogoods stop the next dive from re-entering
    // it, and the single-threaded search finds a valid allocation well
    // inside the budget. This is the CP-native analogue of the clause
    // learning the SAT-based modulo schedulers lean on.
    let k = eit_apps::by_name("qrd").expect("built-in kernel");
    let mut g = k.graph.clone();
    eit_ir::merge_pipeline_ops(&mut g);
    let modulo = modulo_schedule(
        &g,
        &ArchSpec::eit(),
        &ModuloOptions {
            include_reconfig: true,
            ..Default::default()
        },
    )
    .expect("qrd incl pipelines");
    let spec = ArchSpec::eit().with_slots(39);

    let mut group = c.benchmark_group("solver/restart_ab");
    group.sample_size(10);
    for (name, restarts) in [
        ("alloc_plain_2s_cap", None),
        (
            "alloc_restarts_nogoods",
            Some(eit_cp::RestartConfig::default()),
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = allocate_modulo_memory_with(
                    &g,
                    &spec,
                    &modulo,
                    4,
                    &AllocOptions {
                        timeout: Duration::from_secs(2),
                        jobs: 1,
                        restarts,
                        ..Default::default()
                    },
                );
                if restarts.is_some() {
                    assert!(
                        matches!(out, AllocOutcome::Allocated(..)),
                        "restarts+nogoods should crack the 39-slot allocation within budget"
                    );
                }
                matches!(out, AllocOutcome::Allocated(..))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_domain,
    bench_propagation,
    bench_synthetic_scaling,
    bench_engine_ab,
    bench_search_heuristics,
    bench_parallel_ab,
    bench_restart_ab
);
criterion_main!(benches);
