//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - the fig. 6 merge pass on/off (node count and schedule quality);
//! - restart-based vs chronological branch-and-bound;
//! - the three-phase search vs a single first-fail phase.

use criterion::{criterion_group, criterion_main, Criterion};
use eit_arch::ArchSpec;
use eit_bench::prepared;
use eit_core::{build_model, schedule, SchedulerOptions};
use eit_cp::{minimize, Phase, SearchConfig, ValSel, VarSel};
use std::time::Duration;

fn bench_merge_pass(c: &mut Criterion) {
    // The QRD kernel has no foldable chains (its DSL form is already
    // core-op-dense), so ablate on a pre/post-heavy synthetic kernel.
    use eit_dsl::Ctx;
    let build_chainy = || {
        let ctx = Ctx::new("chainy");
        let mut prev = ctx.vector([1.0, 2.0, 3.0, 4.0]);
        let b = ctx.vector([2.0, 2.0, 2.0, 2.0]);
        for _ in 0..6 {
            let h = prev.hermitian();
            let m = h.v_mul(&b);
            prev = m.sort();
        }
        ctx.finish()
    };
    c.bench_function("ablation/merge_pass_off", |b| {
        b.iter(|| {
            let g = build_chainy();
            let r = schedule(
                &g,
                &ArchSpec::eit(),
                &SchedulerOptions {
                    timeout: Some(Duration::from_secs(30)),
                    ..Default::default()
                },
            );
            r.makespan.unwrap()
        })
    });
    c.bench_function("ablation/merge_pass_on", |b| {
        b.iter(|| {
            let mut g = build_chainy();
            eit_ir::merge_pipeline_ops(&mut g);
            let r = schedule(
                &g,
                &ArchSpec::eit(),
                &SchedulerOptions {
                    timeout: Some(Duration::from_secs(30)),
                    ..Default::default()
                },
            );
            r.makespan.unwrap()
        })
    });
}

fn bench_restart_bnb(c: &mut Criterion) {
    let p = prepared("qrd");
    let spec = ArchSpec::eit();
    let mut group = c.benchmark_group("ablation/bnb");
    group.sample_size(10);
    for restart in [true, false] {
        group.bench_function(format!("restart_{restart}"), |b| {
            b.iter(|| {
                let mut built = build_model(&p.graph, &spec, &SchedulerOptions::default());
                let cfg = SearchConfig {
                    phases: built.phases.clone(),
                    timeout: Some(Duration::from_secs(5)),
                    restart_on_solution: restart,
                    // Chronological BnB needs caps to terminate in bench
                    // time; the meaningful comparison is nodes-to-best
                    // (restart: ~100 nodes to the optimum; chronological:
                    // exhausts the cap without matching it).
                    node_limit: Some(20_000),
                    ..Default::default()
                };
                let r = minimize(&mut built.model, built.objective, &cfg);
                (r.objective, r.stats.nodes)
            })
        });
    }
    group.finish();
}

fn bench_phased_search(c: &mut Criterion) {
    let p = prepared("qrd");
    let spec = ArchSpec::eit();
    let mut group = c.benchmark_group("ablation/phases");
    group.sample_size(10);
    group.bench_function("three_phase", |b| {
        b.iter(|| {
            let mut built = build_model(&p.graph, &spec, &SchedulerOptions::default());
            let cfg = SearchConfig {
                phases: built.phases.clone(),
                timeout: Some(Duration::from_secs(20)),
                restart_on_solution: true,
                ..Default::default()
            };
            minimize(&mut built.model, built.objective, &cfg).objective
        })
    });
    group.bench_function("single_phase_first_fail", |b| {
        b.iter(|| {
            let mut built = build_model(&p.graph, &spec, &SchedulerOptions::default());
            let all: Vec<_> = built.phases.iter().flat_map(|p| p.vars.clone()).collect();
            let cfg = SearchConfig {
                phases: vec![Phase::new(all, VarSel::FirstFail, ValSel::Min)],
                timeout: Some(Duration::from_secs(5)),
                restart_on_solution: true,
                node_limit: Some(20_000),
                ..Default::default()
            };
            minimize(&mut built.model, built.objective, &cfg).objective
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_merge_pass,
    bench_restart_bnb,
    bench_phased_search
);
criterion_main!(benches);
