//! Observability and scheduler bookkeeping must be (nearly) free.
//!
//! Two pins on the end-to-end QRD solve:
//!
//! - **Tracing off vs [`NullSink`]**: the null-sink run must stay within
//!   noise (<2 %) of the untraced run — the emit path behind a disabled
//!   handle is one branch, and behind a null handle one virtual call per
//!   event. The untraced run includes the event engine's full queue
//!   bookkeeping (event log draining, mask tests, tier queues, tag
//!   delivery), so this budget also pins that bookkeeping.
//! - **Event engine vs FIFO baseline**: the same solve under the legacy
//!   single-queue scheduler (`SchedulerOptions::fifo_engine`). The event
//!   engine reaches the identical schedule with ~73 % fewer propagator
//!   invocations on QRD, so it must not be slower end-to-end.

use criterion::{criterion_group, criterion_main, Criterion};
use eit_arch::ArchSpec;
use eit_bench::prepared;
use eit_core::{schedule, SchedulerOptions};
use eit_cp::{NullSink, TraceHandle};
use std::time::Duration;

fn solve_qrd(trace: Option<TraceHandle>, fifo_engine: bool) -> i32 {
    let p = prepared("qrd");
    let r = schedule(
        &p.graph,
        &ArchSpec::eit(),
        &SchedulerOptions {
            timeout: Some(Duration::from_secs(60)),
            trace,
            fifo_engine,
            ..Default::default()
        },
    );
    r.makespan.expect("QRD must schedule")
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(20);
    g.bench_function("solve_qrd/no_sink", |b| b.iter(|| solve_qrd(None, false)));
    g.bench_function("solve_qrd/null_sink", |b| {
        b.iter(|| solve_qrd(Some(TraceHandle::new(NullSink)), false))
    });
    g.bench_function("solve_qrd/fifo_baseline", |b| {
        b.iter(|| solve_qrd(None, true))
    });
    g.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
