//! Tracing-off must be free: solving QRD with no sink attached vs a
//! [`NullSink`] that receives (and drops) every event. The acceptance
//! bar is that the null-sink run stays within noise (<2 %) of the
//! untraced run — the emit path behind a disabled handle is one branch,
//! and behind a null handle one virtual call per event.

use criterion::{criterion_group, criterion_main, Criterion};
use eit_arch::ArchSpec;
use eit_bench::prepared;
use eit_core::{schedule, SchedulerOptions};
use eit_cp::{NullSink, TraceHandle};
use std::time::Duration;

fn solve_qrd(trace: Option<TraceHandle>) -> i32 {
    let p = prepared("qrd");
    let r = schedule(
        &p.graph,
        &ArchSpec::eit(),
        &SchedulerOptions {
            timeout: Some(Duration::from_secs(60)),
            trace,
            ..Default::default()
        },
    );
    r.makespan.expect("QRD must schedule")
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(20);
    g.bench_function("solve_qrd/no_sink", |b| b.iter(|| solve_qrd(None)));
    g.bench_function("solve_qrd/null_sink", |b| {
        b.iter(|| solve_qrd(Some(TraceHandle::new(NullSink))))
    });
    g.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
