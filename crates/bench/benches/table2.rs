//! Criterion bench for Table 2: the overlapped-execution transform for
//! 12 QRD iterations, manual-style and automated bundle sources.

use criterion::{criterion_group, criterion_main, Criterion};
use eit_bench::{eit, prepared};
use eit_core::{
    bundles_from_schedule, manual_style_bundles, overlapped_execution, schedule, SchedulerOptions,
};
use std::time::Duration;

fn bench_table2(c: &mut Criterion) {
    let p = prepared("qrd");
    let spec = eit();
    let m = 12;

    c.bench_function("table2/manual_bundling", |b| {
        b.iter(|| manual_style_bundles(&p.graph, &spec).len())
    });

    let manual = manual_style_bundles(&p.graph, &spec);
    c.bench_function("table2/overlap_manual_x12", |b| {
        b.iter(|| overlapped_execution(&p.graph, &spec, &manual, m).makespan)
    });

    let r = schedule(
        &p.graph,
        &spec,
        &SchedulerOptions {
            timeout: Some(Duration::from_secs(60)),
            ..Default::default()
        },
    );
    let auto = bundles_from_schedule(&p.graph, &r.schedule.unwrap());
    c.bench_function("table2/overlap_automated_x12", |b| {
        b.iter(|| overlapped_execution(&p.graph, &spec, &auto, m).makespan)
    });
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
