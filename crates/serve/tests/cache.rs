//! Concurrency tests for the single-flight schedule cache: a hot key
//! compiles exactly once no matter how many clients race on it, and an
//! abandoned leader (panic, missed deadline) promotes a waiter instead
//! of wedging the key.

use eit_core::SolveKey;
use eit_serve::{Lease, ScheduleCache};
use std::sync::Arc;
use std::time::Duration;

fn key(n: u64) -> SolveKey {
    SolveKey {
        ir_hash: n,
        arch_hash: 0xbeef,
        config: "mode=schedule;test".into(),
    }
}

#[test]
fn racing_clients_compile_once_and_all_hit() {
    let cache: Arc<ScheduleCache<String>> = Arc::new(ScheduleCache::new(8));
    // Main thread claims leadership before any racer starts.
    let Lease::Miss(guard) = cache.get_or_lease(&key(1)) else {
        panic!("cold cache hit");
    };
    let racers: Vec<_> = (0..8)
        .map(|_| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || match cache.get_or_lease(&key(1)) {
                Lease::Hit(v) => (*v).clone(),
                Lease::Miss(_) => panic!("second leader for an in-flight key"),
            })
        })
        .collect();
    // Let the racers pile up on the condvar, then publish.
    std::thread::sleep(Duration::from_millis(50));
    guard.fulfill("the one schedule".into());
    for r in racers {
        assert_eq!(r.join().unwrap(), "the one schedule");
    }
    let s = cache.stats();
    assert_eq!(s.misses, 1, "exactly one compile leader");
    assert_eq!(s.inserts, 1);
    assert_eq!(s.hits, 8, "every racer served from the single insert");
    assert!(s.waits >= 1, "racers blocked behind the in-flight leader");
}

#[test]
fn abandoned_leader_promotes_exactly_one_waiter() {
    let cache: Arc<ScheduleCache<String>> = Arc::new(ScheduleCache::new(8));
    let Lease::Miss(guard) = cache.get_or_lease(&key(2)) else {
        panic!("cold cache hit");
    };
    let racers: Vec<_> = (0..4)
        .map(|_| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || match cache.get_or_lease(&key(2)) {
                // The promoted waiter finishes the job.
                Lease::Miss(g) => {
                    g.fulfill("recovered".into());
                    true
                }
                Lease::Hit(v) => {
                    assert_eq!(*v, "recovered");
                    false
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    drop(guard); // leader "panics" without fulfilling
    let promoted = racers
        .into_iter()
        .map(|r| r.join().unwrap())
        .filter(|&was_leader| was_leader)
        .count();
    assert_eq!(promoted, 1, "exactly one waiter became the new leader");
    let s = cache.stats();
    assert_eq!(s.misses, 2, "original leader + promoted waiter");
    assert_eq!(s.inserts, 1);
}
