//! End-to-end daemon tests over real TCP on a loopback port.
//!
//! The headline test drives the acceptance scenario from the issue in
//! ONE server session: a malformed request, a deliberately panicking
//! solve, and a deadline-missed request all come back as structured
//! responses — and the server keeps serving afterwards, including a
//! cache hit that is byte-identical to the cold compile.

use eit_core::json::Json;
use eit_serve::{ServeOptions, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// One client connection speaking `eit-serve/1`.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(srv: &Server) -> Client {
        let stream = TcpStream::connect(srv.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// Send one raw line, read one response line, parse it.
    fn roundtrip(&mut self, line: &str) -> Json {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read response");
        assert!(resp.ends_with('\n'), "response is a complete line");
        Json::parse(resp.trim_end()).expect("response parses")
    }

    fn request(&mut self, members: Vec<(&str, Json)>) -> Json {
        let obj = Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        );
        self.roundtrip(&obj.render_compact())
    }
}

fn status(resp: &Json) -> &str {
    resp.get("status").and_then(Json::as_str).unwrap_or("?")
}

fn error_kind(resp: &Json) -> &str {
    resp.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or("?")
}

/// A tiny kernel as inline XML — small enough to solve in milliseconds
/// even in debug builds.
fn tiny_xml() -> String {
    let ctx = eit_dsl::Ctx::new("tiny");
    let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
    let b = ctx.vector([2.0, 3.0, 4.0, 5.0]);
    let _ = a.v_add(&b).v_dotp(&b).sqrt();
    eit_ir::to_xml(&ctx.finish())
}

#[test]
fn one_session_survives_malformed_panic_and_deadline() {
    let srv = Server::start(ServeOptions::default()).expect("start server");
    let mut c = Client::connect(&srv);

    // 1. Malformed line: structured bad-request, connection stays up.
    let resp = c.roundtrip("this is not json");
    assert_eq!(status(&resp), "error");
    assert_eq!(error_kind(&resp), "bad-request");
    // Unknown kernels and bad fields are bad-requests too, with the id
    // echoed for correlation.
    let resp = c.request(vec![
        ("id", Json::str("k404")),
        ("op", Json::str("compile")),
        ("kernel", Json::str("no-such-kernel")),
    ]);
    assert_eq!(status(&resp), "error");
    assert_eq!(error_kind(&resp), "bad-request");
    assert_eq!(resp.get("id").and_then(Json::as_str), Some("k404"));

    // 2. A panicking solve: contained, structured, server stays up.
    let resp = c.request(vec![("id", Json::str("boom")), ("op", Json::str("panic"))]);
    assert_eq!(status(&resp), "error");
    assert_eq!(error_kind(&resp), "panic");

    // 3. A deadline-missed request: deadline_ms 0 has already expired
    //    by the time a worker picks it up, deterministically.
    let resp = c.request(vec![
        ("id", Json::str("late")),
        ("op", Json::str("compile")),
        ("xml", Json::str(tiny_xml())),
        ("deadline_ms", Json::int(0)),
    ]);
    assert_eq!(status(&resp), "deadline");
    assert_eq!(resp.get("stage").and_then(Json::as_str), Some("queue"));

    // 4. The same server still compiles: cold miss, then a hit that is
    //    byte-identical to the cold listing.
    let cold = c.request(vec![
        ("id", Json::str("c1")),
        ("op", Json::str("compile")),
        ("xml", Json::str(tiny_xml())),
    ]);
    assert_eq!(status(&cold), "ok", "cold compile: {cold:?}");
    assert_eq!(cold.get("cached"), Some(&Json::Bool(false)));
    assert_eq!(cold.get("verified"), Some(&Json::Bool(true)));
    let warm = c.request(vec![
        ("id", Json::str("c2")),
        ("op", Json::str("compile")),
        ("xml", Json::str(tiny_xml())),
    ]);
    assert_eq!(status(&warm), "ok");
    assert_eq!(warm.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(
        cold.get("listing").and_then(Json::as_str),
        warm.get("listing").and_then(Json::as_str),
        "hit is byte-identical to the cold compile"
    );
    assert_eq!(cold.get("address"), warm.get("address"));
    let solve_us = |r: &Json| {
        r.get("timing")
            .and_then(|t| t.get("solve_us"))
            .and_then(Json::as_u64)
            .unwrap()
    };
    assert_eq!(solve_us(&warm), 0, "hits don't touch the solver");

    // 5. The aggregated metrics saw all of it.
    let resp = c.request(vec![("id", Json::str("m")), ("op", Json::str("stats"))]);
    assert_eq!(status(&resp), "ok");
    let serve = resp.get("metrics").and_then(|m| m.get("serve")).unwrap();
    let count = |k: &str| serve.get(k).and_then(Json::as_u64).unwrap();
    assert!(count("bad_requests") >= 2);
    assert_eq!(count("panics_contained"), 1);
    assert_eq!(count("deadline_misses"), 1);
    let cache = serve.get("cache").unwrap();
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));

    // 6. Clean shutdown: acknowledged, and the server joins.
    let resp = c.request(vec![
        ("id", Json::str("bye")),
        ("op", Json::str("shutdown")),
    ]);
    assert_eq!(status(&resp), "ok");
    drop(c);
    srv.join();
}

#[test]
fn concurrent_clients_on_one_key_compile_once() {
    let srv = Arc::new(Server::start(ServeOptions::default()).expect("start server"));
    let xml = tiny_xml();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let srv = Arc::clone(&srv);
            let xml = xml.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&srv);
                let resp = c.request(vec![
                    ("id", Json::str(format!("r{i}"))),
                    ("op", Json::str("compile")),
                    ("xml", Json::str(xml)),
                ]);
                assert_eq!(status(&resp), "ok", "client {i}: {resp:?}");
                resp.get("listing")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string()
            })
        })
        .collect();
    let listings: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        listings.windows(2).all(|w| w[0] == w[1]),
        "all clients got the same bytes"
    );
    let doc = srv.metrics_document();
    let cache = doc.get("serve").and_then(|s| s.get("cache")).unwrap();
    assert_eq!(
        cache.get("inserts").and_then(Json::as_u64),
        Some(1),
        "single-flight: the hot key compiled exactly once"
    );
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(3));

    let mut c = Client::connect(&srv);
    c.request(vec![("op", Json::str("shutdown"))]);
    drop(c);
    Arc::try_unwrap(srv).ok().expect("sole owner").join();
}

#[test]
fn oversized_lines_resync_and_shutting_down_rejects_compiles() {
    let srv = Server::start(ServeOptions {
        max_line_bytes: 1024,
        ..ServeOptions::default()
    })
    .expect("start server");
    let mut c = Client::connect(&srv);
    let huge = format!(r#"{{"op":"compile","xml":"{}"}}"#, "x".repeat(4096));
    let resp = c.roundtrip(&huge);
    assert_eq!(status(&resp), "error");
    assert_eq!(error_kind(&resp), "bad-request");
    // The connection resynced on the newline: the next request works.
    let resp = c.request(vec![("id", Json::str("p")), ("op", Json::str("ping"))]);
    assert_eq!(status(&resp), "ok");

    srv.request_shutdown();
    let resp = c.request(vec![
        ("op", Json::str("compile")),
        ("kernel", Json::str("qrd")),
    ]);
    assert_eq!(status(&resp), "error");
    assert_eq!(error_kind(&resp), "shutting-down");
    drop(c);
    srv.join();
}
