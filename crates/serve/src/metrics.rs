//! Aggregated server-side metrics in the `eit-run-metrics/1` schema.
//!
//! Where the table binaries emit one document per solve, the daemon
//! aggregates across every request it served: outcome counters, queue
//! behavior (depth high-water mark, rejections), deadline misses,
//! contained panics, cache effectiveness, and latency quantiles over
//! both queue and solve time. The document is returned by the `stats`
//! op and optionally written to `--metrics FILE` at shutdown, so CI can
//! assert on cache hit rates with the same tooling it already uses for
//! one-shot runs.

use crate::cache::CacheStats;
use eit_core::json::Json;
use std::sync::Mutex;

/// Matches `eit_bench::metrics::SCHEMA` (serve can't depend on bench —
/// the dependency points the other way).
pub const SCHEMA: &str = "eit-run-metrics/1";

#[derive(Debug, Default)]
struct Counters {
    requests: u64,
    ok: u64,
    errors: u64,
    bad_requests: u64,
    rejected_overload: u64,
    deadline_misses: u64,
    panics_contained: u64,
    queue_depth: u64,
    queue_depth_max: u64,
    queue_us: Vec<u64>,
    solve_us: Vec<u64>,
}

/// Thread-safe aggregation shared by the acceptor, readers, and
/// workers.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    inner: Mutex<Counters>,
}

/// A request's terminal classification, for the outcome counters.
#[derive(Clone, Copy, Debug)]
pub enum Outcome {
    Ok,
    BadRequest,
    Overloaded,
    Deadline,
    Panic,
    OtherError,
}

impl ServerMetrics {
    pub fn record_outcome(&self, outcome: Outcome) {
        let mut c = self.inner.lock().unwrap();
        c.requests += 1;
        match outcome {
            Outcome::Ok => c.ok += 1,
            Outcome::BadRequest => {
                c.errors += 1;
                c.bad_requests += 1;
            }
            Outcome::Overloaded => {
                c.errors += 1;
                c.rejected_overload += 1;
            }
            Outcome::Deadline => c.deadline_misses += 1,
            Outcome::Panic => {
                c.errors += 1;
                c.panics_contained += 1;
            }
            Outcome::OtherError => c.errors += 1,
        }
    }

    /// A compile request entered the admission queue.
    pub fn enqueued(&self) {
        let mut c = self.inner.lock().unwrap();
        c.queue_depth += 1;
        c.queue_depth_max = c.queue_depth_max.max(c.queue_depth);
    }

    /// A worker picked a compile request up after `queue_us` in line.
    pub fn dequeued(&self, queue_us: u64) {
        let mut c = self.inner.lock().unwrap();
        c.queue_depth = c.queue_depth.saturating_sub(1);
        c.queue_us.push(queue_us);
    }

    /// A cold solve finished (hits record no solve time).
    pub fn solved(&self, solve_us: u64) {
        self.inner.lock().unwrap().solve_us.push(solve_us);
    }

    /// Render the aggregated `eit-run-metrics/1` document. `cache` and
    /// `entries` come from the [`ScheduleCache`](crate::cache) at call
    /// time.
    pub fn document(&self, cache: CacheStats, entries: usize) -> Json {
        let c = self.inner.lock().unwrap();
        let lookups = cache.hits + cache.misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            cache.hits as f64 / lookups as f64
        };
        let serve = Json::Obj(vec![
            ("requests".into(), Json::int(c.requests)),
            ("ok".into(), Json::int(c.ok)),
            ("errors".into(), Json::int(c.errors)),
            ("bad_requests".into(), Json::int(c.bad_requests)),
            ("rejected_overload".into(), Json::int(c.rejected_overload)),
            ("deadline_misses".into(), Json::int(c.deadline_misses)),
            ("panics_contained".into(), Json::int(c.panics_contained)),
            ("queue_depth".into(), Json::int(c.queue_depth)),
            ("queue_depth_max".into(), Json::int(c.queue_depth_max)),
            (
                "queue_us_p50".into(),
                Json::int(percentile(&c.queue_us, 50)),
            ),
            (
                "queue_us_p99".into(),
                Json::int(percentile(&c.queue_us, 99)),
            ),
            (
                "solve_us_p50".into(),
                Json::int(percentile(&c.solve_us, 50)),
            ),
            (
                "solve_us_p99".into(),
                Json::int(percentile(&c.solve_us, 99)),
            ),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::int(cache.hits)),
                    ("misses".into(), Json::int(cache.misses)),
                    ("inserts".into(), Json::int(cache.inserts)),
                    ("evictions".into(), Json::int(cache.evictions)),
                    ("waits".into(), Json::int(cache.waits)),
                    ("entries".into(), Json::int(entries as u64)),
                    ("hit_rate".into(), Json::Num(hit_rate)),
                ]),
            ),
        ]);
        Json::Obj(vec![
            ("schema".into(), Json::str(SCHEMA)),
            ("tool".into(), Json::str("eit-serve")),
            ("kernel".into(), Json::str("*")),
            ("serve".into(), serve),
        ])
    }
}

/// Nearest-rank percentile; 0 on an empty sample.
fn percentile(samples: &[u64], p: u64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (p * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&xs, 50), 50);
        assert_eq!(percentile(&xs, 99), 99);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[], 99), 0);
    }

    #[test]
    fn document_aggregates_outcomes_and_cache() {
        let m = ServerMetrics::default();
        m.record_outcome(Outcome::Ok);
        m.record_outcome(Outcome::Deadline);
        m.record_outcome(Outcome::Panic);
        m.enqueued();
        m.enqueued();
        m.dequeued(100);
        m.solved(5000);
        let doc = m.document(
            CacheStats {
                hits: 3,
                misses: 1,
                inserts: 1,
                evictions: 0,
                waits: 2,
            },
            1,
        );
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(doc.get("tool").and_then(Json::as_str), Some("eit-serve"));
        let serve = doc.get("serve").unwrap();
        assert_eq!(serve.get("requests").and_then(Json::as_u64), Some(3));
        assert_eq!(serve.get("deadline_misses").and_then(Json::as_u64), Some(1));
        assert_eq!(
            serve.get("panics_contained").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(serve.get("queue_depth").and_then(Json::as_u64), Some(1));
        assert_eq!(serve.get("queue_depth_max").and_then(Json::as_u64), Some(2));
        let cache = serve.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(3));
        assert_eq!(cache.get("hit_rate").and_then(Json::as_f64), Some(0.75));
        // The whole document survives a compact round-trip.
        let reparsed = Json::parse(&doc.render_compact()).unwrap();
        assert_eq!(reparsed.render_compact(), doc.render_compact());
    }
}
