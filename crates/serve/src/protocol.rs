//! The `eit-serve/1` wire protocol: JSON Lines over TCP.
//!
//! Every request and every response is one JSON object on one line
//! (compact rendering — `\n` terminates a message and never appears
//! inside one). Requests carry an `op`; responses echo the request `id`
//! and carry a `status`:
//!
//! ```text
//! → {"v":"eit-serve/1","id":"1","op":"compile","kernel":"qrd"}
//! ← {"v":"eit-serve/1","id":"1","status":"ok","cached":false,...}
//! ```
//!
//! | op        | meaning |
//! |-----------|---------|
//! | `compile` | schedule a kernel (`kernel` builtin name or inline `xml` IR), `mode` `"schedule"` (default) or `"modulo"`; optional `arch` selects the target machine (preset name or inline `eit-arch/1` XML, default `eit`) |
//! | `ping`    | liveness probe |
//! | `stats`   | aggregated server metrics (`eit-run-metrics/1` document) |
//! | `shutdown`| stop accepting, drain, exit |
//! | `panic`   | fault-injection hook: the worker deliberately panics; the caller must get a structured `error` response and the server must survive |
//!
//! Response `status` is `"ok"`, `"deadline"` (the request's wall-clock
//! budget expired in the queue or mid-solve), or `"error"` with an
//! `error.kind` of `bad-request`, `overloaded`, `panic`, `infeasible`,
//! `timeout`, `shutting-down`, or `internal`.
//!
//! Decoding is total: any malformed line becomes a structured
//! [`DecodeError`] (never a panic), and the JSON parser underneath caps
//! nesting depth, so no request byte sequence can take down a worker.

use eit_core::json::Json;

/// Protocol identifier, sent as `v` in every message.
pub const PROTOCOL: &str = "eit-serve/1";

/// Hard cap on `slots` in a compile request: keeps an adversarial
/// request from inflating the CP model arbitrarily.
pub const MAX_SLOTS: u32 = 4096;

/// Hard cap on inline `xml` kernels (bytes). Generous — the biggest
/// table kernel serialises to ~20 KiB.
pub const MAX_XML_BYTES: usize = 4 << 20;

/// Hard cap on an inline `arch` description (bytes). A machine with a
/// dozen units renders to well under a kilobyte.
pub const MAX_ARCH_BYTES: usize = 64 << 10;

/// What to compile and how — the cacheable part of a request.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileRequest {
    /// Builtin kernel name (`qrd`, `matmul`, …); exclusive with `xml`.
    pub kernel: Option<String>,
    /// Inline IR as `eit-ir` XML; exclusive with `kernel`.
    pub xml: Option<String>,
    /// Target machine: a preset name or an inline `eit-arch/1` XML
    /// document (resolved by `eit_arch::resolve_arch`); `None` = the
    /// `eit` preset. Part of the cache key via the resolved arch hash.
    pub arch: Option<String>,
    /// Memory-slot budget (`ArchSpec::with_slots`). `None` = the arch's
    /// own budget (64 for the default `eit` preset, preserving the
    /// pre-`arch` wire behaviour byte for byte).
    pub slots: Option<u32>,
    /// `false` = straight-line schedule, `true` = modulo sweep.
    pub modulo: bool,
    /// Modulo only: model reconfigurations inside the optimisation.
    pub include_reconfig: bool,
    /// Per-request wall-clock budget; `None` = server default.
    pub deadline_ms: Option<u64>,
}

/// A decoded request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    Ping,
    Stats,
    Shutdown,
    /// Fault-injection test hook (see module docs).
    Panic,
    Compile(Box<CompileRequest>),
}

/// Request plus its client-chosen correlation id.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    pub id: String,
    pub req: Request,
}

/// Why a request line was rejected. Carries whatever `id` could still
/// be extracted so the error response stays correlatable.
#[derive(Debug)]
pub struct DecodeError {
    pub id: String,
    pub message: String,
}

fn field_str(obj: &Json, key: &str) -> Option<String> {
    obj.get(key).and_then(Json::as_str).map(str::to_string)
}

/// Best-effort id extraction — also used for malformed requests, so the
/// client can correlate the `bad-request` response. Accepts a string or
/// an integer id.
fn extract_id(obj: &Json) -> String {
    match obj.get("id") {
        Some(Json::Str(s)) => s.clone(),
        Some(Json::Num(n)) => Json::Num(*n).render_compact(),
        _ => String::new(),
    }
}

/// Decode one request line. Never panics; every malformed input maps to
/// a [`DecodeError`] naming what was wrong.
pub fn decode_request(line: &str) -> Result<Envelope, DecodeError> {
    let doc = Json::parse(line).map_err(|e| DecodeError {
        id: String::new(),
        message: format!("invalid JSON: {e}"),
    })?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(DecodeError {
            id: String::new(),
            message: "request must be a JSON object".into(),
        });
    }
    let id = extract_id(&doc);
    let err = |message: String| DecodeError {
        id: id.clone(),
        message,
    };
    if let Some(v) = doc.get("v") {
        match v.as_str() {
            Some(PROTOCOL) => {}
            Some(other) => return Err(err(format!("unsupported protocol '{other}'"))),
            None => return Err(err("'v' must be a string".into())),
        }
    }
    let op = field_str(&doc, "op").ok_or_else(|| err("missing 'op'".into()))?;
    let req = match op.as_str() {
        "ping" => Request::Ping,
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        "panic" => Request::Panic,
        "compile" => {
            let kernel = field_str(&doc, "kernel");
            let xml = field_str(&doc, "xml");
            match (&kernel, &xml) {
                (None, None) => return Err(err("compile needs 'kernel' or 'xml'".into())),
                (Some(_), Some(_)) => {
                    return Err(err("'kernel' and 'xml' are mutually exclusive".into()))
                }
                _ => {}
            }
            if let Some(x) = &xml {
                if x.len() > MAX_XML_BYTES {
                    return Err(err(format!(
                        "inline xml is {} bytes; the limit is {MAX_XML_BYTES}",
                        x.len()
                    )));
                }
            }
            let arch = field_str(&doc, "arch");
            if let Some(a) = &arch {
                if a.len() > MAX_ARCH_BYTES {
                    return Err(err(format!(
                        "inline arch is {} bytes; the limit is {MAX_ARCH_BYTES}",
                        a.len()
                    )));
                }
            }
            let slots = match doc.get("slots") {
                None => None,
                Some(v) => match v.as_u64() {
                    Some(n) if (1..=MAX_SLOTS as u64).contains(&n) => Some(n as u32),
                    _ => {
                        return Err(err(format!(
                            "'slots' must be an integer in 1..={MAX_SLOTS}"
                        )))
                    }
                },
            };
            let modulo = match doc.get("mode") {
                None => false,
                Some(m) => match m.as_str() {
                    Some("schedule") => false,
                    Some("modulo") => true,
                    _ => return Err(err("'mode' must be \"schedule\" or \"modulo\"".into())),
                },
            };
            let include_reconfig = match doc.get("include_reconfig") {
                None => false,
                Some(Json::Bool(b)) => *b,
                Some(_) => return Err(err("'include_reconfig' must be a boolean".into())),
            };
            let deadline_ms = match doc.get("deadline_ms") {
                None => None,
                Some(v) => match v.as_u64() {
                    Some(n) => Some(n),
                    None => return Err(err("'deadline_ms' must be a non-negative integer".into())),
                },
            };
            Request::Compile(Box::new(CompileRequest {
                kernel,
                xml,
                arch,
                slots,
                modulo,
                include_reconfig,
                deadline_ms,
            }))
        }
        other => return Err(err(format!("unknown op '{other}'"))),
    };
    Ok(Envelope { id, req })
}

/// Error classification in `error.kind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request could not be decoded or named an unknown kernel /
    /// invalid IR.
    BadRequest,
    /// The admission queue was full.
    Overloaded,
    /// The worker panicked; the panic was contained at the request
    /// boundary.
    Panic,
    /// The CP model was proven infeasible for this input.
    Infeasible,
    /// The solver budget expired (distinct from a missed *deadline*).
    Timeout,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// Anything else.
    Internal,
}

impl ErrorKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Panic => "panic",
            ErrorKind::Infeasible => "infeasible",
            ErrorKind::Timeout => "timeout",
            ErrorKind::ShuttingDown => "shutting-down",
            ErrorKind::Internal => "internal",
        }
    }
}

/// Per-request timing block attached to compile responses.
#[derive(Clone, Copy, Debug, Default)]
pub struct RequestTiming {
    /// Time spent queued before a worker picked the request up.
    pub queue_us: u64,
    /// Solve time: the cold compile for misses, 0 for cache hits.
    pub solve_us: u64,
}

/// A successful compile.
#[derive(Clone, Debug)]
pub struct CompileReply {
    /// Served from the content-addressed cache.
    pub cached: bool,
    /// Content address of the solve (`SolveKey::content_address`).
    pub address: String,
    /// Independent-verifier verdict (`eit-arch::verify`), established
    /// once before the entry's first serve.
    pub verified: bool,
    pub violations: u64,
    /// Straight-line: optimal makespan. Modulo: `None`.
    pub makespan: Option<i64>,
    /// Modulo: issue II. Straight-line: `None`.
    pub ii: Option<i64>,
    /// Canonical textual rendering — byte-identical to `eitc` stdout
    /// for the same input.
    pub listing: String,
    pub timing: RequestTiming,
}

/// Everything a server can say about one request.
#[derive(Clone, Debug)]
pub enum Response {
    Pong,
    ShuttingDown,
    Stats(Json),
    Compiled(Box<CompileReply>),
    /// The request's wall-clock deadline passed at `stage` (`"queue"`:
    /// before a worker picked it up; `"solve"`: mid-search, the solve
    /// was cancelled via its deadline token).
    Deadline {
        stage: &'static str,
        timing: RequestTiming,
    },
    Error {
        kind: ErrorKind,
        message: String,
    },
}

fn timing_json(t: &RequestTiming) -> Json {
    Json::Obj(vec![
        ("queue_us".into(), Json::int(t.queue_us)),
        ("solve_us".into(), Json::int(t.solve_us)),
    ])
}

/// Encode a response as one JSONL line (terminating `\n` included).
pub fn encode_response(id: &str, resp: &Response) -> String {
    let mut members = vec![
        ("v".to_string(), Json::str(PROTOCOL)),
        ("id".to_string(), Json::str(id)),
    ];
    match resp {
        Response::Pong => {
            members.push(("status".into(), Json::str("ok")));
            members.push(("pong".into(), Json::Bool(true)));
        }
        Response::ShuttingDown => {
            members.push(("status".into(), Json::str("ok")));
            members.push(("shutting_down".into(), Json::Bool(true)));
        }
        Response::Stats(doc) => {
            members.push(("status".into(), Json::str("ok")));
            members.push(("metrics".into(), doc.clone()));
        }
        Response::Compiled(r) => {
            members.push(("status".into(), Json::str("ok")));
            members.push(("cached".into(), Json::Bool(r.cached)));
            members.push(("address".into(), Json::str(r.address.clone())));
            members.push(("verified".into(), Json::Bool(r.verified)));
            members.push(("violations".into(), Json::int(r.violations)));
            if let Some(m) = r.makespan {
                members.push(("makespan".into(), Json::int(m as u64)));
            }
            if let Some(ii) = r.ii {
                members.push(("ii".into(), Json::int(ii as u64)));
            }
            members.push(("listing".into(), Json::str(r.listing.clone())));
            members.push(("timing".into(), timing_json(&r.timing)));
        }
        Response::Deadline { stage, timing } => {
            members.push(("status".into(), Json::str("deadline")));
            members.push(("stage".into(), Json::str(*stage)));
            members.push(("timing".into(), timing_json(timing)));
        }
        Response::Error { kind, message } => {
            members.push(("status".into(), Json::str("error")));
            members.push((
                "error".into(),
                Json::Obj(vec![
                    ("kind".into(), Json::str(kind.as_str())),
                    ("message".into(), Json::str(message.clone())),
                ]),
            ));
        }
    }
    let mut line = Json::Obj(members).render_compact();
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_a_minimal_compile_request() {
        let e = decode_request(r#"{"v":"eit-serve/1","id":"7","op":"compile","kernel":"qrd"}"#)
            .unwrap();
        assert_eq!(e.id, "7");
        let Request::Compile(c) = e.req else {
            panic!("expected compile")
        };
        assert_eq!(c.kernel.as_deref(), Some("qrd"));
        assert_eq!(c.arch, None);
        assert_eq!(c.slots, None);
        assert!(!c.modulo);
        assert_eq!(c.deadline_ms, None);
    }

    #[test]
    fn decodes_an_arch_selector() {
        let e = decode_request(r#"{"op":"compile","kernel":"qrd","arch":"wide"}"#).unwrap();
        let Request::Compile(c) = e.req else {
            panic!("expected compile")
        };
        assert_eq!(c.arch.as_deref(), Some("wide"));
        // Oversized inline arch documents are refused at decode time.
        let big = format!(
            r#"{{"op":"compile","kernel":"qrd","arch":"{}"}}"#,
            "x".repeat(MAX_ARCH_BYTES + 1)
        );
        let err = decode_request(&big).unwrap_err();
        assert!(err.message.contains("inline arch"), "{}", err.message);
    }

    #[test]
    fn decodes_modulo_options_and_numeric_id() {
        let e = decode_request(
            r#"{"id":3,"op":"compile","xml":"<graph/>","mode":"modulo","include_reconfig":true,"slots":16,"deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(e.id, "3");
        let Request::Compile(c) = e.req else {
            panic!("expected compile")
        };
        assert!(c.modulo && c.include_reconfig);
        assert_eq!(c.slots, Some(16));
        assert_eq!(c.deadline_ms, Some(250));
    }

    #[test]
    fn malformed_lines_become_structured_errors() {
        for bad in [
            "",
            "not json",
            "[1,2]",
            r#"{"op":"compile"}"#,
            r#"{"op":"compile","kernel":"a","xml":"b"}"#,
            r#"{"op":"compile","kernel":"a","slots":0}"#,
            r#"{"op":"compile","kernel":"a","slots":999999}"#,
            r#"{"op":"compile","kernel":"a","mode":"turbo"}"#,
            r#"{"op":"compile","kernel":"a","deadline_ms":-5}"#,
            r#"{"op":"frobnicate"}"#,
            r#"{"v":"eit-serve/2","op":"ping"}"#,
            r#"{"no_op":true}"#,
        ] {
            assert!(decode_request(bad).is_err(), "accepted {bad:?}");
        }
        // The id survives decode failure for correlation.
        let e = decode_request(r#"{"id":"x","op":"frobnicate"}"#).unwrap_err();
        assert_eq!(e.id, "x");
    }

    #[test]
    fn responses_are_single_lines_that_reparse() {
        let replies = [
            Response::Pong,
            Response::ShuttingDown,
            Response::Deadline {
                stage: "queue",
                timing: RequestTiming::default(),
            },
            Response::Error {
                kind: ErrorKind::Panic,
                message: "worker panicked: boom".into(),
            },
            Response::Compiled(Box::new(CompileReply {
                cached: true,
                address: "aa-bb-cc".into(),
                verified: true,
                violations: 0,
                makespan: Some(34),
                ii: None,
                listing: "; status Optimal\nline2\n".into(),
                timing: RequestTiming {
                    queue_us: 5,
                    solve_us: 0,
                },
            })),
        ];
        for r in &replies {
            let line = encode_response("42", r);
            assert!(line.ends_with('\n'));
            assert_eq!(line.matches('\n').count(), 1, "one line: {line:?}");
            let doc = Json::parse(line.trim_end()).unwrap();
            assert_eq!(doc.get("id").and_then(Json::as_str), Some("42"));
            assert!(doc.get("status").is_some());
        }
    }
}
