//! `eit-serve` — schedule-compilation-as-a-service.
//!
//! A long-running daemon wrapping the `eitc` pipeline: clients submit
//! kernels (builtin name or inline XML IR) plus an architecture
//! configuration over a line-oriented TCP protocol
//! ([`protocol`], `eit-serve/1`) and receive the schedule or modulo
//! allocation, an independent verification verdict, and metrics.
//!
//! The interesting part is the [`cache`]: solves are content-addressed
//! on `(ir_hash, arch_hash, config_string)` — the triple that uniquely
//! determines the solver's *output* — with single-flight compilation,
//! LRU eviction, and verify-at-insert. Wall-clock deadlines ride a
//! deadline-bearing `CancelToken` into the solver, and worker panics
//! are contained at the request boundary ([`server`]).
//!
//! ```no_run
//! use eit_serve::{ServeOptions, Server};
//! let srv = Server::start(ServeOptions::default()).unwrap();
//! println!("listening on {}", srv.local_addr());
//! // ... send JSONL requests, then the shutdown op ...
//! srv.join();
//! ```
//!
//! Std-only, like the rest of the workspace: `std::net` + threads, no
//! async runtime and no serde — the JSON layer is `eit_core::json`.

pub mod cache;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use cache::{CacheStats, Lease, MissGuard, ScheduleCache};
pub use metrics::{Outcome, ServerMetrics};
pub use protocol::{
    decode_request, encode_response, CompileReply, CompileRequest, DecodeError, Envelope,
    ErrorKind, Request, RequestTiming, Response, PROTOCOL,
};
pub use server::{CachedSolve, ServeOptions, Server};
