//! Content-addressed schedule cache with single-flight compilation.
//!
//! Entries are keyed on [`SolveKey`] — `(ir_hash, arch_hash,
//! config_string)` — so two requests hit the same entry exactly when
//! the solver would have seen the same input. Config strings
//! deliberately exclude wall-clock budgets, `jobs`, and cancellation
//! state: those decide *whether* a solve finishes in time, never *what*
//! it produces, so caching across them is sound (see DESIGN.md §5i).
//!
//! Concurrency contract (*single-flight*): the first requester of a
//! missing key becomes the **leader** and gets a [`MissGuard`]; everyone
//! else asking for that key blocks on a condvar until the leader either
//! [`MissGuard::fulfill`]s (waiters wake up as cache hits) or drops the
//! guard without fulfilling — a panic or a missed deadline — in which
//! case one waiter is promoted to leader and compiles. A hot key is
//! therefore compiled exactly once no matter how many clients race on
//! it.
//!
//! Eviction is LRU over *Ready* entries (in-flight slots are never
//! evicted — someone is blocked on them), driven by a monotonic tick
//! rather than wall-clock time so behavior is deterministic under test.

use eit_core::SolveKey;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Counters exposed through the `stats` op and the aggregated metrics
/// document.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a Ready entry (including promoted waiters).
    pub hits: u64,
    /// Lookups that made the caller the compile leader.
    pub misses: u64,
    /// Entries inserted via [`MissGuard::fulfill`].
    pub inserts: u64,
    /// Ready entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Lookups that blocked behind an in-flight leader (whether they
    /// ended as hits or were promoted).
    pub waits: u64,
}

enum Slot<T> {
    /// A leader is compiling this key right now.
    InFlight,
    Ready {
        value: Arc<T>,
        last_used: u64,
    },
}

struct Inner<T> {
    map: HashMap<SolveKey, Slot<T>>,
    tick: u64,
    stats: CacheStats,
}

/// See the module docs for the single-flight contract.
pub struct ScheduleCache<T> {
    cap: usize,
    inner: Mutex<Inner<T>>,
    cv: Condvar,
}

/// Result of a lookup: either the value, or the obligation to produce
/// it.
pub enum Lease<'a, T> {
    Hit(Arc<T>),
    Miss(MissGuard<'a, T>),
}

/// Held by the compile leader for a key. Dropping it without calling
/// [`fulfill`](MissGuard::fulfill) abandons the slot and promotes a
/// waiter, so a panicking or cancelled leader never wedges the key.
pub struct MissGuard<'a, T> {
    cache: &'a ScheduleCache<T>,
    key: SolveKey,
    fulfilled: bool,
}

impl<T> ScheduleCache<T> {
    pub fn new(cap: usize) -> ScheduleCache<T> {
        ScheduleCache {
            // cap 0 would make every insert evict itself forever.
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                stats: CacheStats::default(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Look up `key`; block while another thread is compiling it.
    pub fn get_or_lease(&self, key: &SolveKey) -> Lease<'_, T> {
        let mut inner = self.inner.lock().unwrap();
        let mut waited = false;
        loop {
            match inner.map.get(key) {
                Some(Slot::Ready { .. }) => {
                    inner.tick += 1;
                    let tick = inner.tick;
                    let Some(Slot::Ready { value, last_used }) = inner.map.get_mut(key) else {
                        unreachable!("slot vanished under the lock");
                    };
                    *last_used = tick;
                    let v = Arc::clone(value);
                    inner.stats.hits += 1;
                    return Lease::Hit(v);
                }
                Some(Slot::InFlight) => {
                    if !waited {
                        waited = true;
                        inner.stats.waits += 1;
                    }
                    inner = self.cv.wait(inner).unwrap();
                }
                None => {
                    inner.map.insert(key.clone(), Slot::InFlight);
                    inner.stats.misses += 1;
                    return Lease::Miss(MissGuard {
                        cache: self,
                        key: key.clone(),
                        fulfilled: false,
                    });
                }
            }
        }
    }

    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap().stats
    }

    /// Number of Ready entries currently resident.
    pub fn entries(&self) -> usize {
        self.inner
            .lock()
            .unwrap()
            .map
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count()
    }
}

impl<T> MissGuard<'_, T> {
    /// Publish the compiled value, evicting least-recently-used Ready
    /// entries if the cache is over capacity, and wake all waiters.
    pub fn fulfill(mut self, value: T) -> Arc<T> {
        let value = Arc::new(value);
        let mut inner = self.cache.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            self.key.clone(),
            Slot::Ready {
                value: Arc::clone(&value),
                last_used: tick,
            },
        );
        inner.stats.inserts += 1;
        // Evict down to capacity, oldest Ready entry first. In-flight
        // slots don't count toward nor yield to capacity.
        loop {
            let ready = inner
                .map
                .iter()
                .filter(|(_, s)| matches!(s, Slot::Ready { .. }))
                .count();
            if ready <= self.cache.cap {
                break;
            }
            let victim = inner
                .map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { last_used, .. } if k != &self.key => Some((*last_used, k)),
                    _ => None,
                })
                .min_by_key(|(t, _)| *t)
                .map(|(_, k)| k.clone());
            match victim {
                Some(k) => {
                    inner.map.remove(&k);
                    inner.stats.evictions += 1;
                }
                None => break, // only the fresh entry is Ready
            }
        }
        self.fulfilled = true;
        drop(inner);
        self.cache.cv.notify_all();
        value
    }
}

impl<T> Drop for MissGuard<'_, T> {
    fn drop(&mut self) {
        if self.fulfilled {
            return;
        }
        // Abandoned (leader panicked or bailed): clear the in-flight
        // slot and wake waiters so one of them becomes the new leader.
        let mut inner = self.cache.inner.lock().unwrap();
        if matches!(inner.map.get(&self.key), Some(Slot::InFlight)) {
            inner.map.remove(&self.key);
        }
        drop(inner);
        self.cache.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> SolveKey {
        SolveKey {
            ir_hash: n,
            arch_hash: 0xa,
            config: "mode=schedule;test".into(),
        }
    }

    #[test]
    fn miss_then_hit_returns_the_same_arc() {
        let cache: ScheduleCache<String> = ScheduleCache::new(8);
        let v = match cache.get_or_lease(&key(1)) {
            Lease::Miss(g) => g.fulfill("schedule".into()),
            Lease::Hit(_) => panic!("cold cache hit"),
        };
        match cache.get_or_lease(&key(1)) {
            Lease::Hit(h) => assert!(Arc::ptr_eq(&h, &v)),
            Lease::Miss(_) => panic!("warm cache miss"),
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn abandoned_lease_promotes_the_next_caller_to_leader() {
        let cache: ScheduleCache<String> = ScheduleCache::new(8);
        match cache.get_or_lease(&key(1)) {
            Lease::Miss(g) => drop(g), // leader "panics"
            Lease::Hit(_) => panic!("cold cache hit"),
        }
        assert!(matches!(cache.get_or_lease(&key(1)), Lease::Miss(_)));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_keeps_recently_used_entries() {
        let cache: ScheduleCache<u64> = ScheduleCache::new(2);
        for n in 0..2 {
            match cache.get_or_lease(&key(n)) {
                Lease::Miss(g) => {
                    g.fulfill(n);
                }
                Lease::Hit(_) => panic!("cold hit"),
            }
        }
        // Touch key(0) so key(1) is the LRU victim.
        assert!(matches!(cache.get_or_lease(&key(0)), Lease::Hit(_)));
        match cache.get_or_lease(&key(2)) {
            Lease::Miss(g) => {
                g.fulfill(2);
            }
            Lease::Hit(_) => panic!("cold hit"),
        }
        assert_eq!(cache.entries(), 2);
        assert!(matches!(cache.get_or_lease(&key(0)), Lease::Hit(_)));
        assert!(matches!(cache.get_or_lease(&key(1)), Lease::Miss(_)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let cache: ScheduleCache<u64> = ScheduleCache::new(0);
        match cache.get_or_lease(&key(1)) {
            Lease::Miss(g) => {
                g.fulfill(1);
            }
            Lease::Hit(_) => panic!("cold hit"),
        }
        assert_eq!(cache.entries(), 1);
        assert!(matches!(cache.get_or_lease(&key(1)), Lease::Hit(_)));
    }
}
