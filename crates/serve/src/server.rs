//! The daemon: TCP acceptor, per-connection readers, a bounded
//! admission queue, and a worker pool that runs the `eitc` pipeline
//! behind the content-addressed [`ScheduleCache`].
//!
//! Fault containment, layer by layer:
//!
//! * **Malformed bytes** die in [`decode_request`] (total, structured
//!   errors) or in the capped line reader (oversized lines are drained
//!   to the next newline and answered with `bad-request` — the
//!   connection stays usable).
//! * **Panicking solves** are caught at the request boundary with
//!   [`catch_unwind`]; the client gets an `error`/`panic` response and
//!   the worker returns to its loop. Dropping the cache lease on the
//!   way out promotes a waiting client to compile leader, so a panic
//!   never wedges a cache key either.
//! * **Deadlines** are wall-clock, per request, and enforced twice:
//!   at queue pop (`stage:"queue"`) and inside the solver via a
//!   deadline-bearing [`CancelToken`] (`stage:"solve"`) — no watchdog
//!   thread per solve.
//!
//! Everything here is std-only: `std::net`, threads, mutexes.

use crate::cache::{Lease, ScheduleCache};
use crate::metrics::{Outcome, ServerMetrics};
use crate::protocol::{
    decode_request, encode_response, CompileReply, CompileRequest, ErrorKind, Request,
    RequestTiming, Response,
};
use eit_arch::ArchSpec;
use eit_core::pipeline::{compile, CompileError, CompileOptions};
use eit_core::{
    modulo_schedule, render_compiled, render_modulo, ModuloOptions, SchedulerOptions, SolveKey,
};
use eit_cp::CancelToken;
use eit_ir::Graph;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind as IoErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration; `Default` matches the `eitc --serve` defaults.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing solves.
    pub workers: usize,
    /// Admission-queue bound; requests beyond it are rejected with
    /// `overloaded` instead of queueing unboundedly.
    pub queue_cap: usize,
    /// Content-addressed cache capacity (Ready entries).
    pub cache_cap: usize,
    /// Wall-clock budget for requests that don't send `deadline_ms`.
    pub default_deadline: Duration,
    /// Longest request line accepted before the reader drains and
    /// rejects.
    pub max_line_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_cap: 64,
            cache_cap: 128,
            default_deadline: Duration::from_secs(120),
            max_line_bytes: 8 << 20,
        }
    }
}

/// What one cold solve produced — the cache value. Everything needed to
/// answer a hit without touching the solver, including the verifier
/// verdict established before the entry's first serve.
#[derive(Debug)]
pub struct CachedSolve {
    pub address: String,
    pub listing: String,
    pub makespan: Option<i64>,
    pub ii: Option<i64>,
    pub verified: bool,
    pub violations: u64,
}

/// Shared writer half of a connection; workers and the reader thread
/// both respond through it, one whole line per lock acquisition.
type ConnWriter = Arc<Mutex<TcpStream>>;

enum JobKind {
    Compile(Box<CompileRequest>),
    /// Fault-injection op: the worker panics on purpose.
    Panic,
}

struct Job {
    id: String,
    kind: JobKind,
    enqueued: Instant,
    deadline: Instant,
    out: ConnWriter,
}

struct Shared {
    opts: ServeOptions,
    cache: ScheduleCache<CachedSolve>,
    metrics: ServerMetrics,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
}

/// A running daemon. Dropping it does **not** stop it; send a
/// `shutdown` op (or call [`Server::request_shutdown`]) and then
/// [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start accepting. Returns once the listener is live.
    pub fn start(opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: ScheduleCache::new(opts.cache_cap),
            metrics: ServerMetrics::default(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            opts,
        });
        let workers = (0..shared.opts.workers.max(1))
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("eit-serve-worker-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn worker")
            })
            .collect();
        let acceptor = {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("eit-serve-accept".into())
                .spawn(move || accept_loop(&listener, &sh))
                .expect("spawn acceptor")
        };
        Ok(Server {
            addr,
            shared,
            acceptor,
            workers,
        })
    }

    /// The actual bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Flip the shutdown flag, as the `shutdown` op does.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// The aggregated `eit-run-metrics/1` document at this instant.
    pub fn metrics_document(&self) -> eit_core::json::Json {
        self.shared
            .metrics
            .document(self.shared.cache.stats(), self.shared.cache.entries())
    }

    /// Wait for the acceptor and workers to drain and exit (requires a
    /// prior shutdown request).
    pub fn join(self) {
        let _ = self.join_with_metrics();
    }

    /// Like [`Server::join`], but returns the final aggregated metrics
    /// document after the last worker drained — what `eitc --serve
    /// --metrics FILE` writes at shutdown.
    pub fn join_with_metrics(self) -> eit_core::json::Json {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        self.shared
            .metrics
            .document(self.shared.cache.stats(), self.shared.cache.entries())
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let sh = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("eit-serve-conn".into())
                    .spawn(move || handle_conn(stream, &sh));
            }
            Err(e) if e.kind() == IoErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Unblock workers so they can drain the queue and observe shutdown.
    shared.queue_cv.notify_all();
}

/// One line read from a connection.
enum LineRead {
    Line(String),
    /// The line outgrew the cap; the remainder up to the next newline
    /// was drained so the connection can resync.
    Overflow,
    Eof,
}

/// Read one `\n`-terminated line, refusing to buffer more than `cap`
/// bytes. An oversized line is consumed (so the next read starts on a
/// message boundary) and reported as [`LineRead::Overflow`].
fn read_line_capped(r: &mut impl BufRead, cap: usize) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return if buf.is_empty() {
                Ok(LineRead::Eof)
            } else {
                // Trailing line without newline: treat as a line so a
                // client that sends one request and shuts down write
                // still gets its answer.
                Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()))
            };
        }
        let nl = chunk.iter().position(|&b| b == b'\n');
        let take = nl.map_or(chunk.len(), |i| i + 1);
        if buf.len() + take > cap + 1 {
            // Overflow: drain through the newline, then report.
            r.consume(take);
            if nl.is_none() {
                loop {
                    let chunk = r.fill_buf()?;
                    if chunk.is_empty() {
                        return Ok(LineRead::Eof);
                    }
                    let nl = chunk.iter().position(|&b| b == b'\n');
                    let take = nl.map_or(chunk.len(), |i| i + 1);
                    r.consume(take);
                    if nl.is_some() {
                        break;
                    }
                }
            }
            return Ok(LineRead::Overflow);
        }
        buf.extend_from_slice(&chunk[..take]);
        r.consume(take);
        if nl.is_some() {
            while matches!(buf.last(), Some(b'\n' | b'\r')) {
                buf.pop();
            }
            return Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()));
        }
    }
}

fn write_response(out: &ConnWriter, id: &str, resp: &Response) {
    let line = encode_response(id, resp);
    if let Ok(mut s) = out.lock() {
        let _ = s.write_all(line.as_bytes());
        let _ = s.flush();
    }
}

fn handle_conn(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let writer: ConnWriter = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_line_capped(&mut reader, shared.opts.max_line_bytes) {
            Err(_) | Ok(LineRead::Eof) => return,
            Ok(LineRead::Overflow) => {
                shared.metrics.record_outcome(Outcome::BadRequest);
                write_response(
                    &writer,
                    "",
                    &Response::Error {
                        kind: ErrorKind::BadRequest,
                        message: format!(
                            "request line exceeds {} bytes",
                            shared.opts.max_line_bytes
                        ),
                    },
                );
            }
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                match decode_request(&line) {
                    Err(e) => {
                        shared.metrics.record_outcome(Outcome::BadRequest);
                        write_response(
                            &writer,
                            &e.id,
                            &Response::Error {
                                kind: ErrorKind::BadRequest,
                                message: e.message,
                            },
                        );
                    }
                    Ok(env) => match env.req {
                        Request::Ping => {
                            shared.metrics.record_outcome(Outcome::Ok);
                            write_response(&writer, &env.id, &Response::Pong);
                        }
                        Request::Stats => {
                            shared.metrics.record_outcome(Outcome::Ok);
                            let doc = shared
                                .metrics
                                .document(shared.cache.stats(), shared.cache.entries());
                            write_response(&writer, &env.id, &Response::Stats(doc));
                        }
                        Request::Shutdown => {
                            shared.metrics.record_outcome(Outcome::Ok);
                            write_response(&writer, &env.id, &Response::ShuttingDown);
                            shared.shutdown.store(true, Ordering::SeqCst);
                            shared.queue_cv.notify_all();
                        }
                        Request::Panic => {
                            enqueue(shared, &writer, &env.id, JobKind::Panic, None);
                        }
                        Request::Compile(req) => {
                            let deadline_ms = req.deadline_ms;
                            enqueue(shared, &writer, &env.id, JobKind::Compile(req), deadline_ms);
                        }
                    },
                }
            }
        }
    }
}

/// Admission control: bounded queue, reject-don't-block.
fn enqueue(
    shared: &Arc<Shared>,
    out: &ConnWriter,
    id: &str,
    kind: JobKind,
    deadline_ms: Option<u64>,
) {
    if shared.shutdown.load(Ordering::SeqCst) {
        shared.metrics.record_outcome(Outcome::OtherError);
        write_response(
            out,
            id,
            &Response::Error {
                kind: ErrorKind::ShuttingDown,
                message: "server is draining".into(),
            },
        );
        return;
    }
    let enqueued = Instant::now();
    let budget = deadline_ms.map_or(shared.opts.default_deadline, Duration::from_millis);
    let job = Job {
        id: id.to_string(),
        kind,
        enqueued,
        deadline: enqueued + budget,
        out: Arc::clone(out),
    };
    let mut q = shared.queue.lock().unwrap();
    if q.len() >= shared.opts.queue_cap {
        drop(q);
        shared.metrics.record_outcome(Outcome::Overloaded);
        write_response(
            out,
            id,
            &Response::Error {
                kind: ErrorKind::Overloaded,
                message: format!("admission queue is full ({})", shared.opts.queue_cap),
            },
        );
        return;
    }
    q.push_back(job);
    drop(q);
    shared.metrics.enqueued();
    shared.queue_cv.notify_one();
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = shared.queue_cv.wait(q).unwrap();
            }
        };
        let queue_us = job.enqueued.elapsed().as_micros() as u64;
        shared.metrics.dequeued(queue_us);
        let timing = RequestTiming {
            queue_us,
            solve_us: 0,
        };
        let resp = catch_unwind(AssertUnwindSafe(|| handle_job(shared, &job, timing)));
        let resp = resp.unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            Response::Error {
                kind: ErrorKind::Panic,
                message: format!("worker panicked: {msg}"),
            }
        });
        shared.metrics.record_outcome(outcome_of(&resp));
        write_response(&job.out, &job.id, &resp);
    }
}

fn outcome_of(resp: &Response) -> Outcome {
    match resp {
        Response::Deadline { .. } => Outcome::Deadline,
        Response::Error { kind, .. } => match kind {
            ErrorKind::BadRequest => Outcome::BadRequest,
            ErrorKind::Overloaded => Outcome::Overloaded,
            ErrorKind::Panic => Outcome::Panic,
            _ => Outcome::OtherError,
        },
        _ => Outcome::Ok,
    }
}

fn bad_request(message: String) -> Response {
    Response::Error {
        kind: ErrorKind::BadRequest,
        message,
    }
}

/// Execute one queued job. Runs under `catch_unwind`; may panic (that
/// is the point of the `panic` op) and must leave no shared state
/// wedged when it does — the only cross-request state it touches is the
/// cache, whose lease guard is panic-safe by construction.
fn handle_job(shared: &Arc<Shared>, job: &Job, mut timing: RequestTiming) -> Response {
    let req = match &job.kind {
        JobKind::Panic => panic!("deliberate panic requested by the panic op"),
        JobKind::Compile(req) => req,
    };
    let now = Instant::now();
    if now >= job.deadline {
        return Response::Deadline {
            stage: "queue",
            timing,
        };
    }
    let budget = job.deadline.saturating_duration_since(now);

    // Load and prepare the graph exactly as `eitc <kernel>` would:
    // validate, then the pipeline-merge pass.
    let mut g: Graph = if let Some(name) = &req.kernel {
        match eit_apps::by_name(name) {
            Some(k) => k.graph,
            None => return bad_request(format!("unknown kernel '{name}'")),
        }
    } else if let Some(xml) = &req.xml {
        match eit_ir::from_xml(xml) {
            Ok(g) => g,
            Err(e) => return bad_request(format!("invalid IR xml: {e}")),
        }
    } else {
        return bad_request("compile needs 'kernel' or 'xml'".into());
    };
    if let Err(e) = g.validate() {
        return bad_request(format!("invalid IR: {e}"));
    }
    let _ = eit_ir::merge_pipeline_ops(&mut g);
    // Resolve the target machine: preset name or inline eit-arch/1 XML,
    // validated on load. The resolved spec's hash is part of the cache
    // key, so different machines never alias in the solve cache.
    let mut spec = match &req.arch {
        Some(a) => match eit_arch::resolve_arch(a) {
            Ok(s) => s,
            Err(e) => return bad_request(e),
        },
        None => ArchSpec::eit(),
    };
    // An explicit `slots` overrides the arch's own budget; absent, the
    // default machine keeps its historical 64-slot cap so pre-`arch`
    // requests hash to the same cache addresses as before.
    match (req.slots, req.arch.is_some()) {
        (Some(n), _) => spec = spec.with_slots(n),
        (None, false) => spec = spec.with_slots(64),
        (None, true) => {}
    }
    let token = CancelToken::with_deadline(job.deadline);
    let solve_started = Instant::now();

    if req.modulo {
        let mopts = ModuloOptions {
            include_reconfig: req.include_reconfig,
            timeout_per_ii: budget,
            total_timeout: budget,
            cancel: Some(token.clone()),
            ..Default::default()
        };
        let key = SolveKey::modulo(&g, &spec, &mopts);
        let address = key.content_address();
        match shared.cache.get_or_lease(&key) {
            Lease::Hit(v) => Response::Compiled(Box::new(reply_from(&v, true, timing))),
            Lease::Miss(guard) => match modulo_schedule(&g, &spec, &mopts) {
                Some(r) => {
                    timing.solve_us = solve_started.elapsed().as_micros() as u64;
                    shared.metrics.solved(timing.solve_us);
                    let violations = eit_arch::verify_modulo(&g, &spec, &r.s, r.ii_issue);
                    let v = guard.fulfill(CachedSolve {
                        address,
                        listing: render_modulo(&g, &r),
                        makespan: None,
                        ii: Some(r.ii_issue as i64),
                        verified: violations.is_empty(),
                        violations: violations.len() as u64,
                    });
                    Response::Compiled(Box::new(reply_from(&v, false, timing)))
                }
                None if token.is_cancelled() => Response::Deadline {
                    stage: "solve",
                    timing,
                },
                None => Response::Error {
                    kind: ErrorKind::Timeout,
                    message: "no modulo schedule found within budget".into(),
                },
            },
        }
    } else {
        // Mirror the `--record` path: hoist CSE out of `compile` so the
        // cache key's ir_hash covers the exact graph the solver sees.
        let _ = eit_ir::eliminate_common_subexpressions(&mut g);
        let sched_opts = SchedulerOptions {
            memory: true,
            timeout: Some(budget),
            cancel: Some(token.clone()),
            ..Default::default()
        };
        let key = SolveKey::schedule(&g, &spec, &sched_opts);
        let address = key.content_address();
        match shared.cache.get_or_lease(&key) {
            Lease::Hit(v) => Response::Compiled(Box::new(reply_from(&v, true, timing))),
            Lease::Miss(guard) => {
                let copts = CompileOptions {
                    cse: false,   // hoisted above, like --record
                    merge: false, // already applied above
                    scheduler: sched_opts,
                };
                match compile(g, &spec, &copts) {
                    Ok(out) => {
                        timing.solve_us = solve_started.elapsed().as_micros() as u64;
                        shared.metrics.solved(timing.solve_us);
                        let violations =
                            eit_arch::verify_schedule(&out.graph, &spec, &out.schedule, true);
                        let v = guard.fulfill(CachedSolve {
                            address,
                            listing: render_compiled(&out),
                            makespan: Some(out.schedule.makespan as i64),
                            ii: None,
                            verified: violations.is_empty(),
                            violations: violations.len() as u64,
                        });
                        Response::Compiled(Box::new(reply_from(&v, false, timing)))
                    }
                    Err(CompileError::Timeout) if token.is_cancelled() => Response::Deadline {
                        stage: "solve",
                        timing,
                    },
                    Err(CompileError::Timeout) => Response::Error {
                        kind: ErrorKind::Timeout,
                        message: "solver budget expired".into(),
                    },
                    Err(CompileError::Infeasible) => Response::Error {
                        kind: ErrorKind::Infeasible,
                        message: "proven infeasible on this machine configuration".into(),
                    },
                    Err(e) => bad_request(format!("{e}")),
                }
            }
        }
    }
}

fn reply_from(v: &CachedSolve, cached: bool, timing: RequestTiming) -> CompileReply {
    CompileReply {
        cached,
        address: v.address.clone(),
        verified: v.verified,
        violations: v.violations,
        makespan: v.makespan,
        ii: v.ii,
        listing: v.listing.clone(),
        timing,
    }
}
