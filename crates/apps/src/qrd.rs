//! QRD — Modified-Gram-Schmidt MMSE QR decomposition (§4.1).
//!
//! The paper's main kernel: the MGS-based MMSE-QRD used for data
//! detection pre-processing in 4×4 MIMO (Luethi et al. 2007; Zhang 2014).
//! MMSE regularisation extends the channel matrix to `[H; σI]` (8×4); on
//! a four-lane vector machine each 8-element column is a *pair* of
//! vectors (top half from `H`, bottom half from `σI`), so every column
//! operation splits into two vector operations plus a scalar combine —
//! exactly the operation mix that makes the kernel interesting to
//! schedule: chains of `v_squsum`/`v_dotP` through the accelerator's
//! `rsqrt` with long pipeline-latency dependencies.
//!
//! The DSL implementation was written against the same algorithm the
//! paper's architect used; the graph lands at the paper's reported scale
//! (paper: |V| = 143, |E| = 194, 49 vector data, |Cr.P| = 169 — see
//! EXPERIMENTS.md for our measured values side by side).

use crate::Kernel;
use eit_dsl::{Ctx, Scalar, Vector};
use eit_ir::sem::Value;
use eit_ir::Cplx;
use std::collections::HashMap;

/// One column of the augmented matrix `[H; σI]`.
#[derive(Clone)]
struct Column {
    top: Vector,
    bot: Vector,
}

/// Build the MMSE-QRD kernel for a fixed, well-conditioned complex 4×4
/// channel with σ = 0.5.
pub fn build() -> Kernel {
    build_with(default_channel(), 0.5)
}

/// The default channel matrix (column-major: `h[j][i]` = row i of col j).
pub fn default_channel() -> [[Cplx; 4]; 4] {
    let c = Cplx::new;
    [
        [c(1.0, 0.2), c(0.3, -0.4), c(-0.2, 0.1), c(0.5, 0.0)],
        [c(0.2, -0.1), c(1.1, 0.3), c(0.4, 0.2), c(-0.3, 0.4)],
        [c(-0.4, 0.3), c(0.1, -0.2), c(0.9, -0.1), c(0.2, 0.3)],
        [c(0.3, 0.1), c(-0.2, 0.5), c(0.1, 0.4), c(1.2, -0.2)],
    ]
}

/// Build the kernel for an arbitrary channel and noise level.
pub fn build_with(h_cols: [[Cplx; 4]; 4], sigma: f64) -> Kernel {
    let ctx = Ctx::new("qrd");
    let mut inputs = HashMap::new();
    let mut expected = HashMap::new();

    // Inputs: 4 top-half columns (H) and 4 bottom-half columns (σI).
    let mut cols: Vec<Column> = (0..4)
        .map(|j| {
            let top = ctx.vector_named(
                &format!("h{j}"),
                [h_cols[j][0], h_cols[j][1], h_cols[j][2], h_cols[j][3]],
            );
            let bot_vals: [Cplx; 4] = std::array::from_fn(|i| {
                if i == j {
                    Cplx::real(sigma)
                } else {
                    Cplx::ZERO
                }
            });
            let bot = ctx.vector_named(&format!("sig{j}"), bot_vals);
            inputs.insert(top.node(), Value::V(top.value()));
            inputs.insert(bot.node(), Value::V(bot.value()));
            Column { top, bot }
        })
        .collect();

    let track = |s: &Scalar, expected: &mut HashMap<_, _>| {
        expected.insert(s.node(), Value::S(s.value()));
    };

    // Modified Gram-Schmidt over the 8-row columns.
    for k in 0..4 {
        // ‖a_k‖² over both halves.
        let n_top = cols[k].top.v_squsum();
        let n_bot = cols[k].bot.v_squsum();
        let norm2 = n_top.add(&n_bot);
        // 1/‖a_k‖ on the accelerator; r_kk = ‖a_k‖ = norm2 · rsqrt(norm2).
        let inv = norm2.rsqrt();
        let r_kk = norm2.mul(&inv);
        track(&r_kk, &mut expected);
        // q_k = a_k / ‖a_k‖.
        let q_top = cols[k].top.v_scale(&inv);
        let q_bot = cols[k].bot.v_scale(&inv);
        expected.insert(q_top.node(), Value::V(q_top.value()));
        expected.insert(q_bot.node(), Value::V(q_bot.value()));

        for j in (k + 1)..4 {
            // r_kj = q_kᴴ·a_j  (v_dotp conjugates its second operand).
            let d_top = cols[j].top.v_dotp(&q_top);
            let d_bot = cols[j].bot.v_dotp(&q_bot);
            let r_kj = d_top.add(&d_bot);
            track(&r_kj, &mut expected);
            // a_j ← a_j − r_kj·q_k.
            let p_top = q_top.v_scale(&r_kj);
            let p_bot = q_bot.v_scale(&r_kj);
            cols[j] = Column {
                top: cols[j].top.v_sub(&p_top),
                bot: cols[j].bot.v_sub(&p_bot),
            };
        }
    }

    // Keep only true sinks as expectations (intermediate q/r values may
    // have consumers; expectation map is allowed to contain extra entries
    // keyed by node — trim to outputs).
    let graph = ctx.finish();
    let outputs: std::collections::HashSet<_> = graph.outputs().into_iter().collect();
    expected.retain(|n, _| outputs.contains(n));

    Kernel {
        name: "qrd",
        graph,
        inputs,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Gather Q and R from a fresh DSL run (values only).
    fn reference_qr(h: [[Cplx; 4]; 4], sigma: f64) -> ([[Cplx; 8]; 4], [[Cplx; 4]; 4]) {
        // Plain MGS in f64, mirroring the DSL computation.
        let mut a = [[Cplx::ZERO; 8]; 4];
        for (j, col) in h.iter().enumerate() {
            for i in 0..4 {
                a[j][i] = col[i];
            }
            a[j][4 + j] = Cplx::real(sigma);
        }
        let mut q = [[Cplx::ZERO; 8]; 4];
        let mut r = [[Cplx::ZERO; 4]; 4];
        for k in 0..4 {
            let norm2: f64 = a[k].iter().map(|x| x.abs2()).sum();
            let norm = norm2.sqrt();
            r[k][k] = Cplx::real(norm);
            for i in 0..8 {
                q[k][i] = a[k][i] * (1.0 / norm);
            }
            for j in (k + 1)..4 {
                // r_kj = q_kᴴ a_j
                let mut rkj = Cplx::ZERO;
                for i in 0..8 {
                    rkj = rkj + a[j][i] * q[k][i].conj();
                }
                r[k][j] = rkj;
                for i in 0..8 {
                    a[j][i] = a[j][i] - q[k][i] * rkj;
                }
            }
        }
        (q, r)
    }

    #[test]
    fn graph_scale_is_in_the_papers_ballpark() {
        let k = build();
        let n = k.graph.len();
        let e = k.graph.edge_count();
        // Paper: |V| = 143, |E| = 194. Our DSL transcription lands within
        // ~10 % (exact numbers recorded in EXPERIMENTS.md).
        assert!((130..=160).contains(&n), "|V| = {n}");
        assert!((180..=215).contains(&e), "|E| = {e}");
        let vd = k.graph.count(eit_ir::Category::VectorData);
        assert!((38..=55).contains(&vd), "#v_data = {vd}");
        let lm = eit_ir::LatencyModel::default();
        let cp = k.graph.critical_path(&lm.of(&k.graph));
        assert!((150..=185).contains(&cp), "|Cr.P| = {cp}");
    }

    #[test]
    fn dsl_values_match_reference_mgs() {
        let h = default_channel();
        let (q_ref, r_ref) = reference_qr(h, 0.5);
        // Re-run the DSL and compare the tracked values.
        let ctx = Ctx::new("check");
        let mut cols: Vec<(eit_dsl::Vector, eit_dsl::Vector)> = (0..4)
            .map(|j| {
                let top = ctx.vector([h[j][0], h[j][1], h[j][2], h[j][3]]);
                let bot_vals: [Cplx; 4] =
                    std::array::from_fn(|i| if i == j { Cplx::real(0.5) } else { Cplx::ZERO });
                (top, ctx.vector(bot_vals))
            })
            .collect();
        for k in 0..4 {
            let norm2 = cols[k].0.v_squsum().add(&cols[k].1.v_squsum());
            let inv = norm2.rsqrt();
            let r_kk = norm2.mul(&inv);
            assert!(
                r_kk.value().approx_eq(r_ref[k][k], 1e-9),
                "r[{k}][{k}]: {:?} vs {:?}",
                r_kk.value(),
                r_ref[k][k]
            );
            let q_top = cols[k].0.v_scale(&inv);
            let q_bot = cols[k].1.v_scale(&inv);
            for i in 0..4 {
                assert!(q_top.value()[i].approx_eq(q_ref[k][i], 1e-9));
                assert!(q_bot.value()[i].approx_eq(q_ref[k][4 + i], 1e-9));
            }
            for j in (k + 1)..4 {
                let r_kj = cols[j].0.v_dotp(&q_top).add(&cols[j].1.v_dotp(&q_bot));
                assert!(r_kj.value().approx_eq(r_ref[k][j], 1e-9), "r[{k}][{j}]");
                let p_top = q_top.v_scale(&r_kj);
                let p_bot = q_bot.v_scale(&r_kj);
                cols[j] = (cols[j].0.v_sub(&p_top), cols[j].1.v_sub(&p_bot));
            }
        }
    }

    #[test]
    fn q_columns_are_orthonormal() {
        let (q, _) = reference_qr(default_channel(), 0.5);
        for a in 0..4 {
            for b in 0..4 {
                let mut dot = Cplx::ZERO;
                for i in 0..8 {
                    dot = dot + q[a][i] * q[b][i].conj();
                }
                let expect = if a == b { Cplx::ONE } else { Cplx::ZERO };
                assert!(dot.approx_eq(expect, 1e-9), "q{a}·q{b} = {dot:?}");
            }
        }
    }

    #[test]
    fn qr_reconstructs_the_augmented_matrix() {
        let h = default_channel();
        let (q, r) = reference_qr(h, 0.5);
        for j in 0..4 {
            for i in 0..8 {
                let mut acc = Cplx::ZERO;
                for k in 0..=j {
                    acc = acc + q[k][i] * r[k][j];
                }
                let orig = if i < 4 {
                    h[j][i]
                } else if i - 4 == j {
                    Cplx::real(0.5)
                } else {
                    Cplx::ZERO
                };
                assert!(acc.approx_eq(orig, 1e-9), "col {j} row {i}");
            }
        }
    }

    #[test]
    fn operation_mix_exercises_all_units() {
        use eit_ir::Category;
        let k = build();
        assert!(k.graph.count(Category::VectorOp) > 40);
        assert!(k.graph.count(Category::ScalarOp) > 10);
        // No matrix ops or merges in this formulation.
        assert_eq!(k.graph.count(Category::MatrixOp), 0);
    }
}
