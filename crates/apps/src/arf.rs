//! ARF — the auto-regression filter, vectorised (§4.3).
//!
//! The classic ARF dataflow graph from the high-level-synthesis benchmark
//! suite: 16 multiplications and 12 additions in a four-stage butterfly.
//! As the paper does, the kernel is "modified to work on vectors as basic
//! units instead of scalars, in order to exploit the vector capabilities
//! of the architecture": every sample and coefficient is a 4-lane vector
//! and every `*`/`+` is a `v_mul`/`v_add`.
//!
//! Two operation types → at most one reconfiguration per type-switch in
//! the modulo window, giving the Table 3 middle row its character
//! (moderate parallelism, reconfiguration-sensitive II).

use crate::Kernel;
use eit_dsl::{Ctx, Vector};
use eit_ir::sem::Value;
use std::collections::HashMap;

/// Build the vectorised ARF with deterministic pseudo-random inputs.
pub fn build() -> Kernel {
    let ctx = Ctx::new("arf");
    let mut inputs = HashMap::new();

    // Deterministic input generator (no RNG dependency needed here).
    let mut seed = 0x2545F491u64;
    let mut next = || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    };
    let mut vin = |name: &str| -> Vector {
        let v = ctx.vector_named(name, [next(), next(), next(), next()]);
        inputs.insert(v.node(), Value::V(v.value()));
        v
    };

    // 8 delayed samples and 16 filter coefficients.
    let x: Vec<Vector> = (0..8).map(|i| vin(&format!("x{i}"))).collect();
    let c: Vec<Vector> = (0..16).map(|i| vin(&format!("c{i}"))).collect();

    // Stage 1: 8 multiplications.
    let m1: Vec<Vector> = (0..8).map(|i| x[i].v_mul(&c[i])).collect();
    // Stage 2: 4 additions.
    let a1: Vec<Vector> = (0..4).map(|i| m1[2 * i].v_add(&m1[2 * i + 1])).collect();
    // Stage 3: 8 multiplications (each partial sum feeds two lattice taps).
    let m2: Vec<Vector> = (0..8).map(|i| a1[i / 2].v_mul(&c[8 + i])).collect();
    // Stage 4: 4 additions across the lattice.
    let a2 = [
        m2[0].v_add(&m2[2]),
        m2[1].v_add(&m2[3]),
        m2[4].v_add(&m2[6]),
        m2[5].v_add(&m2[7]),
    ];
    // Stage 5: 2 additions.
    let a3 = [a2[0].v_add(&a2[2]), a2[1].v_add(&a2[3])];
    // Stage 6: 2 output additions (12 adds total, 16 muls).
    let out1 = a3[0].v_add(&a3[1]);
    let out2 = out1.v_add(&a3[1]);

    let mut expected = HashMap::new();
    expected.insert(out2.node(), Value::V(out2.value()));

    let graph = ctx.finish();
    // out1 feeds out2, so the only sink is out2.
    Kernel {
        name: "arf",
        graph,
        inputs,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eit_ir::Category;

    #[test]
    fn op_mix_is_16_muls_12_adds() {
        let k = build();
        let muls = k
            .graph
            .ids()
            .filter(|&i| {
                matches!(
                    k.graph.opcode(i),
                    Some(eit_ir::Opcode::Vector {
                        core: eit_ir::CoreOp::Mul,
                        ..
                    })
                )
            })
            .count();
        let adds = k
            .graph
            .ids()
            .filter(|&i| {
                matches!(
                    k.graph.opcode(i),
                    Some(eit_ir::Opcode::Vector {
                        core: eit_ir::CoreOp::Add,
                        ..
                    })
                )
            })
            .count();
        assert_eq!(muls, 16);
        assert_eq!(adds, 12);
        assert_eq!(k.graph.count(Category::VectorOp), 28);
    }

    #[test]
    fn graph_is_valid_and_vector_only() {
        let k = build();
        k.graph.validate().unwrap();
        assert_eq!(k.graph.count(Category::ScalarOp), 0);
        assert_eq!(k.graph.count(Category::MatrixOp), 0);
        assert_eq!(k.graph.inputs().len(), 24);
    }

    #[test]
    fn critical_path_is_seven_pipeline_trips() {
        let k = build();
        let lm = eit_ir::LatencyModel::default();
        // mul→add→mul→add→add→add→add = 7 × 7 cc (paper reports 56 = 8×7
        // for its variant; see EXPERIMENTS.md).
        assert_eq!(k.graph.critical_path(&lm.of(&k.graph)), 49);
    }

    #[test]
    fn functional_value_matches_hand_computation() {
        let k = build();
        use eit_ir::Cplx;
        // Recompute out2 from the recorded input values through the same
        // dataflow, lane 0 only.
        let lane0 = |n: eit_ir::NodeId| -> Cplx {
            match k.inputs[&n] {
                Value::V(v) => v[0],
                _ => panic!(),
            }
        };
        let ins = k.graph.inputs();
        let x: Vec<Cplx> = ins[..8].iter().map(|&n| lane0(n)).collect();
        let c: Vec<Cplx> = ins[8..].iter().map(|&n| lane0(n)).collect();
        let m1: Vec<Cplx> = (0..8).map(|i| x[i] * c[i]).collect();
        let a1: Vec<Cplx> = (0..4).map(|i| m1[2 * i] + m1[2 * i + 1]).collect();
        let m2: Vec<Cplx> = (0..8).map(|i| a1[i / 2] * c[8 + i]).collect();
        let a2 = [m2[0] + m2[2], m2[1] + m2[3], m2[4] + m2[6], m2[5] + m2[7]];
        let a3 = [a2[0] + a2[2], a2[1] + a2[3]];
        let out2 = (a3[0] + a3[1]) + a3[1];
        let sink = k.graph.outputs()[0];
        let Value::V(v) = k.expected[&sink] else {
            panic!()
        };
        assert!(v[0].approx_eq(out2, 1e-9));
    }
}
