//! BLOCKMM — 8×8 complex matrix multiplication by 4×4 blocks, an
//! extension kernel dominated by *matrix* operations.
//!
//! `C_ij = A_i1·B_1j + A_i2·B_2j` over 2×2 blocks: eight `m_mul` and four
//! `m_add` matrix operations, each claiming all four lanes and reading
//! two full matrices (8 vectors) per cycle — the workload class the EIT
//! memory's two-matrix-read/one-matrix-write ports were designed for,
//! and the stress case for the constraint-(7) legality of *four outputs
//! written simultaneously*.

use crate::Kernel;
use eit_dsl::{Ctx, Matrix};
use eit_ir::sem::Value;
use std::collections::HashMap;

/// Build the blocked 8×8 multiplication with deterministic inputs.
pub fn build() -> Kernel {
    let ctx = Ctx::new("blockmm");
    let mut inputs = HashMap::new();

    let mut seed = 0xC0FFEEu64;
    let mut next = || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    };
    let mut block = |name: &str| -> Matrix {
        let rows: [[f64; 4]; 4] = std::array::from_fn(|_| std::array::from_fn(|_| next()));
        let m = ctx.matrix(rows);
        for (i, r) in m.rows().iter().enumerate() {
            let _ = i;
            inputs.insert(r.node(), Value::V(r.value()));
        }
        let _ = name;
        m
    };

    // A and B as 2×2 grids of 4×4 blocks.
    let a: [[Matrix; 2]; 2] = [[block("a11"), block("a12")], [block("a21"), block("a22")]];
    let b: [[Matrix; 2]; 2] = [[block("b11"), block("b12")], [block("b21"), block("b22")]];

    let mut expected = HashMap::new();
    for i in 0..2 {
        for j in 0..2 {
            let c = a[i][0].m_mul(&b[0][j]).m_add(&a[i][1].m_mul(&b[1][j]));
            for r in c.rows() {
                expected.insert(r.node(), Value::V(r.value()));
            }
        }
    }

    Kernel {
        name: "blockmm",
        graph: ctx.finish(),
        inputs,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eit_ir::{Category, Cplx};

    #[test]
    fn structure_is_matrix_op_dominated() {
        let k = build();
        k.graph.validate().unwrap();
        assert_eq!(k.graph.count(Category::MatrixOp), 12); // 8 mul + 4 add
        assert_eq!(k.graph.count(Category::VectorOp), 0);
        // 32 input vectors + 12 ops × 4 outputs.
        assert_eq!(k.graph.count(Category::VectorData), 32 + 48);
    }

    #[test]
    fn values_match_direct_8x8_multiplication() {
        let k = build();
        // Reconstruct the 8×8 operands from the recorded inputs and
        // compare C against a direct triple loop.
        let ins = k.graph.inputs();
        assert_eq!(ins.len(), 32);
        let vec_of = |n: eit_ir::NodeId| -> [Cplx; 4] {
            match k.inputs[&n] {
                Value::V(v) => v,
                _ => panic!(),
            }
        };
        // Input order: a11, a12, a21, a22, b11, b12, b21, b22, 4 rows each.
        let mut a8 = [[Cplx::ZERO; 8]; 8];
        let mut b8 = [[Cplx::ZERO; 8]; 8];
        for blk in 0..4 {
            let (bi, bj) = (blk / 2, blk % 2);
            for r in 0..4 {
                let av = vec_of(ins[blk * 4 + r]);
                let bv = vec_of(ins[16 + blk * 4 + r]);
                for c in 0..4 {
                    a8[bi * 4 + r][bj * 4 + c] = av[c];
                    b8[bi * 4 + r][bj * 4 + c] = bv[c];
                }
            }
        }
        let mut c8 = [[Cplx::ZERO; 8]; 8];
        for i in 0..8 {
            for j in 0..8 {
                for (k2, b8k) in b8.iter().enumerate() {
                    c8[i][j] = c8[i][j] + a8[i][k2] * b8k[j];
                }
            }
        }
        // Expected map holds the 16 block-result rows (C11..C22).
        let outs = k.graph.outputs();
        assert_eq!(outs.len(), 16);
        for (idx, &o) in outs.iter().enumerate() {
            let (blk, r) = (idx / 4, idx % 4);
            let (bi, bj) = (blk / 2, blk % 2);
            let Value::V(got) = k.expected[&o] else {
                panic!()
            };
            for c in 0..4 {
                assert!(
                    got[c].approx_eq(c8[bi * 4 + r][bj * 4 + c], 1e-9),
                    "C[{bi}{bj}] row {r} col {c}"
                );
            }
        }
    }

    #[test]
    fn ii_lower_bound_reflects_lane_saturation() {
        // 12 matrix ops × 4 lanes over 4 lanes → issue bound 12.
        let k = build();
        let mut g = k.graph.clone();
        eit_ir::merge_pipeline_ops(&mut g);
        let spec = eit_arch_spec();
        assert_eq!(eit_core_iilb(&g, &spec), 12);
    }

    // Thin wrappers so this test does not need dev-dependencies beyond
    // what the crate already has.
    fn eit_arch_spec() -> eit_arch::ArchSpec {
        eit_arch::ArchSpec::eit()
    }
    fn eit_core_iilb(g: &eit_ir::Graph, spec: &eit_arch::ArchSpec) -> i32 {
        eit_core::ii_lower_bound(g, spec)
    }
}
