//! FIR — a vectorised finite-impulse-response filter, an extra kernel
//! beyond the paper's three (the paper's intro motivates exactly this
//! class of DSP kernels "run many times for each piece of data").
//!
//! `y = Σₖ cₖ ∘ x[n−k]` over `TAPS` taps, built as a chain of fused
//! multiply-accumulates — a single vector-core configuration, making it
//! the deep-pipeline stress case: maximal dependent-latency exposure for
//! the scheduler and zero steady-state reconfigurations for the modulo
//! scheduler (like MATMUL but serial instead of parallel).

use crate::Kernel;
use eit_dsl::{Ctx, Vector};
use eit_ir::sem::Value;
use std::collections::HashMap;

pub const TAPS: usize = 8;

/// Build the vectorised FIR kernel with deterministic inputs.
pub fn build() -> Kernel {
    let ctx = Ctx::new("fir");
    let mut inputs = HashMap::new();

    let mut seed = 0x9E3779B9u64;
    let mut next = || {
        seed = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    };
    let mut vin = |name: &str| -> Vector {
        let v = ctx.vector_named(name, [next(), next(), next(), next()]);
        inputs.insert(v.node(), Value::V(v.value()));
        v
    };

    let x: Vec<Vector> = (0..TAPS).map(|i| vin(&format!("x{i}"))).collect();
    let c: Vec<Vector> = (0..TAPS).map(|i| vin(&format!("c{i}"))).collect();

    // acc = c0∘x0; acc = cᵢ∘xᵢ + acc (MAC chain).
    let mut acc = x[0].v_mul(&c[0]);
    for i in 1..TAPS {
        acc = x[i].v_mac(&c[i], &acc);
    }

    let mut expected = HashMap::new();
    expected.insert(acc.node(), Value::V(acc.value()));

    Kernel {
        name: "fir",
        graph: ctx.finish(),
        inputs,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eit_ir::{Category, Cplx};

    #[test]
    fn structure_is_a_mac_chain() {
        let k = build();
        k.graph.validate().unwrap();
        assert_eq!(k.graph.count(Category::VectorOp), TAPS);
        assert_eq!(k.graph.inputs().len(), 2 * TAPS);
        // Serial chain: critical path = TAPS pipeline trips.
        let lm = eit_ir::LatencyModel::default();
        assert_eq!(k.graph.critical_path(&lm.of(&k.graph)) as usize, TAPS * 7);
    }

    #[test]
    fn value_matches_direct_convolution() {
        let k = build();
        let ins = k.graph.inputs();
        let lane = |n: eit_ir::NodeId, l: usize| -> Cplx {
            match k.inputs[&n] {
                Value::V(v) => v[l],
                _ => panic!(),
            }
        };
        let out = k.graph.outputs()[0];
        let Value::V(got) = k.expected[&out] else {
            panic!()
        };
        for l in 0..4 {
            let mut acc = Cplx::ZERO;
            for i in 0..TAPS {
                acc = acc + lane(ins[i], l) * lane(ins[TAPS + i], l);
            }
            assert!(got[l].approx_eq(acc, 1e-9), "lane {l}");
        }
    }

    #[test]
    fn two_configurations_only() {
        // One Mul + a run of Macs → exactly two distinct vector configs.
        let k = build();
        let configs: std::collections::HashSet<_> = k
            .graph
            .ids()
            .filter_map(|n| k.graph.opcode(n).and_then(|o| o.config()))
            .collect();
        assert_eq!(configs.len(), 2);
    }
}
