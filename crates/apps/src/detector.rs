//! MMSE detector — the *whole* MIMO data-detection pre-processing chain
//! the paper's introduction motivates: QRD of the augmented channel,
//! rotation of the received vector, and back-substitution.
//!
//! Solves `(HᴴH + σ²I)·x = Hᴴ·y` via the QR decomposition of `[H; σI]`:
//! `R·x = Q_topᴴ·y`, then triangular back-substitution on the scalar
//! accelerator. Exercises every unit of the architecture in one kernel —
//! vector core (squsum/dotp/scale/sub), accelerator (rsqrt/mul/sub/div)
//! and the merge unit for the final symbol vector — which makes it the
//! largest and most heterogeneous kernel in the suite (an extension
//! beyond the paper's three).

use crate::Kernel;
use eit_dsl::{Ctx, Scalar, Vector};
use eit_ir::sem::Value;
use eit_ir::Cplx;
use std::collections::HashMap;

/// Build the detector for the default channel, σ = 0.5 and a fixed
/// received vector.
pub fn build() -> Kernel {
    build_with(
        crate::qrd::default_channel(),
        0.5,
        [
            Cplx::new(0.8, -0.3),
            Cplx::new(-0.2, 0.6),
            Cplx::new(0.5, 0.1),
            Cplx::new(-0.7, -0.4),
        ],
    )
}

/// Build for an arbitrary channel, noise level and received vector.
pub fn build_with(h_cols: [[Cplx; 4]; 4], sigma: f64, y: [Cplx; 4]) -> Kernel {
    let ctx = Ctx::new("detector");
    let mut inputs = HashMap::new();

    struct Col {
        top: Vector,
        bot: Vector,
    }
    let mut cols: Vec<Col> = (0..4)
        .map(|j| {
            let top = ctx.vector_named(
                &format!("h{j}"),
                [h_cols[j][0], h_cols[j][1], h_cols[j][2], h_cols[j][3]],
            );
            let bot_vals: [Cplx; 4] = std::array::from_fn(|i| {
                if i == j {
                    Cplx::real(sigma)
                } else {
                    Cplx::ZERO
                }
            });
            let bot = ctx.vector_named(&format!("sig{j}"), bot_vals);
            inputs.insert(top.node(), Value::V(top.value()));
            inputs.insert(bot.node(), Value::V(bot.value()));
            Col { top, bot }
        })
        .collect();
    let y_vec = ctx.vector_named("y", y);
    inputs.insert(y_vec.node(), Value::V(y_vec.value()));

    // --- MGS QRD over [H; σI], keeping Q columns and R entries ---------
    let mut q: Vec<(Vector, Vector)> = Vec::with_capacity(4);
    let mut r: Vec<Vec<Option<Scalar>>> = vec![vec![None, None, None, None]; 4];
    for k in 0..4 {
        let norm2 = cols[k].top.v_squsum().add(&cols[k].bot.v_squsum());
        let inv = norm2.rsqrt();
        r[k][k] = Some(norm2.mul(&inv)); // r_kk = ‖a_k‖
        let q_top = cols[k].top.v_scale(&inv);
        let q_bot = cols[k].bot.v_scale(&inv);
        for j in (k + 1)..4 {
            let r_kj = cols[j].top.v_dotp(&q_top).add(&cols[j].bot.v_dotp(&q_bot));
            let p_top = q_top.v_scale(&r_kj);
            let p_bot = q_bot.v_scale(&r_kj);
            cols[j] = Col {
                top: cols[j].top.v_sub(&p_top),
                bot: cols[j].bot.v_sub(&p_bot),
            };
            r[k][j] = Some(r_kj);
        }
        q.push((q_top, q_bot));
    }

    // --- z = Q_topᴴ·y ----------------------------------------------------
    let z: Vec<Scalar> = (0..4).map(|k| y_vec.v_dotp(&q[k].0)).collect();

    // --- back-substitution: x_k = (z_k − Σ_{j>k} r_kj·x_j) / r_kk --------
    let mut x: Vec<Option<Scalar>> = vec![None, None, None, None];
    for k in (0..4).rev() {
        let mut acc = z[k].clone();
        for j in (k + 1)..4 {
            let prod = r[k][j].as_ref().unwrap().mul(x[j].as_ref().unwrap());
            acc = acc.sub(&prod);
        }
        x[k] = Some(acc.div(r[k][k].as_ref().unwrap()));
    }

    // --- final symbol vector through the merge unit ----------------------
    let xs: Vec<Scalar> = x.into_iter().map(Option::unwrap).collect();
    let out = ctx.merge([&xs[0], &xs[1], &xs[2], &xs[3]]);

    let mut expected = HashMap::new();
    expected.insert(out.node(), Value::V(out.value()));

    let graph = ctx.finish();
    // Some q/r intermediates are sinks too (Q is a legitimate output of
    // QRD); keep only the symbol vector as the checked expectation but
    // the graph keeps everything.
    Kernel {
        name: "detector",
        graph,
        inputs,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eit_ir::Category;

    /// 4×4 complex linear solve by Gaussian elimination (reference).
    fn solve4(mut a: [[Cplx; 4]; 4], mut b: [Cplx; 4]) -> [Cplx; 4] {
        for col in 0..4 {
            // Partial pivot.
            let piv = (col..4)
                .max_by(|&i, &j| a[i][col].abs2().partial_cmp(&a[j][col].abs2()).unwrap())
                .unwrap();
            a.swap(col, piv);
            b.swap(col, piv);
            let d = a[col][col];
            for i in (col + 1)..4 {
                let f = a[i][col] / d;
                for k in col..4 {
                    a[i][k] = a[i][k] - a[col][k] * f;
                }
                b[i] = b[i] - b[col] * f;
            }
        }
        let mut x = [Cplx::ZERO; 4];
        for i in (0..4).rev() {
            let mut acc = b[i];
            for k in (i + 1)..4 {
                acc = acc - a[i][k] * x[k];
            }
            x[i] = acc / a[i][i];
        }
        x
    }

    #[test]
    fn matches_normal_equations_solution() {
        let h = crate::qrd::default_channel();
        let sigma = 0.5;
        let y = [
            Cplx::new(0.8, -0.3),
            Cplx::new(-0.2, 0.6),
            Cplx::new(0.5, 0.1),
            Cplx::new(-0.7, -0.4),
        ];
        // Reference: (HᴴH + σ²I) x = Hᴴ y, h is column-major.
        let mut a = [[Cplx::ZERO; 4]; 4];
        let mut rhs = [Cplx::ZERO; 4];
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    // (HᴴH)_{ij} = Σ_k conj(H[k][i]) H[k][j]
                    a[i][j] = a[i][j] + h[i][k].conj() * h[j][k];
                }
            }
            a[i][i] = a[i][i] + Cplx::real(sigma * sigma);
            for k in 0..4 {
                rhs[i] = rhs[i] + h[i][k].conj() * y[k];
            }
        }
        let x_ref = solve4(a, rhs);

        let kernel = build();
        let out = kernel.graph.outputs();
        let sym = out
            .iter()
            .find(|&&n| kernel.expected.contains_key(&n))
            .unwrap();
        let Value::V(x_got) = kernel.expected[sym] else {
            panic!()
        };
        for k in 0..4 {
            assert!(
                x_got[k].approx_eq(x_ref[k], 1e-9),
                "x[{k}]: {:?} vs {:?}",
                x_got[k],
                x_ref[k]
            );
        }
    }

    #[test]
    fn graph_exercises_every_unit() {
        let k = build();
        k.graph.validate().unwrap();
        assert!(k.graph.count(Category::VectorOp) > 50);
        assert!(k.graph.count(Category::ScalarOp) > 20);
        assert_eq!(k.graph.count(Category::Merge), 1);
        // Largest kernel in the suite.
        assert!(k.graph.len() > 190, "|V| = {}", k.graph.len());
    }
}
