//! # eit-apps — the paper's application kernels
//!
//! The three kernels of the evaluation (§4), each written in the DSL so
//! that building it yields both the dataflow IR and reference values for
//! functional checking:
//!
//! - [`qrd`] — the Modified-Gram-Schmidt MMSE QR decomposition used in
//!   MIMO pre-processing (the paper's main target, Tables 1–3);
//! - [`arf`] — the auto-regression filter, lifted to vector basic units
//!   as §4.3 describes (Table 3);
//! - [`matmul`] — Listing 1: `C = A·Aᴴ` via 16 dot products and 4 merges
//!   (Table 3, fig. 3);
//! - [`fir`] — a vectorised FIR filter (extra kernel beyond the paper:
//!   the serial deep-pipeline stress case);
//! - [`detector`] — the full MMSE detection chain (QRD + rotation +
//!   back-substitution), the largest and most heterogeneous kernel;
//! - [`blockmm`] — 8×8 blocked matrix multiplication, the matrix-op
//!   stress case (extension);
//! - [`synth`] — a seeded random layered-DAG generator for stress tests
//!   and scaling benches beyond the paper.

// Indexed loops mirror the matrix maths in the kernels 1:1.
#![allow(clippy::needless_range_loop, clippy::manual_memcpy)]

pub mod arf;
pub mod blockmm;
pub mod detector;
pub mod fir;
pub mod matmul;
pub mod qrd;
pub mod synth;

use eit_ir::sem::Value;
use eit_ir::{Graph, NodeId};
use std::collections::HashMap;

/// A kernel instance: the recorded IR plus the values of its inputs and
/// the expected values of its outputs (from the DSL's eager evaluation).
pub struct Kernel {
    pub name: &'static str,
    /// The IR as the DSL emitted it (pre merge-pass).
    pub graph: Graph,
    /// Values of the application inputs.
    pub inputs: HashMap<NodeId, Value>,
    /// Expected values of the application outputs.
    pub expected: HashMap<NodeId, Value>,
}

impl Kernel {
    /// `|V|, |E|, |Cr.P|, #v_data` like the paper's tables, using the
    /// default latency model.
    pub fn summary(&self) -> String {
        let lm = eit_ir::LatencyModel::default();
        let s = self.graph.summary(&lm.of(&self.graph));
        s
    }
}

/// Build a kernel by name (`"qrd"`, `"arf"`, `"matmul"`).
pub fn by_name(name: &str) -> Option<Kernel> {
    match name {
        "qrd" => Some(qrd::build()),
        "arf" => Some(arf::build()),
        "matmul" => Some(matmul::build()),
        "fir" => Some(fir::build()),
        "detector" => Some(detector::build()),
        "blockmm" => Some(blockmm::build()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_build_valid_bipartite_dags() {
        for name in ["qrd", "arf", "matmul", "fir", "detector", "blockmm"] {
            let k = by_name(name).unwrap();
            k.graph.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!k.inputs.is_empty(), "{name} has inputs");
            assert!(!k.expected.is_empty(), "{name} has outputs");
        }
    }

    #[test]
    fn unknown_kernel_is_none() {
        assert!(by_name("nope").is_none());
    }
}
