//! Synthetic layered-DAG kernels for stress tests and scaling studies
//! beyond the paper's three applications.
//!
//! The generator emits graphs with the same statistical character as the
//! paper's kernels — layers of vector operations with forward data
//! dependencies, a sprinkling of scalar-accelerator reductions — with a
//! seeded RNG so every instance is reproducible.

use crate::Kernel;
use eit_dsl::{Ctx, Scalar, Vector};
use eit_ir::sem::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SynthParams {
    pub seed: u64,
    pub layers: usize,
    /// Vector ops per layer.
    pub width: usize,
    /// Probability that a layer op reduces to a scalar and returns
    /// through the accelerator.
    pub scalar_fraction: f64,
}

impl Default for SynthParams {
    fn default() -> Self {
        SynthParams {
            seed: 42,
            layers: 4,
            width: 6,
            scalar_fraction: 0.15,
        }
    }
}

/// Generate a synthetic kernel.
pub fn build(p: SynthParams) -> Kernel {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let ctx = Ctx::new("synth");
    let mut inputs = HashMap::new();

    let n_inputs = p.width.max(2);
    let mut frontier: Vec<Vector> = (0..n_inputs)
        .map(|i| {
            let vals: [f64; 4] = std::array::from_fn(|_| rng.gen_range(-1.0..1.0));
            let v = ctx.vector_named(&format!("in{i}"), vals);
            inputs.insert(v.node(), Value::V(v.value()));
            v
        })
        .collect();

    let mut scalar_pool: Vec<Scalar> = Vec::new();

    for _ in 0..p.layers {
        let mut next: Vec<Vector> = Vec::with_capacity(p.width);
        for _ in 0..p.width {
            let a = &frontier[rng.gen_range(0..frontier.len())];
            let b = &frontier[rng.gen_range(0..frontier.len())];
            if rng.gen_bool(p.scalar_fraction) {
                // Reduce, push through the accelerator, and scale back.
                let s = a.v_dotp(b);
                let t = s.add(&s).sqrt();
                scalar_pool.push(t.clone());
                next.push(a.v_scale(&t));
            } else {
                next.push(match rng.gen_range(0..4) {
                    0 => a.v_add(b),
                    1 => a.v_sub(b),
                    2 => a.v_mul(b),
                    _ => {
                        let c = &frontier[rng.gen_range(0..frontier.len())];
                        a.v_mac(b, c)
                    }
                });
            }
        }
        frontier = next;
    }

    let graph = ctx.finish();
    let mut expected = HashMap::new();
    // All sinks are expectations; values are only known for the frontier
    // vectors we still hold.
    for v in &frontier {
        expected.insert(v.node(), Value::V(v.value()));
    }
    let sinks: std::collections::HashSet<_> = graph.outputs().into_iter().collect();
    expected.retain(|n, _| sinks.contains(n));

    Kernel {
        name: "synth",
        graph,
        inputs,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = build(SynthParams::default());
        let b = build(SynthParams::default());
        assert_eq!(a.graph.len(), b.graph.len());
        assert_eq!(eit_ir::to_xml(&a.graph), eit_ir::to_xml(&b.graph));
    }

    #[test]
    fn different_seeds_differ() {
        let a = build(SynthParams::default());
        let b = build(SynthParams {
            seed: 7,
            ..Default::default()
        });
        assert_ne!(eit_ir::to_xml(&a.graph), eit_ir::to_xml(&b.graph));
    }

    #[test]
    fn scales_with_parameters() {
        let small = build(SynthParams {
            layers: 2,
            width: 3,
            ..Default::default()
        });
        let large = build(SynthParams {
            layers: 6,
            width: 10,
            ..Default::default()
        });
        assert!(large.graph.len() > 2 * small.graph.len());
        small.graph.validate().unwrap();
        large.graph.validate().unwrap();
    }
}
