//! MATMUL — Listing 1 of the paper, verbatim.
//!
//! A 4×4 matrix is multiplied with its (conjugate) transpose by taking
//! the dot product of every row pair — "instead of an explicit transpose
//! operation, we access each *j*th vector in A as a column vector" — and
//! merging each row of four scalar results back into a vector.
//!
//! The resulting IR matches fig. 3 / Table 3 exactly:
//! `|V| = 44, |E| = 68` (16 `v_dotP` + 16 scalar outputs + 4 merges +
//! 4 vector outputs + 4 vector inputs; every dot product has two operands).

use crate::Kernel;
use eit_dsl::{Ctx, Scalar};
use eit_ir::sem::Value;
use std::collections::HashMap;

/// Build the Listing-1 MATMUL kernel with the paper's hard-coded inputs.
pub fn build() -> Kernel {
    let ctx = Ctx::new("matmul");
    // Hard-coded input vectors of Listing 1.
    let a = [
        ctx.vector_named("v1", [1.0, 2.0, 3.0, 4.0]),
        ctx.vector_named("v2", [2.0, 3.0, 4.0, 5.0]),
        ctx.vector_named("v3", [3.0, 4.0, 5.0, 6.0]),
        ctx.vector_named("v4", [4.0, 5.0, 6.0, 7.0]),
    ];

    let mut inputs = HashMap::new();
    for row in &a {
        inputs.insert(row.node(), Value::V(row.value()));
    }

    let mut expected = HashMap::new();
    for row in &a {
        // scalars(j) = A(i) v_dotP A(j)
        let scalars: Vec<Scalar> = a.iter().map(|col| row.v_dotp(col)).collect();
        let merged = ctx.merge([&scalars[0], &scalars[1], &scalars[2], &scalars[3]]);
        expected.insert(merged.node(), Value::V(merged.value()));
    }

    Kernel {
        name: "matmul",
        graph: ctx.finish(),
        inputs,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eit_ir::{Category, Cplx};

    #[test]
    fn shape_matches_fig3_and_table3() {
        let k = build();
        assert_eq!(k.graph.len(), 44);
        assert_eq!(k.graph.edge_count(), 68);
        assert_eq!(k.graph.count(Category::VectorOp), 16);
        assert_eq!(k.graph.count(Category::Merge), 4);
        assert_eq!(k.graph.count(Category::ScalarData), 16);
        assert_eq!(k.graph.count(Category::VectorData), 8);
        // Critical path: dotp (7) → merge (1) = 8, as in Table 3.
        let lm = eit_ir::LatencyModel::default();
        assert_eq!(k.graph.critical_path(&lm.of(&k.graph)), 8);
    }

    #[test]
    fn values_match_reference_gram_matrix() {
        let k = build();
        // With real inputs C = A·Aᵀ; C[0][0] = 1+4+9+16 = 30.
        let rows: Vec<[f64; 4]> = vec![
            [1.0, 2.0, 3.0, 4.0],
            [2.0, 3.0, 4.0, 5.0],
            [3.0, 4.0, 5.0, 6.0],
            [4.0, 5.0, 6.0, 7.0],
        ];
        let dot = |x: &[f64; 4], y: &[f64; 4]| -> f64 { x.iter().zip(y).map(|(a, b)| a * b).sum() };
        let outs = k.graph.outputs();
        assert_eq!(outs.len(), 4);
        for (i, &o) in outs.iter().enumerate() {
            let Value::V(v) = k.expected[&o] else {
                panic!()
            };
            for j in 0..4 {
                assert!(v[j].approx_eq(Cplx::real(dot(&rows[i], &rows[j])), 1e-9));
            }
        }
    }
}
