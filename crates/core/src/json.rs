//! A minimal JSON value with a writer *and* a parser, so the metrics
//! files the harness emits can be round-tripped in tests (and by the CI
//! smoke check) without external dependencies.
//!
//! Objects keep insertion order (files diff cleanly), numbers are `f64`
//! (integers survive up to 2^53, far beyond any counter here), and the
//! parser accepts any standard JSON document. Two writers: [`Json::render`]
//! (indented, for metrics files) and [`Json::render_compact`] (one line,
//! no whitespace — the `eit-serve/1` JSONL wire format).
//!
//! The parser is **service-boundary safe**: it never panics on malformed
//! input, and nesting depth is capped at [`MAX_DEPTH`] so an adversarial
//! `[[[[…` document reports a [`ParseError`] instead of overflowing the
//! stack of whatever worker thread decoded it (a stack overflow aborts
//! the process — `catch_unwind` at a request boundary cannot contain it).

use std::fmt::Write as _;

/// Maximum container nesting the parser accepts. Deep enough for any
/// document this toolchain emits (metrics nest ~4 levels), shallow
/// enough that the recursive-descent parser cannot be driven into a
/// stack overflow by untrusted input.
pub const MAX_DEPTH: usize = 96;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Integer counters: exact as long as they fit in 2^53.
    pub fn int(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64()
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Serialize on one line with no optional whitespace — the JSONL
    /// wire form (`\n` never appears except escaped inside strings).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no Inf/NaN
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting, checked against [`MAX_DEPTH`].
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Decode a surrogate pair if one follows.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            self.pos -= 1; // compensated by the += 1 below
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // resynchronising on char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str("x/1")),
            ("n".into(), Json::int(42)),
            ("pi".into(), Json::num(3.25)),
            ("neg".into(), Json::Num(-7.0)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
            (
                "items".into(),
                Json::Arr(vec![Json::int(1), Json::str("two"), Json::Bool(false)]),
            ),
            ("quoted \"name\"\n".into(), Json::str("tab\there")),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_foreign_documents() {
        let v = Json::parse(r#" { "a" : [ 1e3 , -2.5 , "A😀" ] } "#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1000.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_str(), Some("A😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "truth",
            "1 2",
            "\"unterminated",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::int(123456789).render(), "123456789\n");
        assert_eq!(Json::num(0.5).render(), "0.5\n");
    }

    #[test]
    fn compact_rendering_round_trips_on_one_line() {
        let doc = Json::Obj(vec![
            ("v".into(), Json::str("eit-serve/1")),
            ("ok".into(), Json::Bool(true)),
            ("n".into(), Json::int(7)),
            ("xs".into(), Json::Arr(vec![Json::int(1), Json::Null])),
            ("s".into(), Json::str("line\nbreak")),
        ]);
        let line = doc.render_compact();
        assert!(!line.contains('\n'), "compact output must be one line");
        assert_eq!(
            line,
            r#"{"v":"eit-serve/1","ok":true,"n":7,"xs":[1,null],"s":"line\nbreak"}"#
        );
        assert_eq!(Json::parse(&line).unwrap(), doc);
    }

    #[test]
    fn adversarial_nesting_is_an_error_not_a_stack_overflow() {
        let deep = "[".repeat(100_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "got: {}", err.message);
        let deep_obj = "{\"a\":".repeat(100_000);
        assert!(Json::parse(&deep_obj).is_err());
        // Wide-but-shallow stays fine, and sibling containers do not
        // accumulate depth.
        let wide = format!("[{}]", vec!["[]"; 10_000].join(","));
        assert!(Json::parse(&wide).is_ok());
        // Exactly at the cap parses; one past does not.
        let at = format!("{}{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&at).is_ok());
        let past = format!("{}{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        assert!(Json::parse(&past).is_err());
    }
}
