//! Canonical textual renderings of compilation results.
//!
//! `eitc` prints these strings to stdout, and the `eit-serve` daemon
//! returns the very same strings in its responses — one implementation,
//! so a cached service response is byte-identical to a one-shot compile
//! by construction (the CI serve gate `cmp`s the two).

use crate::modulo::ModuloResult;
use crate::pipeline::Compiled;
use eit_ir::Graph;
use std::fmt::Write as _;

/// The straight-line compile report exactly as `eitc <kernel>` prints
/// it: a status summary line followed by the machine listing.
pub fn render_compiled(out: &Compiled) -> String {
    format!(
        "; status {:?}; {} instructions, {} reconfig switches, utilization {:.1}%\n{}",
        out.status,
        out.program.n_instructions,
        out.program.reconfig_switches,
        out.program.utilization * 100.0,
        out.program.listing
    )
}

/// The modulo-schedule report exactly as `eitc <kernel> --modulo`
/// prints it: the II summary line followed by the steady-state rows in
/// (time, name) order.
pub fn render_modulo(g: &Graph, r: &ModuloResult) -> String {
    let mut out = format!(
        "; modulo schedule: II {} ({} switches, actual {}), throughput {:.4} iter/cc\n",
        r.ii_issue, r.switches, r.actual_ii, r.throughput
    );
    let mut rows: Vec<(i32, String)> =
        r.t.iter()
            .map(|(&n, &t)| (t, format!("  t={t:3} k={:2}  {}", r.k[&n], g.node(n).name)))
            .collect();
    rows.sort();
    for (_, row) in rows {
        let _ = writeln!(out, "{row}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulo::{modulo_schedule, ModuloOptions};
    use crate::pipeline::{compile, CompileOptions};
    use eit_arch::ArchSpec;
    use eit_dsl::Ctx;

    fn tiny() -> Graph {
        let ctx = Ctx::new("tiny");
        let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
        let b = ctx.vector([2.0, 3.0, 4.0, 5.0]);
        let _ = a.v_add(&b).v_dotp(&b).sqrt();
        ctx.finish()
    }

    #[test]
    fn compiled_rendering_has_status_line_and_listing() {
        let out = compile(tiny(), &ArchSpec::eit(), &CompileOptions::default()).unwrap();
        let s = render_compiled(&out);
        assert!(s.starts_with("; status Optimal; "));
        assert!(s.contains("configuration stream"));
        assert!(s.ends_with('\n'));
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(s, render_compiled(&out));
    }

    #[test]
    fn modulo_rendering_is_deterministic() {
        let g = tiny();
        let spec = ArchSpec::eit();
        let r = modulo_schedule(&g, &spec, &ModuloOptions::default()).unwrap();
        let s = render_modulo(&g, &r);
        assert!(s.starts_with("; modulo schedule: II "));
        assert!(s.lines().count() > 1);
        assert_eq!(s, render_modulo(&g, &r));
    }
}
