//! Phase timing spans for the scheduler pipeline.
//!
//! A [`PhaseTimings`] is an ordered list of named wall-clock spans
//! (model build, longest-path preprocessing, search, extraction,
//! validation, simulation…). Spans may nest — `model_build` includes
//! `longest_path` — so [`PhaseTimings::total`] is not meaningful across
//! arbitrary span sets; callers sum the top-level spans they know are
//! disjoint.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Named wall-clock spans in the order they were recorded.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimings {
    pub spans: Vec<(String, Duration)>,
}

impl PhaseTimings {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `f`'s wall time under `name`.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.push(name, t0.elapsed());
        r
    }

    pub fn push(&mut self, name: &str, d: Duration) {
        self.spans.push((name.to_string(), d));
    }

    /// Total time recorded under `name`, if any. A name may repeat —
    /// `extend` folds callees' spans in, and loops time the same phase
    /// per iteration — so this sums every span with that name rather
    /// than silently returning the first.
    pub fn get(&self, name: &str) -> Option<Duration> {
        let mut found = false;
        let mut sum = Duration::ZERO;
        for (n, d) in &self.spans {
            if n == name {
                found = true;
                sum += *d;
            }
        }
        found.then_some(sum)
    }

    /// Append all of `other`'s spans (used to fold a callee's timings
    /// into the caller's).
    pub fn extend(&mut self, other: &PhaseTimings) {
        self.spans.extend(other.spans.iter().cloned());
    }

    /// Sum of all recorded spans. Only meaningful when the spans are
    /// disjoint (see module docs).
    pub fn total(&self) -> Duration {
        self.spans.iter().map(|(_, d)| *d).sum()
    }

    /// Human-readable table, one span per line, in record order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<28} {:>12}", "phase", "time_us");
        for (name, d) in &self.spans {
            let _ = writeln!(out, "{:<28} {:>12}", name, d.as_micros());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_in_order_and_extend() {
        let mut t = PhaseTimings::new();
        let x = t.time("a", || 42);
        assert_eq!(x, 42);
        t.push("b", Duration::from_micros(5));
        let mut outer = PhaseTimings::new();
        outer.push("pre", Duration::from_micros(1));
        outer.extend(&t);
        assert_eq!(outer.spans.len(), 3);
        assert_eq!(outer.spans[1].0, "a");
        assert_eq!(outer.get("b"), Some(Duration::from_micros(5)));
        assert!(outer.total() >= Duration::from_micros(6));
        let table = outer.render();
        assert!(table.contains("phase") && table.contains("pre"));
    }

    #[test]
    fn get_aggregates_duplicate_names() {
        let mut t = PhaseTimings::new();
        t.push("search", Duration::from_micros(3));
        t.push("extract", Duration::from_micros(1));
        t.push("search", Duration::from_micros(4));
        assert_eq!(t.get("search"), Some(Duration::from_micros(7)));
        assert_eq!(t.get("extract"), Some(Duration::from_micros(1)));
        assert_eq!(t.get("missing"), None);
        // The raw spans keep every entry for order-sensitive consumers.
        assert_eq!(t.spans.len(), 3);
    }
}
