//! Graph replication: M independent copies of a kernel, used by the
//! iteration-overlap experiments (§4.3) and their validation.

use eit_ir::{Graph, NodeId};

/// `m` disjoint copies of `g` in one graph. Returns the combined graph and
/// the node map: `map[iter][orig.idx()]` is the copy's node id.
pub fn replicate(g: &Graph, m: usize) -> (Graph, Vec<Vec<NodeId>>) {
    let mut out = Graph::new(&format!("{}x{}", g.name, m));
    let mut map: Vec<Vec<NodeId>> = Vec::with_capacity(m);
    for it in 0..m {
        let mut ids = Vec::with_capacity(g.len());
        for n in g.ids() {
            let node = g.node(n);
            ids.push(out.add_node(node.kind, &format!("{}#{}", node.name, it)));
        }
        for (f, t) in g.edges() {
            out.add_edge(ids[f.idx()], ids[t.idx()]);
        }
        map.push(ids);
    }
    (out, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eit_ir::{CoreOp, DataKind, Opcode};

    #[test]
    fn copies_are_disjoint_and_isomorphic() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        g.add_op_with_output(Opcode::vector(CoreOp::Add), &[a, b], DataKind::Vector, "x");
        let (r, map) = replicate(&g, 3);
        assert_eq!(r.len(), 3 * g.len());
        assert_eq!(r.edge_count(), 3 * g.edge_count());
        r.validate().unwrap();
        // No cross-copy edges.
        for (f, t) in r.edges() {
            let cf = map.iter().position(|ids| ids.contains(&f)).unwrap();
            let ct = map.iter().position(|ids| ids.contains(&t)).unwrap();
            assert_eq!(cf, ct);
        }
    }

    #[test]
    fn single_copy_is_identity_shape() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Scalar, "a");
        g.add_op_with_output(
            Opcode::Scalar(eit_ir::ScalarOp::Neg),
            &[a],
            DataKind::Scalar,
            "n",
        );
        let (r, _) = replicate(&g, 1);
        assert_eq!(r.len(), g.len());
        assert_eq!(r.edge_count(), g.edge_count());
    }
}
