//! Code generation: render a schedule with memory allocation into the
//! machine-code artefact of the flow (fig. 2) — a commented configuration
//! program for the EIT's per-cycle-reloadable configuration memories,
//! plus the memory map the allocator chose.
//!
//! The output is the textual form of [`eit_arch::ConfigStream`]: one line
//! per active cycle with the vector-core configuration word, issued lane
//! operations, accelerator/index-merge activity and the memory accesses
//! with their slot/bank/line/page coordinates. It contains "all
//! information needed by a code generator turning this schedule into
//! machine code" (§1) — and in this reproduction it *is* that final form.

use eit_arch::{ArchSpec, ConfigStream, Geometry, Schedule};
use eit_ir::{Category, Graph, NodeId, VectorConfig};
use std::fmt::Write as _;

/// A generated program: the listing plus summary metrics.
#[derive(Debug)]
pub struct Program {
    pub listing: String,
    pub n_cycles: usize,
    pub n_instructions: usize,
    pub reconfig_switches: usize,
    pub utilization: f64,
}

fn config_word(cfg: &VectorConfig) -> String {
    let mut w = String::new();
    if cfg.matrix {
        w.push_str("M:");
    } else {
        w.push_str("V:");
    }
    if let Some((p, idx)) = cfg.pre {
        let _ = write!(w, "{p:?}@{idx}>");
    }
    let _ = write!(w, "{:?}", cfg.core);
    if let Some(p) = cfg.post {
        let _ = write!(w, ">{p:?}");
    }
    w
}

/// Generate the configuration program for a scheduled kernel.
pub fn generate(g: &Graph, spec: &ArchSpec, sched: &Schedule) -> Program {
    let cs = ConfigStream::from_schedule(g, spec, sched);
    let geo = Geometry::of(spec);
    let mut out = String::new();

    let _ = writeln!(out, "; kernel: {}", g.name);
    let _ = writeln!(
        out,
        "; machine: {} lanes, {}-stage pipeline, {} banks x {} slots, {} pages",
        spec.n_lanes,
        spec.pipeline_depth(),
        spec.n_banks,
        spec.slots_per_bank,
        spec.n_pages()
    );
    let _ = writeln!(out, "; makespan: {} cc", sched.makespan);

    // Memory map.
    let _ = writeln!(
        out,
        ";\n; memory map (slot: bank/line/page <- datum [lifetime))"
    );
    let mut vdata: Vec<NodeId> = g
        .ids()
        .filter(|&n| g.category(n) == Category::VectorData)
        .collect();
    vdata.sort_by_key(|&n| (sched.slot_of(n), sched.start_of(n)));
    for d in vdata {
        if let Some(slot) = sched.slot_of(d) {
            let (s0, s1) = sched.lifetime(g, d);
            let _ = writeln!(
                out,
                ";   slot {:3}: b{:02}/l{}/p{} <- {:<18} [{s0:4}, {s1:4})",
                slot,
                geo.bank(slot),
                geo.line(slot),
                geo.page(slot),
                g.node(d).name,
            );
        }
    }

    // Instruction stream.
    let _ = writeln!(out, ";\n; configuration stream");
    let mut n_instructions = 0;
    let mut prev_cfg: Option<VectorConfig> = None;
    for (t, c) in cs.cycles.iter().enumerate() {
        if c.is_idle() && c.writes.is_empty() {
            continue;
        }
        let mut line = format!("{t:5}: ");
        if let Some(cfg) = &c.vector_config {
            if prev_cfg.is_some() && prev_cfg != Some(*cfg) {
                line.push_str("RECFG ");
            }
            prev_cfg = Some(*cfg);
            let names: Vec<&str> = c
                .vector_ops
                .iter()
                .map(|&op| g.node(op).name.as_str())
                .collect();
            let _ = write!(line, "{:<24} lanes={names:?} ", config_word(cfg));
            n_instructions += 1;
        }
        if let Some(op) = c.scalar_op {
            let _ = write!(
                line,
                "ACC[{:?} {}] ",
                g.opcode(op).unwrap(),
                g.node(op).name
            );
            n_instructions += 1;
        }
        if let Some(op) = c.index_merge_op {
            let _ = write!(line, "IDX/MRG[{}] ", g.node(op).name);
            n_instructions += 1;
        }
        if !c.reads.is_empty() {
            let slots: Vec<u32> = c.reads.iter().map(|&(_, s)| s).collect();
            let _ = write!(line, "RD{slots:?} ");
        }
        if !c.writes.is_empty() {
            let slots: Vec<u32> = c.writes.iter().map(|&(_, s)| s).collect();
            let _ = write!(line, "WR{slots:?}");
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }

    Program {
        n_cycles: cs.cycles.len(),
        n_instructions,
        reconfig_switches: cs.reconfig_switches(),
        utilization: cs.utilization(g, spec),
        listing: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{schedule, SchedulerOptions};
    use eit_dsl::Ctx;

    fn scheduled_chain() -> (Graph, ArchSpec, Schedule) {
        let ctx = Ctx::new("chain");
        let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
        let b = ctx.vector([2.0, 3.0, 4.0, 5.0]);
        let x = a.v_add(&b);
        let _ = x.v_dotp(&b).sqrt();
        let g = ctx.finish();
        let spec = ArchSpec::eit();
        let r = schedule(&g, &spec, &SchedulerOptions::default());
        (g, spec, r.schedule.unwrap())
    }

    #[test]
    fn listing_contains_every_section() {
        let (g, spec, s) = scheduled_chain();
        let p = generate(&g, &spec, &s);
        assert!(p.listing.contains("memory map"));
        assert!(p.listing.contains("configuration stream"));
        assert!(p.listing.contains("V:Add"));
        assert!(p.listing.contains("V:DotP"));
        assert!(p.listing.contains("ACC["));
        assert!(p.listing.contains("RD["));
        assert!(p.listing.contains("WR["));
    }

    #[test]
    fn reconfig_markers_match_metric() {
        let (g, spec, s) = scheduled_chain();
        let p = generate(&g, &spec, &s);
        let markers = p.listing.matches("RECFG").count();
        assert_eq!(markers, p.reconfig_switches);
        assert!(p.reconfig_switches >= 1); // add → dotp switches
    }

    #[test]
    fn instruction_count_covers_all_ops() {
        let (g, spec, s) = scheduled_chain();
        let p = generate(&g, &spec, &s);
        // 2 vector issues + 1 accelerator op = 3 instruction slots.
        assert_eq!(p.n_instructions, 3);
        assert_eq!(p.n_cycles as i32, s.makespan + 1);
    }

    #[test]
    fn memory_map_lists_all_allocated_vectors() {
        let (g, spec, s) = scheduled_chain();
        let p = generate(&g, &spec, &s);
        let vdata = g.count(Category::VectorData);
        assert_eq!(p.listing.matches("slot ").count(), vdata);
    }
}
