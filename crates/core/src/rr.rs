//! Toolchain-level record/replay glue (`eit-trace/1`).
//!
//! [`crate::model::schedule`] and [`crate::modulo::modulo_schedule`] emit
//! [`SearchEvent`] streams; `eit_cp::record` persists them and
//! `eit_cp::replay` re-validates one search against its recording. This
//! module binds the two to the *toolchain inputs*: canonical hashes of
//! the IR and the architecture go into the trace header so a replay can
//! refuse a trace recorded for a different problem, config strings pin
//! the solver options that shape the trajectory, and the replay drivers
//! rebuild the exact model + [`SearchConfig`] the recorded run used.
//!
//! A modulo recording is a *merged* stream: one [`SearchEvent::Stream`]
//! marker per candidate II (resource bound up to and including the
//! winner, in II order) followed by that probe's events. Replay splits
//! the recording at the markers and re-validates each probe's CSP
//! independently — a statically refuted candidate (no search) must have
//! an empty stream.

use crate::model::{build_model, SchedulerOptions};
use crate::modulo::{build_probe, ModuloOptions};
use eit_arch::ArchSpec;
use eit_cp::trace::SearchEvent;
use eit_cp::{fnv1a, DivergenceReport, ReplayOptions, SearchConfig, TraceHeader};
use eit_ir::Graph;

/// Default store-digest cadence for recorded runs: a
/// [`SearchEvent::StateHash`] every N search nodes. Dense enough to
/// localise a domain-trajectory mismatch, sparse enough to stay a
/// negligible fraction of the event volume.
pub const DEFAULT_HASH_EVERY: u64 = 64;

/// Canonical hash of the IR: FNV-1a over its XML serialisation (the
/// interchange format is the canonical form — stable node order, all
/// semantic fields).
pub fn ir_hash(g: &Graph) -> u64 {
    fnv1a(eit_ir::to_xml(g).as_bytes())
}

/// Canonical hash of an [`ArchSpec`]: FNV-1a over a fixed rendering of
/// every field that reaches the solver.
pub fn arch_hash(spec: &ArchSpec) -> u64 {
    use std::fmt::Write as _;
    let mut s = format!(
        "lanes={};banks={};page={};spb={};reads={};writes={};reconfig={};cap={:?};units=",
        spec.n_lanes,
        spec.n_banks,
        spec.page_size,
        spec.slots_per_bank,
        spec.max_vector_reads,
        spec.max_vector_writes,
        spec.reconfig_cost,
        spec.slot_cap,
    );
    for u in &spec.units.units {
        let _ = write!(s, "[{}x{}:", u.name, u.count);
        for o in &u.ops {
            let _ = write!(
                s,
                "({},{},{},{})",
                o.class.name(),
                o.latency,
                o.occupancy,
                o.width
            );
        }
        s.push(']');
    }
    fnv1a(s.as_bytes())
}

/// The solver options that shape a straight-line search trajectory,
/// rendered for the trace header. Wall-clock budgets and worker counts
/// are deliberately excluded: deadlines are nondeterministic and the
/// merged event stream is `jobs`-independent by construction, so traces
/// recorded under different budgets/parallelism stay comparable. The
/// restart/nogood policy **is** included — restarts replay the tree in
/// a different order — while the bitset/interval domain representation
/// is **excluded**: it changes propagation speed, never the trajectory,
/// so recordings stay comparable across `--no-bitset` A/B runs.
pub fn schedule_config_string(opts: &SchedulerOptions) -> String {
    format!(
        "mode=schedule;memory={};horizon={};minimize_slots={};fifo={};node_limit={};restarts={}",
        u8::from(opts.memory),
        opts.horizon
            .map_or_else(|| "auto".into(), |h| h.to_string()),
        u8::from(opts.minimize_slots),
        u8::from(opts.fifo_engine),
        opts.node_limit
            .map_or_else(|| "none".into(), |n| n.to_string()),
        opts.restarts
            .map_or_else(|| "off".into(), |rc| rc.config_token()),
    )
}

/// As [`schedule_config_string`], for a modulo sweep. The decision
/// backend (`cp`, `sat`, `race`) is part of the token: backends agree on
/// the winning II but not on the concrete assignment, so two runs that
/// differ only in backend are distinct computations for caching and
/// tracing purposes.
pub fn modulo_config_string(opts: &ModuloOptions) -> String {
    format!(
        "mode=modulo;incl={};max_ii={};restarts={};backend={}",
        u8::from(opts.include_reconfig),
        opts.max_ii.map_or_else(|| "auto".into(), |n| n.to_string()),
        opts.restarts
            .map_or_else(|| "off".into(), |rc| rc.config_token()),
        opts.backend.as_str(),
    )
}

/// Content address of one solver run: the canonical input hashes plus
/// the trajectory-shaping config string. Two runs with equal keys are
/// the *same computation* — same model, same search, same answer — so
/// the key is what a schedule cache (the `eit-serve` daemon) stores
/// results under. Wall-clock budgets, worker counts, and cancellation
/// deadlines are deliberately outside the key (they decide *whether* a
/// run finishes, never *what* it produces), so a hot kernel compiled
/// under any request budget serves every later request for it.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SolveKey {
    /// [`ir_hash`] of the graph exactly as the solver sees it (after
    /// whatever passes the pipeline ran).
    pub ir_hash: u64,
    /// [`arch_hash`] of the target [`ArchSpec`].
    pub arch_hash: u64,
    /// [`schedule_config_string`] or [`modulo_config_string`].
    pub config: String,
}

impl SolveKey {
    /// Key for a straight-line scheduling run.
    pub fn schedule(g: &Graph, spec: &ArchSpec, opts: &SchedulerOptions) -> SolveKey {
        SolveKey {
            ir_hash: ir_hash(g),
            arch_hash: arch_hash(spec),
            config: schedule_config_string(opts),
        }
    }

    /// Key for a modulo-scheduling sweep.
    pub fn modulo(g: &Graph, spec: &ArchSpec, opts: &ModuloOptions) -> SolveKey {
        SolveKey {
            ir_hash: ir_hash(g),
            arch_hash: arch_hash(spec),
            config: modulo_config_string(opts),
        }
    }

    /// Fixed-width printable form (`ir-arch-config`, each fnv64 hex) —
    /// the content address reported in service responses.
    pub fn content_address(&self) -> String {
        format!(
            "{:016x}-{:016x}-{:016x}",
            self.ir_hash,
            self.arch_hash,
            fnv1a(self.config.as_bytes())
        )
    }
}

/// Build the `eit-trace/1` header for recording a straight-line
/// scheduling run of `g` on `spec`.
pub fn schedule_header(g: &Graph, spec: &ArchSpec, opts: &SchedulerOptions) -> TraceHeader {
    TraceHeader {
        ir_hash: ir_hash(g),
        arch_hash: arch_hash(spec),
        hash_every: opts.state_hash_every.unwrap_or(0),
        config: schedule_config_string(opts),
    }
}

/// Build the `eit-trace/1` header for recording a modulo sweep.
pub fn modulo_header(g: &Graph, spec: &ArchSpec, opts: &ModuloOptions) -> TraceHeader {
    TraceHeader {
        ir_hash: ir_hash(g),
        arch_hash: arch_hash(spec),
        hash_every: opts.state_hash_every.unwrap_or(0),
        config: modulo_config_string(opts),
    }
}

/// Aggregate outcome of replaying a recorded run (one stream for a
/// straight-line schedule, one per probe for a modulo sweep).
#[derive(Debug)]
pub struct RrReport {
    /// Every stream matched its recording.
    pub ok: bool,
    /// Streams replayed (always 1 for a straight-line schedule).
    pub streams: usize,
    /// Events compared across all streams.
    pub checked: u64,
    /// Events in the recording (stream markers excluded).
    pub recorded_events: usize,
    /// Search nodes the replay itself spent, across all streams. On a
    /// clean replay this equals the recorded node count — the replay
    /// never searches beyond the recorded tree.
    pub replay_nodes: u64,
    /// Recorded node count, from the terminal `Done` events.
    pub recorded_nodes: u64,
    /// First divergence: the stream it occurred in (the candidate II for
    /// modulo replays, 0 for straight-line) and the report.
    pub divergence: Option<(u32, DivergenceReport)>,
    /// The recording's *shape* was wrong (events before the first stream
    /// marker, a non-empty stream for a statically refuted candidate):
    /// not a solver divergence, the trace cannot have come from this
    /// input + config.
    pub structure_error: Option<String>,
}

fn recorded_nodes_of(events: &[SearchEvent]) -> u64 {
    events
        .iter()
        .rev()
        .find_map(|e| match e {
            SearchEvent::Done { nodes, .. } => Some(*nodes),
            _ => None,
        })
        .unwrap_or(0)
}

/// Re-validate a recorded straight-line scheduling run: rebuild the
/// model exactly as [`crate::model::schedule`] does and re-drive its
/// branch-and-bound against `recorded`.
///
/// `opts` must reproduce the recorded run's options (the header's
/// config string names the ones that matter). Recordings are made with
/// `minimize_slots` off — the second lexicographic pass would append a
/// second search to the stream.
pub fn replay_schedule(
    g: &Graph,
    spec: &ArchSpec,
    opts: &SchedulerOptions,
    recorded: &[SearchEvent],
    ropts: &ReplayOptions,
) -> RrReport {
    let mut built = build_model(g, spec, opts);
    let cfg = SearchConfig {
        phases: built.phases.clone(),
        timeout: opts.timeout,
        node_limit: opts.node_limit,
        shared_bound: None,
        restart_on_solution: true,
        trace: None,
        state_hash_every: opts.state_hash_every,
        cancel: None,
        restarts: opts.restarts,
    };
    let rep = eit_cp::replay(
        &mut built.model,
        Some(built.objective),
        &cfg,
        recorded,
        ropts,
    );
    RrReport {
        ok: rep.ok,
        streams: 1,
        checked: rep.checked,
        recorded_events: recorded.len(),
        replay_nodes: rep.result.stats.nodes,
        recorded_nodes: recorded_nodes_of(recorded),
        divergence: rep.divergence.map(|d| (0, d)),
        structure_error: None,
    }
}

/// Split a merged modulo recording at its [`SearchEvent::Stream`]
/// markers into `(ii, events)` sub-streams.
fn split_streams(recorded: &[SearchEvent]) -> Result<Vec<(u32, &[SearchEvent])>, String> {
    let mut out: Vec<(u32, usize, usize)> = Vec::new(); // (ii, start, end)
    for (i, e) in recorded.iter().enumerate() {
        if let SearchEvent::Stream { id } = e {
            if let Some(last) = out.last_mut() {
                last.2 = i;
            } else if i != 0 {
                return Err(format!("{i} events precede the first stream marker"));
            }
            out.push((*id, i + 1, recorded.len()));
        } else if out.is_empty() {
            return Err("recording does not start with a stream marker".into());
        }
    }
    Ok(out
        .into_iter()
        .map(|(ii, s, e)| (ii, &recorded[s..e]))
        .collect())
}

/// Re-validate a recorded modulo sweep: split the merged stream at its
/// probe markers, rebuild each candidate's CSP with
/// [`crate::modulo::build_probe`], and replay every probe in II order.
/// Stops at the first divergence.
pub fn replay_modulo(
    g: &Graph,
    spec: &ArchSpec,
    opts: &ModuloOptions,
    recorded: &[SearchEvent],
    ropts: &ReplayOptions,
) -> RrReport {
    let mut report = RrReport {
        ok: true,
        streams: 0,
        checked: 0,
        recorded_events: 0,
        replay_nodes: 0,
        recorded_nodes: 0,
        divergence: None,
        structure_error: None,
    };
    let streams = match split_streams(recorded) {
        Ok(s) => s,
        Err(msg) => {
            report.ok = false;
            report.structure_error = Some(msg);
            return report;
        }
    };
    for (ii, events) in streams {
        report.streams += 1;
        report.recorded_events += events.len();
        report.recorded_nodes += recorded_nodes_of(events);
        let pm = match build_probe(g, spec, ii as i32, opts.include_reconfig) {
            Ok(Some(pm)) => pm,
            Ok(None) => {
                // Statically refuted candidate: the recorded run never
                // searched, so its stream must be empty.
                if !events.is_empty() {
                    report.ok = false;
                    report.structure_error = Some(format!(
                        "candidate II {ii} is statically infeasible but its stream has {} events",
                        events.len()
                    ));
                    return report;
                }
                continue;
            }
            Err(e) => {
                report.ok = false;
                report.structure_error = Some(format!(
                    "candidate II {ii}: model build failed during replay: {e}"
                ));
                return report;
            }
        };
        let mut pm = pm;
        let cfg = SearchConfig {
            phases: pm.phases.clone(),
            state_hash_every: opts.state_hash_every,
            restarts: opts.restarts,
            ..Default::default()
        };
        let rep = eit_cp::replay(&mut pm.model, None, &cfg, events, ropts);
        report.checked += rep.checked;
        report.replay_nodes += rep.result.stats.nodes;
        if let Some(d) = rep.divergence {
            report.ok = false;
            report.divergence = Some((ii, d));
            return report;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use eit_cp::trace::{MemorySink, TraceHandle};
    use eit_cp::ValSel;
    use eit_dsl::Ctx;
    use std::sync::{Arc, Mutex};

    fn chain() -> Graph {
        let ctx = Ctx::new("chain");
        let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
        let b = ctx.vector([0.0, 1.0, 0.0, 0.0]);
        let x = a.v_add(&b);
        let _ = x.v_mul(&b);
        ctx.finish()
    }

    fn record_schedule(g: &Graph, spec: &ArchSpec, opts: &SchedulerOptions) -> Vec<SearchEvent> {
        let sink = Arc::new(Mutex::new(MemorySink::unbounded()));
        let mut o = opts.clone();
        o.trace = Some(TraceHandle::new(Arc::clone(&sink)));
        crate::model::schedule(g, spec, &o);
        let events = sink.lock().unwrap().events.iter().cloned().collect();
        events
    }

    #[test]
    fn config_string_includes_restarts_and_excludes_bitset() {
        // The restart/nogood policy reshapes the search trajectory, so a
        // trace recorded with restarts must not replay against a
        // restart-free config (and vice versa): the token is part of the
        // header. The domain representation changes only propagation
        // speed, so `--no-bitset` recordings stay interchangeable.
        let base = SchedulerOptions::default();
        assert!(
            schedule_config_string(&base).ends_with(";restarts=off"),
            "{}",
            schedule_config_string(&base)
        );
        let mut with_restarts = base.clone();
        with_restarts.restarts = Some(eit_cp::RestartConfig::default());
        assert!(
            schedule_config_string(&with_restarts).ends_with(";restarts=geom:256:150+ng"),
            "{}",
            schedule_config_string(&with_restarts)
        );
        assert_ne!(
            schedule_config_string(&base),
            schedule_config_string(&with_restarts)
        );
        let mut no_bitset = base.clone();
        no_bitset.bitset = false;
        assert_eq!(
            schedule_config_string(&base),
            schedule_config_string(&no_bitset),
            "bitset on/off must not split the replay/cache key"
        );
        // The restart token round-trips through the parser eitc uses to
        // reconstruct a header's policy.
        let rc = eit_cp::RestartConfig::default();
        assert_eq!(
            eit_cp::RestartConfig::parse_token(&rc.config_token()),
            Some(rc)
        );

        // Same contract for the modulo sweep, which also keys on the
        // decision backend (different backends produce different concrete
        // assignments at the same II).
        let mbase = ModuloOptions::default();
        assert!(
            modulo_config_string(&mbase).ends_with(";restarts=off;backend=cp"),
            "{}",
            modulo_config_string(&mbase)
        );
        let mut mrestart = mbase.clone();
        mrestart.restarts = Some(eit_cp::RestartConfig::default());
        assert_ne!(
            modulo_config_string(&mbase),
            modulo_config_string(&mrestart)
        );
        let mut mnobits = mbase.clone();
        mnobits.bitset = false;
        assert_eq!(modulo_config_string(&mbase), modulo_config_string(&mnobits));
        let mut msat = mbase.clone();
        msat.backend = crate::modulo::Backend::Sat;
        assert!(modulo_config_string(&msat).ends_with(";backend=sat"));
        assert_ne!(modulo_config_string(&mbase), modulo_config_string(&msat));
    }

    #[test]
    fn restarted_run_records_and_replays_node_identically() {
        // A schedule recorded with restarts+nogoods must replay through
        // the same restart-enabled config with zero divergence (the
        // Restart events are part of the stream).
        let g = chain();
        let spec = ArchSpec::eit();
        let opts = SchedulerOptions {
            restarts: Some(eit_cp::RestartConfig {
                policy: eit_cp::RestartPolicy::Geometric {
                    base: 2,
                    factor_percent: 150,
                },
                nogoods: true,
            }),
            ..Default::default()
        };
        let recorded = record_schedule(&g, &spec, &opts);
        assert!(!recorded.is_empty());
        let rep = replay_schedule(&g, &spec, &opts, &recorded, &ReplayOptions::default());
        assert!(rep.ok, "divergence: {:?}", rep.divergence);
        assert_eq!(rep.replay_nodes, rep.recorded_nodes);
    }

    #[test]
    fn bitset_off_recording_replays_against_bitset_on() {
        // The two representations must produce byte-identical event
        // streams: record with interval lists pinned, replay with the
        // hybrid bitset domains (and the reverse direction).
        let g = chain();
        let spec = ArchSpec::eit();
        let off = SchedulerOptions {
            bitset: false,
            ..Default::default()
        };
        let on = SchedulerOptions::default();
        let rec_off = record_schedule(&g, &spec, &off);
        let rep = replay_schedule(&g, &spec, &on, &rec_off, &ReplayOptions::default());
        assert!(rep.ok, "bitset-on replay of bitset-off recording diverged");
        let rec_on = record_schedule(&g, &spec, &on);
        let rep = replay_schedule(&g, &spec, &off, &rec_on, &ReplayOptions::default());
        assert!(rep.ok, "bitset-off replay of bitset-on recording diverged");
        assert_eq!(
            rec_on, rec_off,
            "event streams must be representation-independent"
        );
    }

    #[test]
    fn hashes_are_input_sensitive() {
        let g = chain();
        let spec = ArchSpec::eit();
        let h1 = ir_hash(&g);
        let g2 = {
            let ctx = Ctx::new("other");
            let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
            let _ = a.v_add(&a);
            ctx.finish()
        };
        assert_ne!(h1, ir_hash(&g2));
        let mut spec2 = spec.clone();
        spec2.n_banks = 8;
        assert_ne!(arch_hash(&spec), arch_hash(&spec2));
        // Stable across calls.
        assert_eq!(h1, ir_hash(&g));
        assert_eq!(arch_hash(&spec), arch_hash(&spec));
    }

    /// Every ArchSpec field — geometry, ports, costs, and every field of
    /// every unit-table entry — must perturb [`arch_hash`]: the hash is
    /// the cache key component that distinguishes target machines, so a
    /// blind spot would let one machine's schedule serve another's.
    #[test]
    fn arch_hash_is_sensitive_to_every_field() {
        let base = ArchSpec::eit();
        let h0 = arch_hash(&base);
        let mut variants: Vec<(&'static str, ArchSpec)> = Vec::new();

        let mut s = base.clone();
        s.n_lanes += 1;
        variants.push(("n_lanes", s));
        let mut s = base.clone();
        s.n_banks *= 2;
        variants.push(("n_banks", s));
        let mut s = base.clone();
        s.page_size *= 2;
        variants.push(("page_size", s));
        let mut s = base.clone();
        s.slots_per_bank += 1;
        variants.push(("slots_per_bank", s));
        let mut s = base.clone();
        s.max_vector_reads += 1;
        variants.push(("max_vector_reads", s));
        let mut s = base.clone();
        s.max_vector_writes += 1;
        variants.push(("max_vector_writes", s));
        let mut s = base.clone();
        s.reconfig_cost += 1;
        variants.push(("reconfig_cost", s));
        let mut s = base.clone();
        s.slot_cap = Some(32);
        variants.push(("slot_cap", s));

        // Unit-table fields, for every unit and every op.
        for ui in 0..base.units.units.len() {
            let mut s = base.clone();
            s.units.units[ui].name.push('X');
            variants.push(("unit.name", s));
            let mut s = base.clone();
            s.units.units[ui].count += 1;
            variants.push(("unit.count", s));
            for oi in 0..base.units.units[ui].ops.len() {
                let mut s = base.clone();
                s.units.units[ui].ops[oi].latency += 1;
                variants.push(("op.latency", s));
                let mut s = base.clone();
                s.units.units[ui].ops[oi].occupancy += 1;
                variants.push(("op.occupancy", s));
                let mut s = base.clone();
                s.units.units[ui].ops[oi].width += 1;
                variants.push(("op.width", s));
            }
        }
        // Op class identity matters too: swap a class for another.
        let mut s = base.clone();
        s.units.units[2].ops[0].class = eit_ir::OpClass::ScalarSimple;
        variants.push(("op.class", s));

        let mut hashes = vec![h0];
        for (field, v) in &variants {
            let h = arch_hash(v);
            assert_ne!(h, h0, "perturbing {field} did not change arch_hash");
            hashes.push(h);
        }
        // And the perturbations are mutually distinct — no two collide.
        hashes.sort_unstable();
        let n = hashes.len();
        hashes.dedup();
        assert_eq!(hashes.len(), n, "two distinct specs share an arch_hash");
    }

    #[test]
    fn schedule_record_replay_is_node_identical() {
        let g = chain();
        let spec = ArchSpec::eit();
        let opts = SchedulerOptions {
            state_hash_every: Some(8),
            ..Default::default()
        };
        let recorded = record_schedule(&g, &spec, &opts);
        assert!(!recorded.is_empty());
        let rep = replay_schedule(&g, &spec, &opts, &recorded, &ReplayOptions::default());
        assert!(rep.ok, "divergence: {:?}", rep.divergence);
        assert_eq!(rep.replay_nodes, rep.recorded_nodes);
        assert_eq!(rep.checked as usize, rep.recorded_events);
    }

    #[test]
    fn perturbed_schedule_replay_reports_divergence() {
        let g = chain();
        let spec = ArchSpec::eit();
        let opts = SchedulerOptions::default();
        let recorded = record_schedule(&g, &spec, &opts);
        // Flip the value ordering of every phase: same model, different
        // trajectory — replay must name the first mismatching event.
        let mut built = build_model(&g, &spec, &opts);
        let mut phases = built.phases.clone();
        for p in &mut phases {
            p.val_sel = ValSel::Max;
        }
        let cfg = SearchConfig {
            phases,
            timeout: opts.timeout,
            restart_on_solution: true,
            ..Default::default()
        };
        let rep = eit_cp::replay(
            &mut built.model,
            Some(built.objective),
            &cfg,
            &recorded,
            &ReplayOptions::default(),
        );
        assert!(!rep.ok);
        let d = rep.divergence.expect("must diverge");
        assert!(d.index < recorded.len());
    }

    #[test]
    fn modulo_record_replay_round_trips() {
        let g = chain();
        let spec = ArchSpec::eit();
        let sink = Arc::new(Mutex::new(MemorySink::unbounded()));
        let opts = ModuloOptions {
            include_reconfig: true,
            trace: Some(TraceHandle::new(Arc::clone(&sink))),
            state_hash_every: Some(8),
            ..Default::default()
        };
        crate::modulo::modulo_schedule(&g, &spec, &opts).unwrap();
        let recorded: Vec<SearchEvent> = sink.lock().unwrap().events.iter().cloned().collect();
        assert!(recorded
            .iter()
            .any(|e| matches!(e, SearchEvent::Stream { .. })));
        let rep = replay_modulo(&g, &spec, &opts, &recorded, &ReplayOptions::default());
        assert!(
            rep.ok,
            "divergence: {:?} structure: {:?}",
            rep.divergence, rep.structure_error
        );
        assert!(rep.streams >= 1);
        assert_eq!(rep.replay_nodes, rep.recorded_nodes);

        // A mangled recording (events before the first marker) is a
        // structure error, not a divergence.
        let mut bad = recorded.clone();
        bad.insert(0, SearchEvent::Fail { depth: 0 });
        let rep = replay_modulo(&g, &spec, &opts, &bad, &ReplayOptions::default());
        assert!(!rep.ok);
        assert!(rep.structure_error.is_some());
    }
}
