//! # eit-core — CP scheduling with memory allocation
//!
//! The paper's primary contribution: a single constraint model combining
//! instruction scheduling and vector-memory allocation for the EIT
//! architecture ([`model`]), the two iteration-overlap techniques of §4.3
//! ([`overlap`] — the architects' ad-hoc two-phase pipelining — and
//! [`modulo`] — modulo scheduling as a CSP, with and without
//! reconfigurations in the optimisation, plus real steady-state memory
//! allocation), and graph replication utilities for multi-iteration
//! experiments ([`replicate()`]).
//!
//! Around the model: [`pipeline`] is the one-call fig. 2 toolchain
//! (passes → schedule → [`codegen`]); [`portfolio`] races §3.5 search
//! variants across threads; [`list_sched`] is the heuristic baseline the
//! evaluation compares against.

pub mod codegen;
pub mod fuzz;
pub mod json;
pub mod list_sched;
pub mod model;
pub mod modulo;
pub mod obs;
pub mod overlap;
pub mod pipeline;
pub mod portfolio;
pub mod render;
pub mod replicate;
pub mod rr;

pub use codegen::{generate, Program};
pub use fuzz::{run as fuzz_run, FuzzFailure, FuzzOptions, FuzzReport};
pub use list_sched::{list_schedule, ListScheduleResult};
pub use model::{build_model, schedule, BuiltModel, ScheduleResult, SchedulerOptions};
pub use modulo::{
    allocate_modulo_memory, allocate_modulo_memory_with, build_probe, ii_lower_bound,
    modulo_cnf_dimacs, modulo_schedule, modulo_schedule_checked, probe_ii, schedule_at_ii,
    validate_modulo, AllocOptions, AllocOutcome, Backend, IiOutcome, ModuloError, ModuloOptions,
    ModuloResult, ProbeModel, ProbeStat, SatStats,
};
pub use obs::PhaseTimings;
pub use overlap::{
    bundles_from_schedule, manual_style_bundles, overlapped_execution, Bundle, OverlapResult,
};
pub use pipeline::{compile, CompileError, CompileOptions, Compiled};
pub use portfolio::schedule_portfolio;
pub use render::{render_compiled, render_modulo};
pub use replicate::replicate;
pub use rr::{
    arch_hash, ir_hash, modulo_config_string, modulo_header, replay_modulo, replay_schedule,
    schedule_config_string, schedule_header, RrReport, SolveKey, DEFAULT_HASH_EVERY,
};
