//! Heuristic baseline: critical-path list scheduling with greedy memory
//! allocation.
//!
//! The classic alternative to the paper's CP approach — what a
//! conventional compiler backend would do. Operations are ranked by
//! *slack* (critical-path priority) and placed greedily at the earliest
//! cycle where all resources fit; memory slots are assigned first-fit
//! against the fig. 7/8 access rules. No backtracking, so the result is
//! feasible but not optimal — the gap to the CP schedule is the value the
//! paper's method adds (see the `ablation` benches and EXPERIMENTS.md).

use eit_arch::{check_access, ArchSpec, Schedule};
use eit_ir::{Category, Graph, NodeId, VectorConfig};
use std::collections::HashMap;

/// Result of [`list_schedule`].
#[derive(Debug)]
pub struct ListScheduleResult {
    pub schedule: Schedule,
    /// Ops placed later than their earliest start because of resources.
    pub delayed_ops: usize,
}

struct MachineState {
    lanes_used: HashMap<i32, u32>,
    config_at: HashMap<i32, VectorConfig>,
    accel_busy: HashMap<i32, bool>,
    im_busy: HashMap<i32, bool>,
    reads_at: HashMap<i32, Vec<u32>>,
    writes_at: HashMap<i32, Vec<u32>>,
}

impl MachineState {
    fn new() -> Self {
        MachineState {
            lanes_used: HashMap::new(),
            config_at: HashMap::new(),
            accel_busy: HashMap::new(),
            im_busy: HashMap::new(),
            reads_at: HashMap::new(),
            writes_at: HashMap::new(),
        }
    }
}

/// Schedule `g` heuristically. Returns `None` only when memory allocation
/// fails outright (slot budget below the live-set floor).
pub fn list_schedule(g: &Graph, spec: &ArchSpec, with_memory: bool) -> Option<ListScheduleResult> {
    let latency = |n: NodeId| spec.latency(&g.node(n).kind);
    let duration = |n: NodeId| spec.duration(&g.node(n).kind);

    // Priority: longest path to a sink (standard CP ranking).
    let order = g.topo_order()?;
    let mut rank: Vec<i32> = vec![0; g.len()];
    for &u in order.iter().rev() {
        let tail = g.succs(u).iter().map(|&v| rank[v.idx()]).max().unwrap_or(0);
        rank[u.idx()] = tail + latency(u);
    }

    let mut sched = Schedule::new(g.len());
    let mut machine = MachineState::new();
    let mut placed = vec![false; g.len()];
    let mut delayed = 0usize;

    // Greedy slot state: (slot, free_from_cycle).
    let n_slots = spec.n_slots();
    let mut slot_free_at: Vec<i32> = vec![0; n_slots as usize];

    // Data nodes inherit their producer's completion; inputs start at 0
    // and get slots immediately.
    let mut ready: Vec<NodeId> = Vec::new();
    for n in g.ids() {
        if g.category(n).is_data() && g.producer(n).is_none() {
            placed[n.idx()] = true;
        }
    }

    // Ops in priority order, respecting topology.
    let mut ops: Vec<NodeId> = g.ids().filter(|&n| g.category(n).is_op()).collect();
    ops.sort_by_key(|&n| std::cmp::Reverse(rank[n.idx()]));

    // Repeated sweeps until every op is placed (dependencies may force
    // multiple passes over the priority list).
    let mut remaining = ops.len();
    while remaining > 0 {
        let mut progressed = false;
        for &op in &ops {
            if placed[op.idx()] {
                continue;
            }
            if !g.preds(op).iter().all(|&d| placed[d.idx()]) {
                continue;
            }
            // Earliest start by data readiness.
            let est = g
                .preds(op)
                .iter()
                .map(|&d| sched.start_of(d))
                .max()
                .unwrap_or(0);
            let cat = g.category(op);
            let dur = duration(op);
            let need_lanes = match cat {
                Category::MatrixOp => spec.matrix_lanes(),
                Category::VectorOp => 1,
                _ => 0,
            };
            let cfg = g.opcode(op).and_then(|o| o.config());

            let mut t = est;
            'place: loop {
                // Resource feasibility at t.
                let mut ok = true;
                if need_lanes > 0 {
                    let used = *machine.lanes_used.get(&t).unwrap_or(&0);
                    if used + need_lanes > spec.n_lanes {
                        ok = false;
                    }
                    if let (Some(c), Some(existing)) = (cfg, machine.config_at.get(&t)) {
                        if *existing != c {
                            ok = false;
                        }
                    }
                }
                if cat == Category::ScalarOp {
                    for dt in 0..dur {
                        if *machine.accel_busy.get(&(t + dt)).unwrap_or(&false) {
                            ok = false;
                        }
                    }
                }
                if matches!(cat, Category::Index | Category::Merge) {
                    for dt in 0..dur {
                        if *machine.im_busy.get(&(t + dt)).unwrap_or(&false) {
                            ok = false;
                        }
                    }
                }

                // Memory feasibility (reads at t, writes at t + latency).
                let mut new_slots: Vec<(NodeId, u32)> = Vec::new();
                if ok && with_memory && need_lanes > 0 {
                    let mut reads: Vec<u32> = machine.reads_at.get(&t).cloned().unwrap_or_default();
                    for &d in g.preds(op) {
                        if g.category(d) == Category::VectorData {
                            if let Some(s) = sched.slot_of(d) {
                                reads.push(s);
                            }
                        }
                    }
                    reads.sort_unstable();
                    reads.dedup();
                    let wb = t + latency(op);
                    let mut writes: Vec<u32> =
                        machine.writes_at.get(&wb).cloned().unwrap_or_default();
                    // First-fit output slots.
                    for &d in g.succs(op) {
                        if g.category(d) == Category::VectorData {
                            let mut found = None;
                            for s in 0..n_slots {
                                if slot_free_at[s as usize] > wb {
                                    continue;
                                }
                                let mut w2 = writes.clone();
                                w2.push(s);
                                if check_access(spec, &reads, &w2).is_empty() {
                                    found = Some(s);
                                    writes.push(s);
                                    break;
                                }
                            }
                            match found {
                                Some(s) => new_slots.push((d, s)),
                                None => {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                    }
                    if ok && !check_access(spec, &reads, &writes).is_empty() {
                        ok = false;
                    }
                }

                if ok {
                    // Commit.
                    sched.start[op.idx()] = t;
                    if t > est {
                        delayed += 1;
                    }
                    if need_lanes > 0 {
                        *machine.lanes_used.entry(t).or_insert(0) += need_lanes;
                        if let Some(c) = cfg {
                            machine.config_at.insert(t, c);
                        }
                        let mut reads: Vec<u32> = Vec::new();
                        for &d in g.preds(op) {
                            if g.category(d) == Category::VectorData {
                                if let Some(s) = sched.slot_of(d) {
                                    reads.push(s);
                                }
                            }
                        }
                        machine.reads_at.entry(t).or_default().extend(reads);
                        let wb = t + latency(op);
                        for &(_, s) in &new_slots {
                            machine.writes_at.entry(wb).or_default().push(s);
                        }
                    }
                    if cat == Category::ScalarOp {
                        for dt in 0..dur {
                            machine.accel_busy.insert(t + dt, true);
                        }
                    }
                    if matches!(cat, Category::Index | Category::Merge) {
                        for dt in 0..dur {
                            machine.im_busy.insert(t + dt, true);
                        }
                    }
                    // Outputs.
                    for &d in g.succs(op) {
                        sched.start[d.idx()] = t + latency(op);
                        placed[d.idx()] = true;
                    }
                    for (d, s) in new_slots {
                        sched.slot[d.idx()] = Some(s);
                        // The slot is busy until the datum's last read —
                        // conservatively forever; refined below.
                        slot_free_at[s as usize] = i32::MAX;
                    }
                    placed[op.idx()] = true;
                    remaining -= 1;
                    progressed = true;
                    break 'place;
                }
                t += 1;
                if t > est + 100_000 {
                    return None; // pathological: give up
                }
            }
        }
        if !progressed {
            return None;
        }
        ready.clear();
    }

    // Input slots: first-fit after everything else is placed (their reads
    // are known now) — simple approach: assign inputs to distinct fresh
    // slots; feasible iff enough slots remain.
    if with_memory {
        let mut used: Vec<u32> = g.ids().filter_map(|n| sched.slot[n.idx()]).collect();
        used.sort_unstable();
        used.dedup();
        for n in g.ids() {
            if g.category(n) == Category::VectorData && sched.slot[n.idx()].is_none() {
                // Pick the first slot (a) unused so far and (b) compatible
                // with every cycle this datum is read.
                let mut chosen = None;
                'cand: for s in 0..n_slots {
                    if used.contains(&s) {
                        continue;
                    }
                    for &c in g.succs(n) {
                        if matches!(g.category(c), Category::VectorOp | Category::MatrixOp) {
                            let t = sched.start_of(c);
                            let mut reads = machine.reads_at.get(&t).cloned().unwrap_or_default();
                            reads.push(s);
                            reads.sort_unstable();
                            reads.dedup();
                            let writes = machine.writes_at.get(&t).cloned().unwrap_or_default();
                            if !check_access(spec, &reads, &writes).is_empty() {
                                continue 'cand;
                            }
                        }
                    }
                    chosen = Some(s);
                    break;
                }
                let s = chosen?;
                sched.slot[n.idx()] = Some(s);
                used.push(s);
                for &c in g.succs(n) {
                    if matches!(g.category(c), Category::VectorOp | Category::MatrixOp) {
                        machine
                            .reads_at
                            .entry(sched.start_of(c))
                            .or_default()
                            .push(s);
                    }
                }
            }
        }
    }

    sched.compute_makespan(g, &spec.latency_of(g));
    Some(ListScheduleResult {
        schedule: sched,
        delayed_ops: delayed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{schedule, SchedulerOptions};
    use eit_arch::validate_structure_with;
    use eit_dsl::Ctx;
    use std::time::Duration;

    fn kernel() -> Graph {
        let ctx = Ctx::new("k");
        let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
        let b = ctx.vector([2.0, 3.0, 4.0, 5.0]);
        let x = a.v_add(&b);
        let y = x.v_mul(&b);
        let d = y.v_dotp(&a);
        let _ = d.rsqrt();
        ctx.finish()
    }

    #[test]
    fn heuristic_schedule_is_structurally_valid() {
        let g = kernel();
        let spec = ArchSpec::eit();
        let r = list_schedule(&g, &spec, true).unwrap();
        // Memory allocation is greedy/incomplete for lifetimes, so only
        // the resource/precedence structure is asserted here (memory
        // checks are run for CP schedules; the heuristic is a baseline).
        let v = validate_structure_with(&g, &spec, &r.schedule, false);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn heuristic_never_beats_cp_optimum() {
        let g = kernel();
        let spec = ArchSpec::eit();
        let heur = list_schedule(&g, &spec, false).unwrap();
        let opt = schedule(
            &g,
            &spec,
            &SchedulerOptions {
                memory: false,
                timeout: Some(Duration::from_secs(30)),
                ..Default::default()
            },
        );
        assert!(heur.schedule.makespan >= opt.makespan.unwrap());
    }

    #[test]
    fn heuristic_handles_all_kernels() {
        for name in ["qrd", "arf", "matmul", "fir", "detector"] {
            let k = eit_apps_build(name);
            let spec = ArchSpec::eit();
            let r = list_schedule(&k, &spec, false).unwrap();
            let v = validate_structure_with(&k, &spec, &r.schedule, false);
            assert!(v.is_empty(), "{name}: {v:?}");
        }
    }

    fn eit_apps_build(name: &str) -> Graph {
        // Local mini-builders to avoid a dev-dependency cycle: reuse the
        // DSL directly for representative graphs of each shape.
        let ctx = Ctx::new(name);
        match name {
            "matmul" | "fir" => {
                let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
                let b = ctx.vector([2.0, 3.0, 4.0, 5.0]);
                let mut acc = a.v_mul(&b);
                for _ in 0..4 {
                    acc = acc.v_mac(&b, &a);
                }
            }
            _ => {
                let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
                let b = ctx.vector([2.0, 3.0, 4.0, 5.0]);
                let n = a.v_squsum().add(&b.v_squsum());
                let inv = n.rsqrt();
                let q = a.v_scale(&inv);
                let r = b.v_dotp(&q);
                let p = q.v_scale(&r);
                let _ = b.v_sub(&p);
            }
        }
        ctx.finish()
    }
}
