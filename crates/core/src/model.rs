//! The combined scheduling + memory-allocation constraint model
//! (§3.3–3.5 of the paper) and its solution procedure.
//!
//! Constraint-by-constraint mapping to the paper:
//!
//! | Paper | Here |
//! |---|---|
//! | (1) `s_i + l_i ≤ s_j` on edges | [`eit_cp::Model::precedence`] |
//! | (2) lane `Cumulative` | one `Cumulative` over vector+matrix ops, r∈{1,4}, cap 4; two more (cap 1) for the accelerator and index/merge units |
//! | (3) `s_i ≠ s_j` for differently-configured vector ops | pairwise `neq` |
//! | (4) data start = producer completion | `eq_offset` |
//! | (5) makespan objective | completion vars + `max_of`, minimized |
//! | (6) slot/line/page channeling | `slot_geometry` |
//! | (7) same-op input compatibility | `page_line_implies` |
//! | (8)/(9) co-scheduled input/output compatibility | `cond_same_time` over co-issuable op pairs |
//! | (10) lifetimes | `max_of` over consumer starts + `diff_plus_c` |
//! | (11) slot reuse | `Diff2` over `(s, slot, life, 1)` rectangles |
//! | §3.5 search | three [`Phase`]s: op starts → data starts → slots |

use crate::obs::PhaseTimings;
use eit_arch::{ArchSpec, Schedule};
use eit_cp::props::cumulative::CumTask;
use eit_cp::props::diff2::Rect;
use eit_cp::props::disjunctive::DisjTask;
use eit_cp::props::reify::GuardedPair;
use eit_cp::trace::TraceHandle;
use eit_cp::{
    minimize, Model, Phase, PropProfile, SearchConfig, SearchStats, SearchStatus, ValSel, VarId,
    VarSel,
};
use eit_ir::{Category, Graph, NodeId, OpClass};
use std::time::{Duration, Instant};

/// Options for [`schedule`].
#[derive(Clone, Debug)]
pub struct SchedulerOptions {
    /// Include the memory-allocation constraints (6)–(11). Without them
    /// the model is pure scheduling — the paper's manual-baseline setting.
    pub memory: bool,
    /// Scheduling horizon; `None` derives a safe upper bound (serial sum
    /// of latencies).
    pub horizon: Option<i32>,
    /// Solver wall-clock budget.
    pub timeout: Option<Duration>,
    /// Solver node budget.
    pub node_limit: Option<u64>,
    /// After minimizing the makespan, fix it and lexicographically
    /// minimize the number of memory slots used (the highest slot index
    /// + 1). Costs a second branch-and-bound run.
    pub minimize_slots: bool,
    /// Structured search-event sink, forwarded to the solver.
    pub trace: Option<TraceHandle>,
    /// Emit a [`eit_cp::trace::SearchEvent::StateHash`] digest of the
    /// store every N search nodes (`None`/0 = off); only meaningful with
    /// a trace attached.
    pub state_hash_every: Option<u64>,
    /// Per-propagator profiling with wall-time attribution; the profile
    /// comes back in [`ScheduleResult::propagator_profile`].
    pub profile: bool,
    /// Run the solver with the legacy FIFO propagation scheduler instead
    /// of the event-driven tiered engine — the A/B baseline for
    /// measuring wake/invocation savings. Same solutions, same optima.
    pub fifo_engine: bool,
    /// Cooperative cancellation (service deadlines, portfolio losers).
    /// A deadline-bearing token ([`eit_cp::CancelToken::with_deadline`])
    /// enforces a per-request wall-clock budget without a watchdog
    /// thread. Excluded from [`crate::rr::schedule_config_string`] like
    /// `timeout`: budgets shape *when* a run stops, not its trajectory.
    pub cancel: Option<eit_cp::CancelToken>,
    /// Restart the branch-and-bound on a fail-count schedule, recording
    /// decision-prefix nogoods at each restart (`None` = plain DFS).
    /// Restarts reshape the search trajectory, so this **is** part of
    /// [`crate::rr::schedule_config_string`].
    pub restarts: Option<eit_cp::RestartConfig>,
    /// Use the hybrid bitset/interval domain representation (default).
    /// `false` pins every variable to interval lists — the A/B baseline.
    /// Representation changes propagation *speed*, not the trajectory,
    /// so this is excluded from the record/replay config string.
    pub bitset: bool,
}

impl Default for SchedulerOptions {
    fn default() -> Self {
        SchedulerOptions {
            memory: true,
            horizon: None,
            timeout: Some(Duration::from_secs(600)), // the paper's 10 min
            node_limit: None,
            minimize_slots: false,
            trace: None,
            state_hash_every: None,
            profile: false,
            fifo_engine: false,
            cancel: None,
            restarts: None,
            bitset: true,
        }
    }
}

/// The constructed CP model with its variable handles.
pub struct BuiltModel {
    pub model: Model,
    /// Start variable per node.
    pub start: Vec<VarId>,
    /// Slot variable per node (`Some` for vector data when memory is on).
    pub slot: Vec<Option<VarId>>,
    /// Makespan objective.
    pub objective: VarId,
    /// The §3.5 three-phase search.
    pub phases: Vec<Phase>,
    pub horizon: i32,
    /// Build-time spans: `model_build` (total) and the nested
    /// `longest_path` preprocessing.
    pub timings: PhaseTimings,
}

/// A safe horizon: every op executed serially.
pub fn serial_horizon(g: &Graph, spec: &ArchSpec) -> i32 {
    g.ids()
        .map(|i| {
            spec.latency(&g.node(i).kind)
                .max(spec.duration(&g.node(i).kind))
        })
        .sum::<i32>()
        .max(1)
}

/// Build the paper's model for `g` on `spec`.
pub fn build_model(g: &Graph, spec: &ArchSpec, opts: &SchedulerOptions) -> BuiltModel {
    let build_start = Instant::now();
    let mut timings = PhaseTimings::new();
    let horizon = opts.horizon.unwrap_or_else(|| serial_horizon(g, spec));
    let mut m = if opts.fifo_engine {
        Model::with_fifo_baseline()
    } else {
        Model::new()
    };
    // Must precede variable creation: the switch pins vars at birth.
    m.store.set_bitset(opts.bitset);

    // --- start variables ---------------------------------------------------
    let start: Vec<VarId> = g
        .ids()
        .map(|i| {
            let cat = g.category(i);
            if cat.is_data() && g.producer(i).is_none() {
                // Application inputs are ready from the start (§3.3.3).
                m.new_const(0)
            } else {
                m.new_var_named(0, horizon, &format!("s_{}", g.node(i).name))
            }
        })
        .collect();

    let latency = |i: NodeId| spec.latency(&g.node(i).kind);
    let duration = |i: NodeId| spec.duration(&g.node(i).kind);

    // Longest-path preprocessing: earliest starts tighten every domain's
    // lower bound, and the critical path is a sound lower bound on the
    // makespan (these are implied by (1)/(4) but save the solver from
    // rediscovering them at every node).
    let es = timings.time("longest_path", || g.earliest_starts(&|i| latency(i)));
    for i in g.ids() {
        m.store
            .remove_below(start[i.idx()], es[i.idx()])
            .expect("earliest start exceeds horizon");
    }
    let critical_path = g.ids().map(|i| es[i.idx()] + latency(i)).max().unwrap_or(0);

    // (1) precedence on every edge; (4) exact data start.
    for (from, to) in g.edges() {
        if g.category(from).is_op() && g.category(to).is_data() {
            m.eq_offset(start[from.idx()], latency(from), start[to.idx()]);
        } else {
            m.precedence(start[from.idx()], latency(from), start[to.idx()]);
        }
    }

    // (2) one resource constraint per functional unit, in table order.
    // On the classic table this posts exactly the paper's three: the lane
    // Cumulative (vector req 1, matrix req = matrix width) and two
    // Disjunctives for the accelerator and the index/merge unit. A
    // replicated unit (count > 1) becomes a Cumulative with the op's
    // resolved width as its resource requirement.
    let vec_core_ops: Vec<NodeId> = g
        .ids()
        .filter(|&i| matches!(g.category(i), Category::VectorOp | Category::MatrixOp))
        .collect();
    for unit in &spec.units.units {
        let classes: Vec<OpClass> = unit.ops.iter().map(|o| o.class).collect();
        let is_vcore = classes
            .iter()
            .any(|c| matches!(c, OpClass::Vector | OpClass::Matrix));
        let unit_ops: Vec<NodeId> = g
            .ids()
            .filter(|&i| OpClass::of(&g.node(i).kind).is_some_and(|c| classes.contains(&c)))
            .collect();
        if !is_vcore && unit_ops.is_empty() {
            continue;
        }
        if !is_vcore && unit.count == 1 {
            m.disjunctive(
                unit_ops
                    .iter()
                    .map(|&i| DisjTask {
                        start: start[i.idx()],
                        dur: duration(i),
                    })
                    .collect(),
            );
        } else {
            m.cumulative(
                unit_ops
                    .iter()
                    .map(|&i| CumTask {
                        start: start[i.idx()],
                        dur: duration(i),
                        req: spec
                            .units
                            .class_width(OpClass::of(&g.node(i).kind).unwrap())
                            .unwrap_or(1) as i32,
                    })
                    .collect(),
                unit.count as i32,
            );
        }
    }

    // (3) one configuration per cycle: differently-configured vector ops
    // must not co-issue. (Matrix ops are excluded pairwise by the lane
    // Cumulative: r = 4.)
    let vector_ops: Vec<NodeId> = vec_core_ops
        .iter()
        .copied()
        .filter(|&i| g.category(i) == Category::VectorOp)
        .collect();
    for (a, &i) in vector_ops.iter().enumerate() {
        for &j in &vector_ops[a + 1..] {
            let ci = g.opcode(i).unwrap().config().unwrap();
            let cj = g.opcode(j).unwrap().config().unwrap();
            if ci != cj {
                m.neq(start[i.idx()], start[j.idx()]);
            }
        }
    }

    // (5) makespan = max completion over op nodes.
    let objective = m.new_var_named(critical_path, horizon + spec.pipeline_depth(), "makespan");
    let completions: Vec<VarId> = g
        .ids()
        .filter(|&i| g.category(i).is_op())
        .map(|i| {
            let c = m.new_var(0, horizon + spec.pipeline_depth());
            m.eq_offset(start[i.idx()], latency(i), c);
            c
        })
        .collect();
    m.max_of(completions, objective);

    // --- memory allocation (6)–(11) -----------------------------------------
    let mut slot: Vec<Option<VarId>> = vec![None; g.len()];
    if opts.memory {
        let n_slots = spec.n_slots() as i32;
        let n_lines = spec.slots_per_bank as i32;
        let n_pages = spec.n_pages() as i32;
        let vdata: Vec<NodeId> = g
            .ids()
            .filter(|&i| g.category(i) == Category::VectorData)
            .collect();

        let mut line = vec![None; g.len()];
        let mut page = vec![None; g.len()];
        for &d in &vdata {
            let s = m.new_var_named(0, n_slots - 1, &format!("slot_{}", g.node(d).name));
            let l = m.new_var(0, n_lines - 1);
            let p = m.new_var(0, n_pages - 1);
            // (6)
            m.slot_geometry(s, l, p, spec.n_banks as i32, spec.page_size as i32);
            slot[d.idx()] = Some(s);
            line[d.idx()] = Some(l);
            page[d.idx()] = Some(p);
        }

        // (7): inputs of one vector-core op; plus the outputs of one matrix
        // op, which are written simultaneously.
        for &op in &vec_core_ops {
            let groups: [Vec<NodeId>; 2] = [
                g.preds(op)
                    .iter()
                    .copied()
                    .filter(|&d| g.category(d) == Category::VectorData)
                    .collect(),
                g.succs(op)
                    .iter()
                    .copied()
                    .filter(|&d| g.category(d) == Category::VectorData)
                    .collect(),
            ];
            for grp in &groups {
                for (x, &d) in grp.iter().enumerate() {
                    for &e in &grp[x + 1..] {
                        m.page_line_implies(
                            page[d.idx()].unwrap(),
                            line[d.idx()].unwrap(),
                            page[e.idx()].unwrap(),
                            line[e.idx()].unwrap(),
                        );
                    }
                }
            }
        }

        // (8)/(9): pairs of vector ops that may co-issue (same config —
        // different configs are already start-separated by (3)).
        for (a, &i) in vector_ops.iter().enumerate() {
            for &j in &vector_ops[a + 1..] {
                let ci = g.opcode(i).unwrap().config().unwrap();
                let cj = g.opcode(j).unwrap().config().unwrap();
                if ci != cj {
                    continue;
                }
                let mut pairs = Vec::new();
                let vin = |op: NodeId| {
                    g.preds(op)
                        .iter()
                        .copied()
                        .filter(|&d| g.category(d) == Category::VectorData)
                        .collect::<Vec<_>>()
                };
                let vout = |op: NodeId| {
                    g.succs(op)
                        .iter()
                        .copied()
                        .filter(|&d| g.category(d) == Category::VectorData)
                        .collect::<Vec<_>>()
                };
                for &d in &vin(i) {
                    for &e in &vin(j) {
                        if d != e {
                            pairs.push(GuardedPair {
                                page_d: page[d.idx()].unwrap(),
                                line_d: line[d.idx()].unwrap(),
                                page_e: page[e.idx()].unwrap(),
                                line_e: line[e.idx()].unwrap(),
                            });
                        }
                    }
                }
                for &d in &vout(i) {
                    for &e in &vout(j) {
                        if d != e {
                            pairs.push(GuardedPair {
                                page_d: page[d.idx()].unwrap(),
                                line_d: line[d.idx()].unwrap(),
                                page_e: page[e.idx()].unwrap(),
                                line_e: line[e.idx()].unwrap(),
                            });
                        }
                    }
                }
                if !pairs.is_empty() {
                    m.cond_same_time(start[i.idx()], start[j.idx()], pairs);
                }
            }
        }

        // (10)/(11): lifetimes and slot reuse as non-overlapping rectangles.
        //
        // The paper's (10) sets life = max(consumer starts) − s. Taken
        // literally, a datum consumed at its own start cycle gets a
        // zero-length rectangle and silently drops out of Diff2 even
        // though it occupies its slot at the read instant; we therefore
        // clamp lifetimes to ≥ 1 (consumers read at their start cycle, and
        // reads precede writes within a cycle, so rectangles *touching* is
        // still hazard-free). Only lower bounds are posted: Diff2 prunes
        // on the minimum length, which equals the true lifetime.
        let mut rects = Vec::with_capacity(vdata.len());
        let one = m.new_const(1);
        for &d in &vdata {
            let life = m.new_var_named(1, horizon + spec.pipeline_depth(), "life");
            for &c in g.succs(d) {
                // life ≥ s_c − s_d
                m.linear_leq(
                    vec![(1, start[c.idx()]), (-1, start[d.idx()]), (-1, life)],
                    0,
                );
            }
            rects.push(Rect {
                origin: [start[d.idx()], slot[d.idx()].unwrap()],
                len: [life, one],
            });
        }
        m.diff2(rects);
    }

    // --- §3.5 three-phase search --------------------------------------------
    let op_starts: Vec<VarId> = g
        .ids()
        .filter(|&i| g.category(i).is_op())
        .map(|i| start[i.idx()])
        .collect();
    let data_starts: Vec<VarId> = g
        .ids()
        .filter(|&i| g.category(i).is_data())
        .map(|i| start[i.idx()])
        .collect();
    let slots: Vec<VarId> = g.ids().filter_map(|i| slot[i.idx()]).collect();
    let mut phases = vec![
        Phase::new(op_starts, VarSel::SmallestMin, ValSel::Min),
        Phase::new(data_starts, VarSel::SmallestMin, ValSel::Min),
    ];
    if !slots.is_empty() {
        phases.push(Phase::new(slots, VarSel::FirstFail, ValSel::Min));
    }

    timings.push("model_build", build_start.elapsed());

    BuiltModel {
        model: m,
        start,
        slot,
        objective,
        phases,
        horizon,
        timings,
    }
}

/// Result of a scheduling run.
#[derive(Debug)]
pub struct ScheduleResult {
    pub schedule: Option<Schedule>,
    pub status: SearchStatus,
    pub stats: SearchStats,
    pub makespan: Option<i32>,
    /// Wall-clock spans: model build, longest-path, search, extraction
    /// (and the optional slot-minimisation pass).
    pub timings: PhaseTimings,
    /// Winning strategy index when a portfolio produced this result.
    pub winner: Option<usize>,
    /// Per-propagator accounting (aggregated by name, sorted by cost);
    /// empty unless [`SchedulerOptions::profile`] was set.
    pub propagator_profile: Vec<PropProfile>,
    /// Domain-representation histogram at end of search:
    /// `(bitset_vars, interval_vars)`.
    pub domain_reps: (usize, usize),
}

/// Extract a [`Schedule`] from a solver solution.
fn extract(g: &Graph, spec: &ArchSpec, built: &BuiltModel, sol: &eit_cp::Solution) -> Schedule {
    let mut s = Schedule::new(g.len());
    for i in g.ids() {
        s.start[i.idx()] = sol.value(built.start[i.idx()]);
        s.slot[i.idx()] = built.slot[i.idx()].map(|v| sol.value(v) as u32);
    }
    s.compute_makespan(g, &spec.latency_of(g));
    s
}

/// Schedule `g` on `spec`: build the model, run the three-phase
/// branch-and-bound, extract the best schedule.
pub fn schedule(g: &Graph, spec: &ArchSpec, opts: &SchedulerOptions) -> ScheduleResult {
    let mut built = build_model(g, spec, opts);
    let mut timings = PhaseTimings::new();
    timings.extend(&built.timings);
    if opts.profile {
        built.model.engine.enable_profiling();
    }
    let cfg = SearchConfig {
        phases: built.phases.clone(),
        timeout: opts.timeout,
        node_limit: opts.node_limit,
        shared_bound: None,
        restart_on_solution: true,
        trace: opts.trace.clone(),
        state_hash_every: opts.state_hash_every,
        cancel: opts.cancel.clone(),
        restarts: opts.restarts,
    };
    let r = timings.time("search", || {
        minimize(&mut built.model, built.objective, &cfg)
    });
    let domain_reps = built.model.store.domain_rep_counts();
    let mut schedule = timings.time("extract", || {
        r.best.as_ref().map(|sol| extract(g, spec, &built, sol))
    });
    let propagator_profile = if opts.profile {
        built.model.engine.profile_by_name()
    } else {
        Vec::new()
    };

    // Optional second lexicographic pass: fix the optimal makespan and
    // minimize the slot footprint (max slot index used).
    if let (true, Some(best_makespan), true) = (opts.minimize_slots, r.objective, opts.memory) {
        let t_slots = Instant::now();
        let mut built2 = build_model(g, spec, opts);
        built2
            .model
            .store
            .remove_above(built2.objective, best_makespan)
            .expect("optimal makespan must stay feasible");
        let slot_vars: Vec<VarId> = g.ids().filter_map(|i| built2.slot[i.idx()]).collect();
        if !slot_vars.is_empty() {
            let max_slot = built2.model.new_var(0, spec.n_slots() as i32 - 1);
            built2.model.max_of(slot_vars, max_slot);
            let cfg2 = SearchConfig {
                phases: built2.phases.clone(),
                timeout: opts.timeout,
                node_limit: opts.node_limit,
                shared_bound: None,
                restart_on_solution: true,
                trace: opts.trace.clone(),
                state_hash_every: opts.state_hash_every,
                cancel: opts.cancel.clone(),
                restarts: opts.restarts,
            };
            let r2 = minimize(&mut built2.model, max_slot, &cfg2);
            if let Some(sol) = r2.best.as_ref() {
                schedule = Some(extract(g, spec, &built2, sol));
            }
        }
        timings.push("minimize_slots", t_slots.elapsed());
    }

    ScheduleResult {
        makespan: r.objective,
        schedule,
        status: r.status,
        stats: r.stats,
        timings,
        winner: None,
        propagator_profile,
        domain_reps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eit_arch::sim::validate_structure;
    use eit_dsl::Ctx;
    use eit_ir::merge_pipeline_ops;

    fn matmul_graph() -> Graph {
        // Listing 1: C = A·Aᴴ via 16 dot products and 4 merges.
        let ctx = Ctx::new("matmul");
        let a = [
            ctx.vector([1.0, 2.0, 3.0, 4.0]),
            ctx.vector([2.0, 3.0, 4.0, 5.0]),
            ctx.vector([3.0, 4.0, 5.0, 6.0]),
            ctx.vector([4.0, 5.0, 6.0, 7.0]),
        ];
        for row in &a {
            let mut scalars = Vec::new();
            for col in &a {
                scalars.push(row.v_dotp(col));
            }
            let _ = ctx.merge([&scalars[0], &scalars[1], &scalars[2], &scalars[3]]);
        }
        ctx.finish()
    }

    #[test]
    fn matmul_graph_matches_paper_size() {
        let g = matmul_graph();
        g.validate().unwrap();
        assert_eq!(g.len(), 44); // |V| = 44 (fig. 3 / Table 3)
        assert_eq!(g.edge_count(), 68); // |E| = 68
    }

    #[test]
    fn schedules_matmul_with_memory_and_simulator_agrees() {
        let mut g = matmul_graph();
        merge_pipeline_ops(&mut g);
        let spec = ArchSpec::eit();
        let opts = SchedulerOptions {
            timeout: Some(Duration::from_secs(30)),
            ..Default::default()
        };
        let r = schedule(&g, &spec, &opts);
        let s = r.schedule.expect("matmul must schedule");
        let v = validate_structure(&g, &spec, &s);
        assert!(v.is_empty(), "violations: {v:?}");
        // 16 dot products on 4 lanes, one config: issue takes 4 cycles,
        // merges bound the tail. The optimum is small but ≥ issue+pipeline.
        assert!(s.makespan >= 4 + 7, "makespan {}", s.makespan);
    }

    #[test]
    fn memoryless_schedule_is_no_longer_than_with_memory() {
        let mut g = matmul_graph();
        merge_pipeline_ops(&mut g);
        let spec = ArchSpec::eit();
        let with_mem = schedule(
            &g,
            &spec,
            &SchedulerOptions {
                timeout: Some(Duration::from_secs(30)),
                ..Default::default()
            },
        );
        let without = schedule(
            &g,
            &spec,
            &SchedulerOptions {
                memory: false,
                timeout: Some(Duration::from_secs(30)),
                ..Default::default()
            },
        );
        assert!(without.makespan.unwrap() <= with_mem.makespan.unwrap());
    }

    #[test]
    fn tiny_chain_is_exactly_latency_bound() {
        // a→add→b→mul→c : two dependent vector ops = 14 cc + issue.
        let ctx = Ctx::new("chain");
        let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
        let b = ctx.vector([1.0, 1.0, 0.0, 0.0]);
        let x = a.v_add(&b);
        let _y = x.v_mul(&b);
        let g = ctx.finish();
        let spec = ArchSpec::eit();
        let r = schedule(&g, &spec, &SchedulerOptions::default());
        assert_eq!(r.status, SearchStatus::Optimal);
        assert_eq!(r.makespan, Some(14));
    }

    #[test]
    fn expired_deadline_returns_quickly_without_a_schedule() {
        // A deadline in the past cancels the search at the first budget
        // check — the call must come back immediately (not after the
        // 600 s default timeout) and without claiming any result.
        let mut g = matmul_graph();
        merge_pipeline_ops(&mut g);
        let token = eit_cp::CancelToken::with_deadline(std::time::Instant::now());
        let t0 = std::time::Instant::now();
        let r = schedule(
            &g,
            &ArchSpec::eit(),
            &SchedulerOptions {
                cancel: Some(token),
                ..Default::default()
            },
        );
        assert!(r.schedule.is_none());
        assert_eq!(r.status, SearchStatus::Unknown);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "cancelled solve took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn infeasible_when_memory_too_small() {
        // Two simultaneous inputs + outputs cannot fit in 1 slot.
        let ctx = Ctx::new("too-small");
        let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
        let b = ctx.vector([1.0, 1.0, 0.0, 0.0]);
        let _ = a.v_add(&b);
        let g = ctx.finish();
        let mut spec = ArchSpec::eit();
        spec.n_banks = 1;
        spec.page_size = 1;
        spec.slots_per_bank = 1; // a single slot
        let r = schedule(&g, &spec, &SchedulerOptions::default());
        assert_eq!(r.status, SearchStatus::Infeasible);
    }
}
