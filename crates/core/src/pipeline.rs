//! The complete fig. 2 toolchain behind one entry point:
//! validate → CSE → DCE → pipeline-merge → CP schedule (± memory) →
//! configuration-stream code generation, with per-stage statistics.
//!
//! ```
//! use eit_core::pipeline::{compile, CompileOptions};
//! use eit_arch::ArchSpec;
//! use eit_dsl::Ctx;
//!
//! let ctx = Ctx::new("demo");
//! let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
//! let b = ctx.vector([2.0, 3.0, 4.0, 5.0]);
//! let _ = a.v_add(&b).v_dotp(&b).sqrt();
//!
//! let out = compile(ctx.finish(), &ArchSpec::eit(), &CompileOptions::default())
//!     .expect("kernel compiles");
//! assert!(out.schedule.makespan > 0);
//! assert!(out.program.listing.contains("configuration stream"));
//! ```

use crate::codegen::{generate, Program};
use crate::model::{schedule, SchedulerOptions};
use crate::obs::PhaseTimings;
use eit_arch::{ArchSpec, Schedule};
use eit_cp::{PropProfile, SearchStats, SearchStatus};
use eit_ir::{CseStats, Graph, IrError, MergeStats};
use std::fmt;

/// Options for [`compile`].
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Fold identical operations (CSE) before scheduling.
    pub cse: bool,
    /// Fold pre/post-processing chains (the fig. 6 merge pass).
    pub merge: bool,
    /// Scheduler settings (memory model, timeout, slot minimisation…).
    pub scheduler: SchedulerOptions,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            cse: true,
            merge: true,
            scheduler: SchedulerOptions::default(),
        }
    }
}

/// Why a compilation did not produce machine code.
#[derive(Debug)]
pub enum CompileError {
    InvalidIr(IrError),
    /// The CP model was proven infeasible (e.g. memory below the
    /// kernel's live-set floor).
    Infeasible,
    /// The solver budget expired without a schedule.
    Timeout,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidIr(e) => write!(f, "invalid IR: {e}"),
            CompileError::Infeasible => write!(f, "proven infeasible on this machine"),
            CompileError::Timeout => write!(f, "solver budget expired without a schedule"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Everything the toolchain produces for one kernel.
#[derive(Debug)]
pub struct Compiled {
    /// The IR actually scheduled (after the enabled passes).
    pub graph: Graph,
    pub schedule: Schedule,
    pub program: Program,
    pub status: SearchStatus,
    pub cse: CseStats,
    pub merge: MergeStats,
    pub solver: SearchStats,
    /// Wall-clock spans across all stages (validate, passes, the
    /// scheduler's own spans, codegen).
    pub timings: PhaseTimings,
    /// Per-propagator accounting; empty unless
    /// [`SchedulerOptions::profile`] was set.
    pub propagator_profile: Vec<PropProfile>,
    /// Domain-representation histogram `(bitset_vars, interval_vars)`
    /// of the scheduling model at end of search.
    pub domain_reps: (usize, usize),
}

/// Run the full toolchain on `graph`.
pub fn compile(
    mut graph: Graph,
    spec: &ArchSpec,
    opts: &CompileOptions,
) -> Result<Compiled, CompileError> {
    let mut timings = PhaseTimings::new();
    timings
        .time("validate", || graph.validate())
        .map_err(CompileError::InvalidIr)?;

    let cse = if opts.cse {
        timings.time("cse", || {
            eit_ir::eliminate_common_subexpressions(&mut graph)
        })
    } else {
        CseStats::default()
    };
    let merge = if opts.merge {
        timings.time("merge", || eit_ir::merge_pipeline_ops(&mut graph))
    } else {
        MergeStats::default()
    };
    debug_assert!(graph.validate().is_ok());

    let result = schedule(&graph, spec, &opts.scheduler);
    timings.extend(&result.timings);
    let sched = match (result.schedule, result.status) {
        (Some(s), _) => s,
        (None, SearchStatus::Infeasible) => return Err(CompileError::Infeasible),
        (None, _) => return Err(CompileError::Timeout),
    };
    let program = timings.time("codegen", || generate(&graph, spec, &sched));

    Ok(Compiled {
        graph,
        schedule: sched,
        program,
        status: result.status,
        cse,
        merge,
        solver: result.stats,
        timings,
        propagator_profile: result.propagator_profile,
        domain_reps: result.domain_reps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eit_dsl::Ctx;
    use std::time::Duration;

    fn opts(secs: u64) -> CompileOptions {
        CompileOptions {
            scheduler: SchedulerOptions {
                timeout: Some(Duration::from_secs(secs)),
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn full_pipeline_produces_listing() {
        let ctx = Ctx::new("t");
        let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
        let b = ctx.vector([2.0, 3.0, 4.0, 5.0]);
        let _ = a.v_add(&b).v_dotp(&b).sqrt();
        let out = compile(ctx.finish(), &ArchSpec::eit(), &opts(30)).unwrap();
        assert_eq!(out.status, SearchStatus::Optimal);
        assert!(out.program.listing.contains("configuration stream"));
        assert!(out.program.n_instructions >= 3);
    }

    #[test]
    fn cse_fires_inside_the_pipeline() {
        let ctx = Ctx::new("t");
        let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
        let b = ctx.vector([2.0, 3.0, 4.0, 5.0]);
        // The same dot product twice, both consumed.
        let d1 = a.v_dotp(&b);
        let d2 = a.v_dotp(&b);
        let _ = d1.add(&d2);
        let out = compile(ctx.finish(), &ArchSpec::eit(), &opts(30)).unwrap();
        assert_eq!(out.cse.ops_removed, 1);
    }

    #[test]
    fn merge_fires_inside_the_pipeline() {
        let ctx = Ctx::new("t");
        let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
        let b = ctx.vector([2.0, 3.0, 4.0, 5.0]);
        let _ = a.hermitian().v_mul(&b).sort();
        let out = compile(ctx.finish(), &ArchSpec::eit(), &opts(30)).unwrap();
        assert_eq!(out.merge.pre_merges, 1);
        assert_eq!(out.merge.post_merges, 1);
        // One fused pipeline trip: makespan = 7.
        assert_eq!(out.schedule.makespan, 7);
    }

    #[test]
    fn infeasible_memory_reports_cleanly() {
        let ctx = Ctx::new("t");
        let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
        let b = ctx.vector([2.0, 3.0, 4.0, 5.0]);
        let _ = a.v_add(&b);
        let spec = ArchSpec::eit().with_slots(1);
        match compile(ctx.finish(), &spec, &opts(10)) {
            Err(CompileError::Infeasible) => {}
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn invalid_ir_rejected_up_front() {
        let mut g = Graph::new("bad");
        let a = g.add_data(eit_ir::DataKind::Vector, "a");
        let b = g.add_data(eit_ir::DataKind::Vector, "b");
        g.add_edge(a, b); // data→data: not bipartite
        match compile(g, &ArchSpec::eit(), &opts(5)) {
            Err(CompileError::InvalidIr(_)) => {}
            other => panic!("expected InvalidIr, got {other:?}"),
        }
    }

    #[test]
    fn passes_can_be_disabled() {
        let ctx = Ctx::new("t");
        let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
        let b = ctx.vector([2.0, 3.0, 4.0, 5.0]);
        let d1 = a.v_dotp(&b);
        let d2 = a.v_dotp(&b);
        let _ = d1.add(&d2);
        let out = compile(
            ctx.finish(),
            &ArchSpec::eit(),
            &CompileOptions {
                cse: false,
                ..opts(30)
            },
        )
        .unwrap();
        assert_eq!(out.cse.ops_removed, 0);
    }
}
