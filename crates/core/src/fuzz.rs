//! Deterministic differential fuzzing of the whole toolchain.
//!
//! Every case is derived from a seed, generates a random DFG, and pushes
//! it through every independent path the stack offers, cross-checking the
//! outputs against each other and against the two redundant verifiers:
//!
//! - **IR interchange** — `to_xml` → `from_xml` must round-trip byte-for-
//!   byte, and the re-parsed graph must schedule *identically* (the model
//!   build and search are deterministic).
//! - **List scheduler** — the heuristic baseline's output must pass both
//!   [`eit_arch::validate_structure_with`] (the simulator's rules) and
//!   [`eit_arch::verify_schedule`] (the independent re-derivation); any
//!   disagreement between the two verifiers is itself a failure.
//! - **CP scheduler** — same double verification with the memory model
//!   on, plus full functional replay through [`eit_arch::simulate`], a
//!   `schedule_to_text`/`schedule_from_text` persistence round-trip, and
//!   the optimality cross-check `makespan(CP) ≤ makespan(list)` whenever
//!   the solver proves optimality.
//! - **Modulo scheduler** — `jobs = 1` vs `jobs = 4` must produce
//!   byte-identical results (the speculative-sweep determinism contract),
//!   and the winner must pass both the unrolled validation
//!   ([`crate::modulo::validate_modulo`]) and the independent wraparound
//!   verifier ([`eit_arch::verify_modulo`]).
//!
//! A failing case is shrunk to a minimal reproducer (greedy sink-removal
//! while the same stage keeps failing) and written to disk as XML plus a
//! description, so `fuzz --seed S --cases N` failures are one file away
//! from a unit test. Everything is seed-deterministic: same seed, same
//! graphs, same verdicts, on every platform (the in-repo `rand` shim is a
//! fixed splitmix64).

use crate::list_sched::list_schedule;
use crate::model::{schedule, SchedulerOptions};
use crate::modulo::{modulo_schedule, validate_modulo, ModuloOptions};
use eit_arch::{
    schedule_from_text, schedule_to_text, simulate, to_arch_xml, validate_structure,
    validate_structure_with, verify_modulo, verify_schedule, ArchSpec, UnitTable, Violation,
};
use eit_cp::SearchStatus;
use eit_ir::sem::Value;
use eit_ir::{
    from_xml, to_xml, CoreOp, Cplx, DataKind, Graph, LatencyModel, NodeId, Opcode, ScalarOp,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;

/// Fuzzing run parameters. Everything is deterministic in `seed`.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Master seed; case `i` runs on a seed derived from `(seed, i)`.
    pub seed: u64,
    /// Number of cases to generate.
    pub cases: u64,
    /// Where to write shrunk reproducers (`None` = don't write).
    pub out_dir: Option<PathBuf>,
    /// Solver budget per scheduling call. Generated graphs are small, so
    /// this is a safety net, not a tuning knob.
    pub solver_timeout: Duration,
    /// Also run the modulo `jobs=1` vs `jobs=4` differential (the most
    /// expensive stage).
    pub check_modulo: bool,
    /// Shrink failures before reporting.
    pub shrink: bool,
    /// Fuzz the architecture×kernel product space: each case runs on a
    /// seed-derived random [`ArchSpec`] (always `validate()`-clean)
    /// instead of the fixed EIT instance, and reproducers ship the arch
    /// XML next to the kernel XML.
    pub arch_fuzz: bool,
    /// Cross-check the CP modulo sweep against the independent SAT
    /// backend on every case where CP finds a schedule: equal II, and the
    /// SAT schedule clean under both verifiers. Implies the modulo stage.
    pub backend_fuzz: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 5,
            cases: 200,
            out_dir: Some(PathBuf::from("fuzz-failures")),
            solver_timeout: Duration::from_secs(20),
            check_modulo: true,
            shrink: true,
            arch_fuzz: false,
            backend_fuzz: false,
        }
    }
}

/// One failing case, shrunk and serialised.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Case index within the run.
    pub case: u64,
    /// The derived seed that regenerates the *original* (pre-shrink) graph.
    pub case_seed: u64,
    /// Which differential stage failed.
    pub stage: String,
    /// Human-readable description of the disagreement.
    pub detail: String,
    /// XML of the (shrunk) reproducer graph.
    pub graph_xml: String,
    /// `eit-arch/1` XML of the architecture the case ran on (`None` when
    /// the run used the builtin EIT instance).
    pub arch_xml: Option<String>,
    /// Where the reproducer was written, if `out_dir` was set.
    pub reproducer: Option<PathBuf>,
}

/// Outcome of a fuzzing run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    pub cases: u64,
    /// Total differential checks executed (a case contributes several).
    pub checks: u64,
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// splitmix64 — the per-case seed derivation (matches the rand shim's
/// generator family, but independent of its stream).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The seed driving case `i` of a run with master seed `seed`.
pub fn case_seed(seed: u64, case: u64) -> u64 {
    mix(seed ^ mix(case.wrapping_add(1)))
}

/// Generate a random layered DFG directly on the IR: vector arithmetic
/// with forward dependencies, dot-product reductions through the scalar
/// accelerator, index/merge traffic, and the occasional whole-matrix op —
/// the same statistical character as the paper's kernels, but unbiased by
/// the DSL's construction patterns.
pub fn gen_graph(rng: &mut StdRng) -> Graph {
    let mut g = Graph::new("fuzz");
    let n_in = rng.gen_range(2..5);
    let mut vecs: Vec<NodeId> = (0..n_in)
        .map(|i| g.add_data(DataKind::Vector, &format!("in{i}")))
        .collect();
    let mut scals: Vec<NodeId> = Vec::new();
    let layers = rng.gen_range(1..4);
    let mut uid = 0usize;
    for _ in 0..layers {
        let width = rng.gen_range(1..4);
        let mut next: Vec<NodeId> = Vec::new();
        for _ in 0..width {
            uid += 1;
            let name = format!("n{uid}");
            let a = vecs[rng.gen_range(0..vecs.len())];
            let b = vecs[rng.gen_range(0..vecs.len())];
            match rng.gen_range(0..10) {
                0..=3 => {
                    let core = [CoreOp::Add, CoreOp::Sub, CoreOp::Mul][rng.gen_range(0..3usize)];
                    let (_, d) = g.add_op_with_output(
                        Opcode::vector(core),
                        &[a, b],
                        DataKind::Vector,
                        &name,
                    );
                    next.push(d);
                }
                4 => {
                    let c = vecs[rng.gen_range(0..vecs.len())];
                    let (_, d) = g.add_op_with_output(
                        Opcode::vector(CoreOp::Mac),
                        &[a, b, c],
                        DataKind::Vector,
                        &name,
                    );
                    next.push(d);
                }
                5 | 6 => {
                    // Reduce to a scalar; sometimes push it through the
                    // accelerator and scale a vector back up.
                    let (_, s) = g.add_op_with_output(
                        Opcode::vector(CoreOp::DotP),
                        &[a, b],
                        DataKind::Scalar,
                        &name,
                    );
                    if rng.gen_bool(0.6) {
                        let (_, t) = g.add_op_with_output(
                            Opcode::Scalar(ScalarOp::Sqrt),
                            &[s],
                            DataKind::Scalar,
                            &format!("{name}s"),
                        );
                        let (_, d) = g.add_op_with_output(
                            Opcode::vector(CoreOp::Scale),
                            &[a, t],
                            DataKind::Vector,
                            &format!("{name}v"),
                        );
                        next.push(d);
                    } else {
                        scals.push(s);
                    }
                }
                7 => {
                    let k = rng.gen_range(0..4) as u8;
                    let (_, s) =
                        g.add_op_with_output(Opcode::Index(k), &[a], DataKind::Scalar, &name);
                    scals.push(s);
                }
                8 => {
                    if scals.len() >= 4 {
                        let ins: Vec<NodeId> = (0..4)
                            .map(|_| scals[rng.gen_range(0..scals.len())])
                            .collect();
                        let (_, d) =
                            g.add_op_with_output(Opcode::Merge, &ins, DataKind::Vector, &name);
                        next.push(d);
                    } else {
                        let (_, s) = g.add_op_with_output(
                            Opcode::vector(CoreOp::SquSum),
                            &[a],
                            DataKind::Scalar,
                            &name,
                        );
                        scals.push(s);
                    }
                }
                _ => {
                    if vecs.len() >= 4 {
                        let ins: Vec<NodeId> =
                            (0..4).map(|_| vecs[rng.gen_range(0..vecs.len())]).collect();
                        let (_, d) = g.add_op_with_output(
                            Opcode::matrix(CoreOp::SquSum),
                            &ins,
                            DataKind::Vector,
                            &name,
                        );
                        next.push(d);
                    }
                }
            }
        }
        vecs.extend(next);
    }
    g
}

/// Generate a random, always-[`ArchSpec::validate`]-clean architecture:
/// the classic three-unit mix priced by a randomized latency model on a
/// randomized memory geometry. Bounds keep the machine inside the
/// envelope the constraint model covers (the crossbar never narrower
/// than what the lane count can demand, pages dividing banks), so any
/// differential failure on a generated arch is a toolchain bug, not a
/// nonsensical machine.
pub fn gen_arch(rng: &mut StdRng) -> ArchSpec {
    let n_lanes = rng.gen_range(1..5u32);
    let n_banks = [8u32, 16, 32][rng.gen_range(0..3usize)];
    let page_size = [2u32, 4, 8][rng.gen_range(0..3usize)];
    let slots_per_bank = rng.gen_range(2..9u32);
    let m = LatencyModel {
        vector_pipeline: rng.gen_range(2..10),
        vector_duration: 1,
        accel_iterative: rng.gen_range(4..11),
        accel_simple: rng.gen_range(1..4),
        accel_duration_iterative: rng.gen_range(1..4),
        accel_duration_simple: 1,
        index_merge: rng.gen_range(1..3),
    };
    let spec = ArchSpec {
        n_lanes,
        n_banks,
        page_size,
        slots_per_bank,
        // EIT proportions: two reads and one write per lane per cycle,
        // floored at a matrix op's four simultaneous input reads and
        // never beyond what the banks can serve.
        max_vector_reads: (2 * n_lanes).max(4).min(n_banks),
        max_vector_writes: n_lanes.max(2).min(n_banks),
        reconfig_cost: rng.gen_range(1..5),
        slot_cap: None,
        units: UnitTable::classic(&m, n_lanes),
    };
    debug_assert!(spec.validate().is_ok(), "{:?}", spec.validate());
    spec
}

/// Deterministic input values for every producer-less data node, keyed on
/// the node index alone so shrinking never changes a surviving input.
pub fn inputs_for(g: &Graph) -> HashMap<NodeId, Value> {
    let mut inputs = HashMap::new();
    for n in g.ids() {
        if g.category(n).is_data() && g.producer(n).is_none() {
            let f = |k: u64| {
                let h = mix(n.idx() as u64 * 8 + k);
                ((h % 401) as f64 - 200.0) / 100.0 // [-2, 2] in 0.01 steps
            };
            let v = match g.node(n).kind {
                eit_ir::NodeKind::Data(DataKind::Vector) => Value::V(std::array::from_fn(|k| {
                    Cplx::new(f(2 * k as u64), f(2 * k as u64 + 1))
                })),
                _ => Value::S(Cplx::new(f(0), f(1))),
            };
            inputs.insert(n, v);
        }
    }
    inputs
}

fn fmt_violations(tag: &str, vs: &[Violation]) -> String {
    let head: Vec<String> = vs.iter().take(4).map(|v| v.to_string()).collect();
    format!("{tag}: {} violation(s): {}", vs.len(), head.join("; "))
}

/// Run every differential stage on one graph against the builtin EIT
/// instance. `Ok(checks)` counts the stages executed; `Err((stage,
/// detail))` is the first disagreement.
pub fn check_case(g: &Graph, opts: &FuzzOptions) -> Result<u64, (String, String)> {
    check_case_on(g, &ArchSpec::eit(), opts)
}

/// Run every differential stage on one `(graph, architecture)` pair.
pub fn check_case_on(
    g: &Graph,
    spec: &ArchSpec,
    opts: &FuzzOptions,
) -> Result<u64, (String, String)> {
    let fail = |stage: &str, detail: String| Err((stage.to_string(), detail));
    let mut checks = 0u64;
    let spec = spec.clone();

    // Stage: the generator's output is valid IR.
    checks += 1;
    if let Err(e) = g.validate() {
        return fail("ir-validate", format!("generated graph invalid: {e:?}"));
    }

    // Stage: XML round-trip is the identity on the wire format.
    checks += 1;
    let xml = to_xml(g);
    let g2 = match from_xml(&xml) {
        Ok(g2) => g2,
        Err(e) => return fail("xml-roundtrip", format!("re-parse failed: {e}")),
    };
    if to_xml(&g2) != xml {
        return fail("xml-roundtrip", "re-serialisation differs".into());
    }

    let inputs = inputs_for(g);

    // Stage: list scheduler output satisfies both verifiers.
    checks += 1;
    let list = list_schedule(g, &spec, false);
    if let Some(r) = &list {
        let sim_v = validate_structure_with(g, &spec, &r.schedule, false);
        let ver_v = verify_schedule(g, &spec, &r.schedule, false);
        if sim_v.is_empty() != ver_v.is_empty() {
            return fail(
                "verifier-disagreement",
                format!(
                    "list schedule: {} vs {}",
                    fmt_violations("simulator", &sim_v),
                    fmt_violations("independent", &ver_v)
                ),
            );
        }
        if !sim_v.is_empty() {
            return fail("list-schedule", fmt_violations("both verifiers", &sim_v));
        }
    }

    // Stage: CP scheduler with the memory model, doubly verified,
    // functionally replayed, and persisted.
    checks += 1;
    let sched_opts = SchedulerOptions {
        timeout: Some(opts.solver_timeout),
        ..Default::default()
    };
    let cp = schedule(g, &spec, &sched_opts);
    if let Some(s) = &cp.schedule {
        let sim_v = validate_structure(g, &spec, s);
        let ver_v = verify_schedule(g, &spec, s, true);
        if sim_v.is_empty() != ver_v.is_empty() {
            return fail(
                "verifier-disagreement",
                format!(
                    "CP schedule: {} vs {}",
                    fmt_violations("simulator", &sim_v),
                    fmt_violations("independent", &ver_v)
                ),
            );
        }
        if !sim_v.is_empty() {
            return fail("cp-schedule", fmt_violations("both verifiers", &sim_v));
        }
        let rep = simulate(g, &spec, s, &inputs);
        if !rep.ok() {
            return fail("cp-replay", fmt_violations("simulate", &rep.violations));
        }

        checks += 1;
        match schedule_from_text(&schedule_to_text(s)) {
            Ok(s2) if &s2 == s => {}
            Ok(_) => return fail("persist-roundtrip", "schedule round-trip differs".into()),
            Err(e) => return fail("persist-roundtrip", format!("re-parse failed: {e}")),
        }

        // Determinism: the XML-roundtripped graph must schedule
        // identically (ids are dense and order-preserved on the wire).
        checks += 1;
        let cp2 = schedule(&g2, &spec, &sched_opts);
        if cp.status == SearchStatus::Optimal
            && cp2.status == SearchStatus::Optimal
            && cp2.schedule.as_ref() != Some(s)
        {
            return fail(
                "xml-schedule-determinism",
                format!(
                    "same graph through XML schedules differently \
                     (makespan {:?} vs {:?})",
                    cp.makespan, cp2.makespan
                ),
            );
        }

        // Optimality cross-check against the heuristic baseline, on the
        // memoryless model both can solve.
        checks += 1;
        if let Some(lr) = &list {
            let cp_nomem = schedule(
                g,
                &spec,
                &SchedulerOptions {
                    memory: false,
                    timeout: Some(opts.solver_timeout),
                    ..Default::default()
                },
            );
            if cp_nomem.status == SearchStatus::Optimal {
                if let Some(m) = cp_nomem.makespan {
                    if m > lr.schedule.makespan {
                        return fail(
                            "cp-vs-list",
                            format!(
                                "optimal CP makespan {m} worse than list {}",
                                lr.schedule.makespan
                            ),
                        );
                    }
                }
            }
        }
    }

    // Stage: memory allocation under slot pressure — a budget of about
    // half the data nodes forces real slot reuse, which is where
    // lifetime-disjointness bugs live. Infeasible is a fine outcome;
    // a produced schedule must survive both verifiers and replay.
    checks += 1;
    let n_data = g.ids().filter(|&n| g.category(n).is_data()).count() as u32;
    let tight_spec = spec.clone().with_slots(n_data.div_ceil(2).max(4));
    let tight = schedule(g, &tight_spec, &sched_opts);
    if let Some(s) = &tight.schedule {
        let sim_v = validate_structure(g, &tight_spec, s);
        let ver_v = verify_schedule(g, &tight_spec, s, true);
        if sim_v.is_empty() != ver_v.is_empty() {
            return fail(
                "verifier-disagreement",
                format!(
                    "tight-slot schedule: {} vs {}",
                    fmt_violations("simulator", &sim_v),
                    fmt_violations("independent", &ver_v)
                ),
            );
        }
        if !sim_v.is_empty() {
            return fail("tight-slots", fmt_violations("both verifiers", &sim_v));
        }
        let rep = simulate(g, &tight_spec, s, &inputs);
        if !rep.ok() {
            return fail(
                "tight-slots-replay",
                fmt_violations("simulate", &rep.violations),
            );
        }
    }

    // Stage: modulo sweep determinism (jobs=1 vs jobs=4) and wraparound
    // verification of the winner.
    if opts.check_modulo || opts.backend_fuzz {
        checks += 1;
        let mopts = |jobs: usize| ModuloOptions {
            include_reconfig: false,
            timeout_per_ii: opts.solver_timeout,
            total_timeout: opts.solver_timeout.saturating_mul(4),
            jobs,
            ..Default::default()
        };
        let r1 = modulo_schedule(g, &spec, &mopts(1));
        let r4 = modulo_schedule(g, &spec, &mopts(4));
        match (&r1, &r4) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                if (a.ii_issue, a.switches, a.actual_ii) != (b.ii_issue, b.switches, b.actual_ii)
                    || a.t != b.t
                    || a.k != b.k
                    || a.s != b.s
                {
                    return fail(
                        "modulo-jobs-determinism",
                        format!(
                            "jobs=1 II {} ({} switches) vs jobs=4 II {} ({} switches)",
                            a.ii_issue, a.switches, b.ii_issue, b.switches
                        ),
                    );
                }
                checks += 1;
                let unrolled = validate_modulo(g, &spec, a, 3);
                if !unrolled.is_empty() {
                    return fail("modulo-unrolled", fmt_violations("3 iterations", &unrolled));
                }
                let wrapped = verify_modulo(g, &spec, &a.s, a.ii_issue);
                if !wrapped.is_empty() {
                    return fail(
                        "modulo-wraparound",
                        fmt_violations(&format!("II {}", a.ii_issue), &wrapped),
                    );
                }
                // Stage: cross-backend differential. The CDCL/CNF sweep is
                // an independent implementation of the same model, so its
                // minimum feasible II must match CP's, and its (different)
                // concrete schedule must satisfy both verifiers.
                if opts.backend_fuzz {
                    checks += 1;
                    let sopts = ModuloOptions {
                        backend: crate::modulo::Backend::Sat,
                        ..mopts(1)
                    };
                    match crate::modulo::modulo_schedule_checked(g, &spec, &sopts) {
                        Err(e) => {
                            return fail("modulo-backend-differential", format!("sat: {e}"));
                        }
                        Ok(None) => {
                            return fail(
                                "modulo-backend-differential",
                                format!("cp found II {} but sat found nothing", a.ii_issue),
                            );
                        }
                        Ok(Some(sr)) => {
                            if sr.ii_issue != a.ii_issue {
                                return fail(
                                    "modulo-backend-differential",
                                    format!("cp II {} vs sat II {}", a.ii_issue, sr.ii_issue),
                                );
                            }
                            let unrolled = validate_modulo(g, &spec, &sr, 3);
                            if !unrolled.is_empty() {
                                return fail(
                                    "modulo-backend-differential",
                                    fmt_violations("sat unrolled", &unrolled),
                                );
                            }
                            let wrapped = verify_modulo(g, &spec, &sr.s, sr.ii_issue);
                            if !wrapped.is_empty() {
                                return fail(
                                    "modulo-backend-differential",
                                    fmt_violations("sat wraparound", &wrapped),
                                );
                            }
                        }
                    }
                }
            }
            (a, b) => {
                return fail(
                    "modulo-jobs-determinism",
                    format!(
                        "jobs=1 found a schedule: {}, jobs=4: {}",
                        a.is_some(),
                        b.is_some()
                    ),
                );
            }
        }
    }

    Ok(checks)
}

/// Greedy shrink against the builtin EIT instance.
pub fn shrink(g: &Graph, stage: &str, opts: &FuzzOptions) -> Graph {
    shrink_on(g, &ArchSpec::eit(), stage, opts)
}

/// Greedy shrink: repeatedly delete sink ops (with their now-dead
/// outputs) and orphan inputs while the same stage keeps failing on the
/// same architecture.
pub fn shrink_on(g: &Graph, spec: &ArchSpec, stage: &str, opts: &FuzzOptions) -> Graph {
    let mut cur = g.clone();
    let mut budget = 200usize;
    loop {
        let mut progressed = false;
        let candidates: Vec<Vec<NodeId>> = {
            let mut cs = Vec::new();
            for n in cur.ids() {
                if cur.category(n).is_op() && cur.succs(n).iter().all(|&d| cur.succs(d).is_empty())
                {
                    let mut set = vec![n];
                    set.extend(cur.succs(n).iter().copied());
                    cs.push(set);
                } else if cur.category(n).is_data()
                    && cur.succs(n).is_empty()
                    && cur.producer(n).is_none()
                {
                    cs.push(vec![n]);
                }
            }
            cs
        };
        for set in candidates {
            if budget == 0 {
                return cur;
            }
            budget -= 1;
            let mut next = cur.clone();
            next.remove_nodes(&set);
            if next.is_empty() {
                continue;
            }
            if matches!(&check_case_on(&next, spec, opts), Err((s, _)) if s == stage) {
                cur = next;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return cur;
        }
    }
}

/// Record a straight-line scheduling run of `g` as an `eit-trace/1`
/// file, so every shrunk reproducer ships a replayable solver trajectory
/// next to its XML.
fn record_reproducer_trace(
    g: &Graph,
    spec: &ArchSpec,
    path: &std::path::Path,
    timeout: Duration,
) -> std::io::Result<()> {
    use eit_cp::trace::TraceHandle;
    use eit_cp::RecorderSink;
    let mut sched_opts = SchedulerOptions {
        timeout: Some(timeout),
        state_hash_every: Some(crate::rr::DEFAULT_HASH_EVERY),
        ..Default::default()
    };
    let header = crate::rr::schedule_header(g, spec, &sched_opts);
    let sink = RecorderSink::create(path, &header)?;
    sched_opts.trace = Some(TraceHandle::new(sink));
    schedule(g, spec, &sched_opts);
    Ok(())
}

/// Run the full differential fuzzer. Deterministic in `opts.seed`.
///
/// With `arch_fuzz` set, each case's seed first draws a random
/// architecture ([`gen_arch`]), then the kernel, so the run walks the
/// architecture×kernel product space; a failure's reproducer is then an
/// arch-XML + kernel-XML *pair*.
pub fn run(opts: &FuzzOptions) -> FuzzReport {
    let mut report = FuzzReport::default();
    for case in 0..opts.cases {
        let cs = case_seed(opts.seed, case);
        let mut rng = StdRng::seed_from_u64(cs);
        let spec = if opts.arch_fuzz {
            gen_arch(&mut rng)
        } else {
            ArchSpec::eit()
        };
        let g = gen_graph(&mut rng);
        report.cases += 1;
        match check_case_on(&g, &spec, opts) {
            Ok(n) => report.checks += n,
            Err((stage, detail)) => {
                let minimal = if opts.shrink {
                    shrink_on(&g, &spec, &stage, opts)
                } else {
                    g.clone()
                };
                // Re-derive the detail from the minimal graph when the
                // shrink preserved the stage (it always does by
                // construction, but don't trust — re-check).
                let detail = match check_case_on(&minimal, &spec, opts) {
                    Err((_, d)) => d,
                    Ok(_) => detail,
                };
                let graph_xml = to_xml(&minimal);
                let arch_xml = opts.arch_fuzz.then(|| to_arch_xml(&spec));
                let reproducer = opts.out_dir.as_ref().and_then(|dir| {
                    std::fs::create_dir_all(dir).ok()?;
                    let base = dir.join(format!("seed{}-case{case}", opts.seed));
                    let xml_path = base.with_extension("xml");
                    std::fs::write(&xml_path, &graph_xml).ok()?;
                    if let Some(ax) = &arch_xml {
                        // The machine half of the reproducer pair, ready
                        // for `eitc --arch`.
                        std::fs::write(base.with_extension("arch.xml"), ax).ok()?;
                    }
                    let _ = std::fs::write(
                        base.with_extension("txt"),
                        format!(
                            "seed: {}\ncase: {case}\ncase_seed: {cs}\nstage: {stage}\n\
                             detail: {detail}\nnodes: {} (shrunk from {})\narch: {}\n",
                            opts.seed,
                            minimal.len(),
                            g.len(),
                            if opts.arch_fuzz {
                                "generated (see .arch.xml)"
                            } else {
                                "eit"
                            },
                        ),
                    );
                    // Replayable `eit-trace/1` recording of the minimal
                    // graph's scheduler run (`eitc --replay` validates it).
                    let _ = record_reproducer_trace(
                        &minimal,
                        &spec,
                        &base.with_extension("trace"),
                        opts.solver_timeout,
                    );
                    Some(xml_path)
                });
                report.failures.push(FuzzFailure {
                    case,
                    case_seed: cs,
                    stage,
                    detail,
                    graph_xml,
                    arch_xml,
                    reproducer,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seed: u64, cases: u64, modulo: bool) -> FuzzOptions {
        FuzzOptions {
            seed,
            cases,
            out_dir: None,
            solver_timeout: Duration::from_secs(10),
            check_modulo: modulo,
            shrink: true,
            arch_fuzz: false,
            backend_fuzz: false,
        }
    }

    #[test]
    fn backend_fuzz_smoke_finds_no_disagreement() {
        let mut o = quick(11, 12, true);
        o.backend_fuzz = true;
        let rep = run(&o);
        assert!(
            rep.failures.is_empty(),
            "cross-backend differential failed: {:?}",
            rep.failures
                .iter()
                .map(|f| (&f.stage, &f.detail))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn generator_is_deterministic() {
        let a = gen_graph(&mut StdRng::seed_from_u64(7));
        let b = gen_graph(&mut StdRng::seed_from_u64(7));
        assert_eq!(to_xml(&a), to_xml(&b));
        let c = gen_graph(&mut StdRng::seed_from_u64(8));
        assert_ne!(to_xml(&a), to_xml(&c));
    }

    #[test]
    fn generated_arches_are_deterministic_and_always_valid() {
        let a = gen_arch(&mut StdRng::seed_from_u64(7));
        let b = gen_arch(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let mut distinct = 0;
        for case in 0..100 {
            let spec = gen_arch(&mut StdRng::seed_from_u64(case_seed(1, case)));
            spec.validate()
                .unwrap_or_else(|e| panic!("case {case}: {e}\n{spec:?}"));
            if spec != a {
                distinct += 1;
            }
        }
        // The generator actually walks the space.
        assert!(distinct > 90, "only {distinct} distinct arches in 100");
    }

    #[test]
    fn arch_kernel_product_space_smoke() {
        let mut opts = quick(11, 6, false);
        opts.arch_fuzz = true;
        let r = run(&opts);
        assert!(
            r.ok(),
            "{:?}",
            r.failures
                .iter()
                .map(|f| (&f.stage, &f.detail, &f.arch_xml))
                .collect::<Vec<_>>()
        );
        assert_eq!(r.cases, 6);
    }

    #[test]
    fn generated_graphs_are_valid_ir() {
        for case in 0..50 {
            let g = gen_graph(&mut StdRng::seed_from_u64(case_seed(1, case)));
            g.validate()
                .unwrap_or_else(|e| panic!("case {case}: {e:?}\n{}", to_xml(&g)));
        }
    }

    /// The CI gate in miniature — and the pinned regression corpus: these
    /// exact seeds once covered real bugs found while bringing the fuzzer
    /// up (see DESIGN.md §5g), so they must stay green forever.
    #[test]
    fn pinned_seeds_pass_differentially() {
        for seed in [5, 41, 97] {
            let r = run(&quick(seed, 8, false));
            assert!(
                r.ok(),
                "seed {seed}: {:?}",
                r.failures
                    .iter()
                    .map(|f| (&f.stage, &f.detail))
                    .collect::<Vec<_>>()
            );
            assert_eq!(r.cases, 8);
            assert!(r.checks >= 8 * 4);
        }
    }

    #[test]
    fn pinned_seed_passes_with_modulo_differential() {
        let r = run(&quick(5, 3, true));
        assert!(
            r.ok(),
            "{:?}",
            r.failures
                .iter()
                .map(|f| (&f.stage, &f.detail))
                .collect::<Vec<_>>()
        );
    }

    /// Planted-bug drill: corrupt a schedule and make sure the
    /// differential harness would notice — guards the harness itself.
    #[test]
    fn harness_detects_planted_corruption() {
        let g = gen_graph(&mut StdRng::seed_from_u64(case_seed(5, 0)));
        let spec = ArchSpec::eit();
        let r = schedule(&g, &spec, &SchedulerOptions::default());
        let mut s = r.schedule.expect("tiny graph must schedule");
        // Move every op one cycle earlier than its data allows.
        for n in g.ids() {
            if g.category(n).is_op() && s.start[n.idx()] > 0 {
                s.start[n.idx()] -= 1;
                break;
            }
        }
        let sim_v = validate_structure(&g, &spec, &s);
        let ver_v = verify_schedule(&g, &spec, &s, true);
        assert!(!sim_v.is_empty());
        assert!(!ver_v.is_empty());
    }

    #[test]
    fn shrink_produces_smaller_failing_case() {
        // Plant a failure by using an impossible stage check: instead,
        // drive shrink directly with a stage that any graph fails — the
        // cheapest honest probe is a synthetic one: a graph whose XML
        // round-trip we sabotage is hard to build, so exercise shrink's
        // contract on a case that *passes* (it must return the graph
        // unchanged).
        let opts = quick(5, 1, false);
        let g = gen_graph(&mut StdRng::seed_from_u64(case_seed(5, 0)));
        let shrunk = shrink(&g, "no-such-stage", &opts);
        assert_eq!(to_xml(&shrunk), to_xml(&g));
    }
}
