//! Portfolio scheduling: race several search strategies for the same
//! scheduling instance across threads, sharing the incumbent makespan.
//!
//! The paper lists taming solver time as future work ("for harder
//! problems the execution time of the solver can grow and degrade the
//! solution quality"); a strategy portfolio is the standard CP remedy and
//! maps directly onto [`eit_cp::portfolio::race`]. Each thread builds its
//! own copy of the model (models own boxed propagators and cannot be
//! cloned) with a different variable/value selection, and the first good
//! bound found anywhere prunes everyone.

use crate::model::{build_model, SchedulerOptions};
use crate::obs::PhaseTimings;
use eit_arch::{ArchSpec, Schedule};
use eit_cp::portfolio::{race_with_report, Strategy};
use eit_cp::{Phase, SearchConfig, ValSel, VarSel};
use eit_ir::Graph;
use std::sync::Arc;

/// The strategy axes raced by [`schedule_portfolio`].
fn variants() -> Vec<(VarSel, ValSel, ValSel)> {
    vec![
        // (op-start var sel, op-start val sel, slot val sel)
        (VarSel::SmallestMin, ValSel::Min, ValSel::Min),
        (VarSel::FirstFail, ValSel::Min, ValSel::Min),
        (VarSel::SmallestMin, ValSel::Split, ValSel::Min),
        (VarSel::SmallestMin, ValSel::Min, ValSel::Max),
    ]
}

/// Race the §3.5 search against three variations of itself; return the
/// best schedule found by any thread.
pub fn schedule_portfolio(
    g: &Graph,
    spec: &ArchSpec,
    opts: &SchedulerOptions,
) -> crate::model::ScheduleResult {
    let g = Arc::new(g.clone());
    let spec = spec.clone();
    let opts = opts.clone();

    let strategies: Vec<Strategy> = variants()
        .into_iter()
        .map(|(vs, vals, slot_vals)| {
            let g = Arc::clone(&g);
            let spec = spec.clone();
            let opts = opts.clone();
            let strat: Strategy = Box::new(move || {
                let built = build_model(&g, &spec, &opts);
                let mut phases = built.phases.clone();
                if let Some(p0) = phases.first_mut() {
                    *p0 = Phase::new(p0.vars.clone(), vs, vals);
                }
                if phases.len() == 3 {
                    let p2 = &mut phases[2];
                    *p2 = Phase::new(p2.vars.clone(), VarSel::FirstFail, slot_vals);
                }
                let cfg = SearchConfig {
                    phases,
                    timeout: opts.timeout,
                    node_limit: opts.node_limit,
                    shared_bound: None, // installed by race()
                    restart_on_solution: true,
                    trace: opts.trace.clone(),
                    state_hash_every: opts.state_hash_every,
                    cancel: opts.cancel.clone(),
                    restarts: opts.restarts,
                };
                (built.model, built.objective, cfg)
            });
            strat
        })
        .collect();

    let mut timings = PhaseTimings::new();
    let (r, report) = timings.time("portfolio_race", || race_with_report(strategies));

    // Extract the schedule by re-building one model to recover the
    // variable layout (deterministic), then reading the winning solution.
    let schedule = timings.time("extract", || {
        r.best.as_ref().map(|sol| {
            let built = build_model(&g, &spec, &opts);
            let mut s = Schedule::new(g.len());
            for i in g.ids() {
                s.start[i.idx()] = sol.value(built.start[i.idx()]);
                s.slot[i.idx()] = built.slot[i.idx()].map(|v| sol.value(v) as u32);
            }
            s.compute_makespan(&g, &spec.latency_of(&g));
            s
        })
    });

    crate::model::ScheduleResult {
        makespan: r.objective,
        schedule,
        status: r.status,
        stats: r.stats,
        timings,
        winner: Some(report.winner),
        // Racers each own their engine; no per-propagator profile here.
        propagator_profile: Vec::new(),
        domain_reps: (0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::schedule;
    use eit_arch::validate_structure;
    use eit_cp::SearchStatus;
    use eit_dsl::Ctx;
    use std::time::Duration;

    fn kernel() -> Graph {
        let ctx = Ctx::new("k");
        let a = ctx.vector([1.0, 2.0, 3.0, 4.0]);
        let b = ctx.vector([2.0, 3.0, 4.0, 5.0]);
        let x = a.v_add(&b);
        let y = x.v_mul(&b);
        let d = y.v_dotp(&a);
        let _ = d.rsqrt();
        ctx.finish()
    }

    #[test]
    fn portfolio_matches_single_thread_optimum() {
        let g = kernel();
        let spec = ArchSpec::eit();
        let opts = SchedulerOptions {
            timeout: Some(Duration::from_secs(30)),
            ..Default::default()
        };
        let single = schedule(&g, &spec, &opts);
        let multi = schedule_portfolio(&g, &spec, &opts);
        assert_eq!(multi.status, SearchStatus::Optimal);
        assert_eq!(multi.makespan, single.makespan);
        let s = multi.schedule.unwrap();
        assert!(validate_structure(&g, &spec, &s).is_empty());
    }

    #[test]
    fn portfolio_expired_deadline_returns_no_schedule() {
        // Regression: the portfolio's per-strategy SearchConfigs used to
        // hard-code `cancel: None`, so an already-expired deadline token
        // passed via SchedulerOptions was silently ignored and every racer
        // ran to its (600 s default) timeout. With the token plumbed
        // through, all racers cancel at their first budget check and the
        // race reports no schedule — structurally, without panicking.
        let g = kernel();
        let spec = ArchSpec::eit();
        let token = eit_cp::CancelToken::with_deadline(std::time::Instant::now());
        let t0 = std::time::Instant::now();
        let r = schedule_portfolio(
            &g,
            &spec,
            &SchedulerOptions {
                cancel: Some(token),
                ..Default::default()
            },
        );
        assert!(
            r.schedule.is_none(),
            "cancelled race must not claim a schedule"
        );
        assert_eq!(r.status, SearchStatus::Unknown);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "cancelled portfolio took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn portfolio_detects_infeasibility() {
        let g = kernel();
        // One slot cannot hold two live inputs.
        let spec = ArchSpec::eit().with_slots(1);
        let r = schedule_portfolio(
            &g,
            &spec,
            &SchedulerOptions {
                timeout: Some(Duration::from_secs(10)),
                ..Default::default()
            },
        );
        assert_eq!(r.status, SearchStatus::Infeasible);
    }
}
