//! Overlapped execution — the architects' ad-hoc two-phase pipelining
//! technique (§4.3, Table 2).
//!
//! Phase 1 orders the operations of a *single* iteration into a sequence
//! of instruction bundles (one bundle = one issue cycle: up to four
//! same-configuration vector ops, or one matrix op, optionally alongside
//! one accelerator op and one index/merge op). Phase 2 executes the same
//! bundle of `M` consecutive iterations back to back: all `k`-th bundles
//! of iterations `0..M`, then all `(k+1)`-th bundles, and so on. With
//! `M` larger than the pipeline depth the latency between dependent
//! bundles of one iteration is fully masked, and the vector core only
//! reconfigures at bundle boundaries, so the number of reconfigurations
//! is bounded by the number of bundles.
//!
//! Two bundle sources reproduce Table 2's two rows:
//! - [`bundles_from_schedule`] — the *automated* path: bundles read off a
//!   CP schedule (with memory allocation);
//! - [`manual_style_bundles`] — the *manual* path: a greedy
//!   instruction-count-minimising ordering, the way the architects write
//!   machine code by hand ("the objective of minimizing the number of
//!   effective instructions", no memory allocation).

use crate::replicate::replicate;
use eit_arch::{ArchSpec, ConfigStream, Schedule};
use eit_ir::{Category, Graph, NodeId, VectorConfig};
use std::collections::HashMap;

/// One issue bundle of a single iteration.
#[derive(Clone, Debug, Default)]
pub struct Bundle {
    pub vector_ops: Vec<NodeId>,
    pub config: Option<VectorConfig>,
    pub scalar_op: Option<NodeId>,
    pub index_merge_op: Option<NodeId>,
}

impl Bundle {
    fn is_empty(&self) -> bool {
        self.vector_ops.is_empty() && self.scalar_op.is_none() && self.index_merge_op.is_none()
    }
}

/// Read bundles off an existing single-iteration schedule, in issue order.
pub fn bundles_from_schedule(g: &Graph, sched: &Schedule) -> Vec<Bundle> {
    let mut by_cycle: HashMap<i32, Bundle> = HashMap::new();
    for n in g.ids() {
        let cat = g.category(n);
        if !cat.is_op() {
            continue;
        }
        let b = by_cycle.entry(sched.start_of(n)).or_default();
        match cat {
            Category::VectorOp | Category::MatrixOp => {
                b.vector_ops.push(n);
                b.config = g.opcode(n).unwrap().config();
            }
            Category::ScalarOp => b.scalar_op = Some(n),
            Category::Index | Category::Merge => b.index_merge_op = Some(n),
            _ => unreachable!(),
        }
    }
    let mut cycles: Vec<i32> = by_cycle.keys().copied().collect();
    cycles.sort_unstable();
    cycles
        .into_iter()
        .map(|c| by_cycle.remove(&c).unwrap())
        .filter(|b| !b.is_empty())
        .collect()
}

/// Greedy instruction-count-minimising bundling, mimicking hand-written
/// machine code: at each step issue the ready configuration with the most
/// ready vector ops (up to the lane count), and piggy-back one ready
/// accelerator op and one ready index/merge op.
pub fn manual_style_bundles(g: &Graph, spec: &ArchSpec) -> Vec<Bundle> {
    let mut remaining_preds: Vec<usize> = g
        .ids()
        .map(|n| {
            g.preds(n)
                .iter()
                .filter(|&&p| g.category(p).is_data() && g.producer(p).is_some())
                .count()
        })
        .collect();
    let is_op = |n: NodeId| g.category(n).is_op();
    let mut scheduled = vec![false; g.len()];
    let mut bundles = Vec::new();
    let n_ops = g.ids().filter(|&n| is_op(n)).count();
    let mut done = 0;

    while done < n_ops {
        // Ready ops: all producing ops of their operands already bundled.
        let ready: Vec<NodeId> = g
            .ids()
            .filter(|&n| is_op(n) && !scheduled[n.idx()] && remaining_preds[n.idx()] == 0)
            .collect();
        debug_assert!(!ready.is_empty(), "DAG must always have ready ops");

        // Group ready vector ops by configuration; pick the biggest group.
        let mut groups: HashMap<VectorConfig, Vec<NodeId>> = HashMap::new();
        for &n in &ready {
            if let Some(cfg) = g.opcode(n).unwrap().config() {
                groups.entry(cfg).or_default().push(n);
            }
        }
        let mut bundle = Bundle::default();
        if let Some((cfg, ops)) = groups
            .into_iter()
            .max_by_key(|(_, v)| (v.len(), std::cmp::Reverse(v[0].idx())))
        {
            let cap = if cfg.matrix { 1 } else { spec.n_lanes as usize };
            bundle.vector_ops = ops.into_iter().take(cap).collect();
            bundle.config = Some(cfg);
        }
        bundle.scalar_op = ready
            .iter()
            .copied()
            .find(|&n| g.category(n) == Category::ScalarOp);
        bundle.index_merge_op = ready
            .iter()
            .copied()
            .find(|&n| matches!(g.category(n), Category::Index | Category::Merge));

        if bundle.is_empty() {
            // Only possible if ready contained nothing issueable — cannot
            // happen with the three classes above.
            unreachable!("empty bundle with non-empty ready set");
        }

        // Commit the bundle and release successors.
        let committed: Vec<NodeId> = bundle
            .vector_ops
            .iter()
            .copied()
            .chain(bundle.scalar_op)
            .chain(bundle.index_merge_op)
            .collect();
        for op in committed {
            scheduled[op.idx()] = true;
            done += 1;
            for &d in g.succs(op) {
                for &consumer in g.succs(d) {
                    remaining_preds[consumer.idx()] -= 1;
                }
            }
        }
        bundles.push(bundle);
    }
    bundles
}

/// Result of the overlap transform.
#[derive(Debug)]
pub struct OverlapResult {
    /// The M-iteration graph the schedule refers to.
    pub graph: Graph,
    pub schedule: Schedule,
    pub iterations: usize,
    pub makespan: i32,
    /// Reconfigurations (configuration switches between issuing cycles).
    pub reconfig_switches: usize,
    /// Switches + the initial configuration load.
    pub config_loads: usize,
    /// Iterations per clock cycle.
    pub throughput: f64,
    /// Number of single-iteration instruction bundles.
    pub n_bundles: usize,
}

/// Execute `m` iterations with the overlapped-execution discipline:
/// bundle `k` of iterations `0..m` back to back, then bundle `k+1`, with
/// a `reconfig_cost` stall at configuration switches and dependency
/// stretching when the interleave alone does not mask a latency.
pub fn overlapped_execution(
    g: &Graph,
    spec: &ArchSpec,
    bundles: &[Bundle],
    m: usize,
) -> OverlapResult {
    assert!(m >= 1);
    let (big, map) = replicate(g, m);

    let mut sched = Schedule::new(big.len());
    // ready[node] = earliest cycle the replicated node's output exists.
    let mut start = vec![0i32; big.len()];
    let mut cursor: i32 = 0;
    let mut prev_cfg: Option<VectorConfig> = None;

    for b in bundles {
        // Reconfiguration stall at a configuration switch.
        if let Some(cfg) = b.config {
            if prev_cfg.is_some() && prev_cfg != Some(cfg) {
                cursor += spec.reconfig_cost;
            }
            prev_cfg = Some(cfg);
        }
        // Multi-cycle units (the iterative accelerator ops) force a wider
        // issue stride so consecutive iterations do not overlap them.
        let stride = b
            .vector_ops
            .iter()
            .chain(&b.scalar_op)
            .chain(&b.index_merge_op)
            .map(|&op| spec.duration(&g.node(op).kind))
            .max()
            .unwrap_or(1)
            .max(1);
        for ids in map.iter().take(m) {
            // Earliest legal issue for this iteration's copy of the bundle.
            let ops = b
                .vector_ops
                .iter()
                .chain(&b.scalar_op)
                .chain(&b.index_merge_op);
            let mut earliest = cursor;
            for &op in ops.clone() {
                let cop = ids[op.idx()];
                for &d in big.preds(cop) {
                    if let Some(p) = big.producer(d) {
                        let ready = start[p.idx()] + spec.latency(&big.node(p).kind);
                        earliest = earliest.max(ready);
                    }
                }
            }
            for &op in ops {
                let cop = ids[op.idx()];
                start[cop.idx()] = earliest;
                for &d in big.succs(cop) {
                    start[d.idx()] = earliest + spec.latency(&big.node(cop).kind);
                }
            }
            cursor = earliest + stride;
        }
    }

    sched.start = start;
    sched.compute_makespan(&big, &spec.latency_of(&big));
    let cs = ConfigStream::from_schedule(&big, spec, &sched);
    let makespan = sched.makespan;
    OverlapResult {
        reconfig_switches: cs.reconfig_switches(),
        config_loads: cs.config_loads(),
        throughput: m as f64 / makespan.max(1) as f64,
        makespan,
        n_bundles: bundles.len(),
        iterations: m,
        graph: big,
        schedule: sched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{schedule, SchedulerOptions};
    use eit_arch::sim::validate_structure_with;
    use eit_dsl::Ctx;

    /// A chain of two dependent vector ops of different types.
    fn chain_graph() -> Graph {
        let ctx = Ctx::new("chain");
        let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
        let b = ctx.vector([0.0, 1.0, 0.0, 0.0]);
        let x = a.v_add(&b);
        let _ = x.v_mul(&b);
        ctx.finish()
    }

    #[test]
    fn manual_bundles_cover_all_ops_once() {
        let g = chain_graph();
        let bundles = manual_style_bundles(&g, &ArchSpec::eit());
        let total: usize = bundles
            .iter()
            .map(|b| {
                b.vector_ops.len()
                    + usize::from(b.scalar_op.is_some())
                    + usize::from(b.index_merge_op.is_some())
            })
            .sum();
        assert_eq!(total, 2);
        assert_eq!(bundles.len(), 2); // dependent ops cannot share a bundle
    }

    #[test]
    fn overlap_masks_pipeline_latency() {
        let g = chain_graph();
        let spec = ArchSpec::eit();
        let bundles = manual_style_bundles(&g, &spec);
        // Single iteration: 2 dependent pipeline trips ≈ 15 cc.
        let single = overlapped_execution(&g, &spec, &bundles, 1);
        assert!(single.makespan >= 14);
        // 12 overlapped iterations: issue dominates, latency masked.
        let many = overlapped_execution(&g, &spec, &bundles, 12);
        assert!(many.throughput > 4.0 * single.throughput);
        // Validity (no memory in overlap experiments, as in the paper).
        let v = validate_structure_with(&many.graph, &spec, &many.schedule, false);
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn reconfigurations_bounded_by_bundles() {
        let g = chain_graph();
        let spec = ArchSpec::eit();
        let bundles = manual_style_bundles(&g, &spec);
        let r = overlapped_execution(&g, &spec, &bundles, 12);
        // One switch between the two bundle types (add → mul), no matter
        // how many iterations.
        assert_eq!(r.reconfig_switches, 1);
        assert_eq!(r.config_loads, 2);
    }

    #[test]
    fn automated_bundles_round_trip_through_cp_schedule() {
        let g = chain_graph();
        let spec = ArchSpec::eit();
        let r = schedule(&g, &spec, &SchedulerOptions::default());
        let s = r.schedule.unwrap();
        let bundles = bundles_from_schedule(&g, &s);
        assert_eq!(bundles.len(), 2);
        let o = overlapped_execution(&g, &spec, &bundles, 8);
        let v = validate_structure_with(&o.graph, &spec, &o.schedule, false);
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn overlapped_execution_passes_the_independent_verifier() {
        // Both bundle sources, several interleave depths, checked by the
        // adversarial eit-arch verifier (including the reconfig-stall
        // rule) — the same gate `eitc --overlap --verify` runs.
        let g = chain_graph();
        let spec = ArchSpec::eit();
        let manual = manual_style_bundles(&g, &spec);
        let r = schedule(&g, &spec, &SchedulerOptions::default());
        let auto = bundles_from_schedule(&g, &r.schedule.unwrap());
        for bundles in [&manual, &auto] {
            for m in [1, 4, 12] {
                let o = overlapped_execution(&g, &spec, bundles, m);
                let v = eit_arch::verify_overlapped(&o.graph, &spec, &o.schedule);
                assert!(v.is_empty(), "m={m}: {v:?}");
            }
        }
    }

    #[test]
    fn output_burstiness_all_outputs_in_tail() {
        // The paper's noted drawback: all output lands at the end.
        let g = chain_graph();
        let spec = ArchSpec::eit();
        let bundles = manual_style_bundles(&g, &spec);
        let m = 8;
        let r = overlapped_execution(&g, &spec, &bundles, m);
        let outs = r.graph.outputs();
        let last_issue_window = r.makespan - 7 - m as i32;
        let late = outs
            .iter()
            .filter(|&&o| r.schedule.start_of(o) > last_issue_window)
            .count();
        assert_eq!(late, outs.len(), "outputs cluster in the schedule tail");
    }
}
