//! Modulo scheduling as a CSP (§4.3, Table 3).
//!
//! Software pipelining à la Lam: find a schedule that initiates a new
//! iteration every *II* cycles. Each operation gets a window position
//! `t ∈ [0, II)` and a stage `k ≥ 0` with `s = k·II + t`; precedences act
//! on `s`, resource constraints act on `t` (all iterations overlay in the
//! window). The II is sought bottom-up from the resource lower bound —
//! a fresh CSP per candidate II, as the paper does.
//!
//! **Excluding reconfigurations** (the paper's first model): solve for
//! minimal issue-II, then count the vector core's configuration switches
//! around the steady-state window in a post-processing step; each switch
//! stalls the window by `reconfig_cost`, so
//! `actual II = II + #switches·cost` (Table 3: QRD 32+23→55, ARF
//! 16+16→32; MATMUL's single configuration is loaded once outside the
//! steady state, so its actual II stays 4).
//!
//! **Including reconfigurations** (the paper's second model, details
//! omitted there — ours is documented in DESIGN.md §4): operations that
//! share a configuration are constrained to a contiguous *band* of window
//! slots (bands pairwise disjoint), so the window switches configurations
//! exactly once per band; the effective II is then
//! `II_issue + #bands·cost` (cyclically, when more than one band exists),
//! and minimising issue-II under the band constraint minimises the
//! effective II. This trades some issue-packing freedom for far fewer
//! switches — the same trade the paper reports (better throughput, much
//! longer optimisation).

use eit_arch::{ArchSpec, Schedule};
use eit_cp::props::cumulative::CumTask;
use eit_cp::props::diff2::Rect;
use eit_cp::trace::{MemorySink, SearchEvent, TraceHandle};
use eit_cp::{
    solve, CancelToken, Model, Phase, SearchConfig, SearchStats, SearchStatus, ValSel, VarId,
    VarSel,
};
use eit_ir::{Category, Graph, NodeId, OpClass, VectorConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which decision procedure answers each candidate II of the sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// The CP solver (the paper's engine; supports both reconfiguration
    /// models, record/replay, and the parallel speculative sweep).
    #[default]
    Cp,
    /// The CDCL SAT backend (`eit-sat`): order-encoded CNF per candidate
    /// II, exclude-reconfig model only. Every satisfying assignment is
    /// re-checked by both independent verifiers before it is accepted.
    Sat,
    /// Race CP against SAT under child cancellation tokens; the first
    /// backend to find a (verified) schedule wins and cancels the other.
    /// Both sweep the same bottom-up candidate order, so the winning II
    /// is backend-independent — only the attribution varies.
    Race,
}

impl Backend {
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "cp" => Some(Backend::Cp),
            "sat" => Some(Backend::Sat),
            "race" => Some(Backend::Race),
            _ => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Cp => "cp",
            Backend::Sat => "sat",
            Backend::Race => "race",
        }
    }
}

/// Structured failure of a modulo-scheduling run: the model could not be
/// built or a backend misbehaved. Distinct from the ordinary "no
/// schedule within budget" outcome, which stays `Ok(None)` /
/// [`Option::None`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModuloError {
    /// The graph refers to something the model cannot express — e.g. a
    /// vector-core op without a configuration entry. Names the node.
    ModelBuild { node: String, detail: String },
    /// The requested backend cannot serve this configuration (the SAT
    /// encoding covers the exclude-reconfig model only).
    UnsupportedBackend(String),
    /// A backend produced an assignment that one of the independent
    /// verifiers rejected — a solver bug surfaced as data, not a panic.
    BackendDisagreement(String),
}

impl std::fmt::Display for ModuloError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModuloError::ModelBuild { node, detail } => {
                write!(f, "model build failed at node '{node}': {detail}")
            }
            ModuloError::UnsupportedBackend(msg) => write!(f, "unsupported backend: {msg}"),
            ModuloError::BackendDisagreement(msg) => {
                write!(f, "backend produced an invalid schedule: {msg}")
            }
        }
    }
}

impl std::error::Error for ModuloError {}

/// Aggregated SAT-solver counters of one sweep (summed over every
/// candidate II the SAT backend touched), for `eit-run-metrics/1`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SatStats {
    pub vars: u64,
    pub clauses: u64,
    pub decisions: u64,
    pub conflicts: u64,
    pub propagations: u64,
    pub restarts: u64,
}

/// Options for [`modulo_schedule`].
#[derive(Clone, Debug)]
pub struct ModuloOptions {
    /// Model reconfigurations inside the optimisation (second variant).
    pub include_reconfig: bool,
    /// Budget per candidate II.
    pub timeout_per_ii: Duration,
    /// Total budget across the II sweep (the paper's 10 minutes).
    pub total_timeout: Duration,
    /// Upper bound on the II sweep; `None` = serial bound.
    pub max_ii: Option<i32>,
    /// Worker threads for the speculative II sweep. `1` (the default)
    /// probes candidates strictly bottom-up, as the paper does; `N > 1`
    /// probes N candidates concurrently and cancels every probe above the
    /// lowest feasible II found. The *answer* is identical either way —
    /// see the determinism contract in DESIGN.md.
    pub jobs: usize,
    /// Structured search-event sink. Each probe buffers its events
    /// privately; after the sweep the streams of every candidate up to
    /// and including the winning II are forwarded in II order, each
    /// prefixed with [`SearchEvent::Stream`]` { id: ii }`. Because
    /// cancellation only ever hits candidates above the winner, the
    /// merged trace is identical under any `jobs` (absent timeouts).
    /// A statically refuted candidate contributes an empty stream.
    pub trace: Option<TraceHandle>,
    /// Emit a [`SearchEvent::StateHash`] digest every N search nodes
    /// inside each probe (`None`/0 = off).
    pub state_hash_every: Option<u64>,
    /// Cooperative cancellation for the whole sweep (service deadlines).
    /// Every probe runs under a [`CancelToken::child`] of this token, so
    /// a request-level deadline stops all in-flight probes while the
    /// sweep keeps its own per-probe cancellation (candidates above a
    /// feasible II) intact. Excluded from
    /// [`crate::rr::modulo_config_string`], like the time budgets.
    pub cancel: Option<CancelToken>,
    /// Restart policy for each probe's satisfaction search (`None` =
    /// plain DFS). Trajectory-shaping, so it **is** part of
    /// [`crate::rr::modulo_config_string`].
    pub restarts: Option<eit_cp::RestartConfig>,
    /// Hybrid bitset/interval domains in every probe model (default).
    /// Representation-only — excluded from the config string.
    pub bitset: bool,
    /// Decision procedure for the sweep: CP (default), SAT, or a race of
    /// the two. Trajectory-shaping, so it joins
    /// [`crate::rr::modulo_config_string`].
    pub backend: Backend,
}

impl Default for ModuloOptions {
    fn default() -> Self {
        ModuloOptions {
            include_reconfig: false,
            timeout_per_ii: Duration::from_secs(60),
            total_timeout: Duration::from_secs(600),
            max_ii: None,
            jobs: 1,
            trace: None,
            state_hash_every: None,
            cancel: None,
            restarts: None,
            bitset: true,
            backend: Backend::Cp,
        }
    }
}

/// Per-candidate-II accounting of one sweep, in candidate order.
#[derive(Clone, Debug)]
pub struct ProbeStat {
    pub ii: i32,
    /// `"feasible"`, `"infeasible"`, `"timeout"`, or `"cancelled"` (a
    /// speculative probe above the winning II that was stopped or never
    /// started; only occurs with `jobs > 1`).
    pub outcome: &'static str,
    pub nodes: u64,
    pub fails: u64,
    pub time: Duration,
    /// Worker that ran the probe (always 0 for a sequential sweep; the
    /// assignment varies run-to-run for a parallel one).
    pub worker: usize,
}

/// Result of a modulo-scheduling run.
#[derive(Debug)]
pub struct ModuloResult {
    /// Issue window length found by the CSP.
    pub ii_issue: i32,
    /// Steady-state configuration switches per window.
    pub switches: usize,
    /// Effective initiation interval including reconfiguration stalls.
    pub actual_ii: i32,
    /// `1 / actual_ii`.
    pub throughput: f64,
    /// Window position per op node.
    pub t: HashMap<NodeId, i32>,
    /// Stage per op node.
    pub k: HashMap<NodeId, i32>,
    /// Absolute start per node (one iteration).
    pub s: HashMap<NodeId, i32>,
    pub opt_time: Duration,
    /// Some candidate IIs timed out before this solution (result may be
    /// sub-optimal, as the paper reports for QRD's second model).
    pub timed_out: bool,
    /// One entry per candidate II the sweep touched, in candidate order.
    pub probes: Vec<ProbeStat>,
    /// Worker threads the sweep ran with.
    pub jobs: usize,
    /// Backend that produced the schedule (`"cp"` or `"sat"` — under
    /// `Backend::Race` this is the winner's attribution).
    pub backend: &'static str,
    /// SAT-solver counters, when the SAT backend ran (its sweep, or its
    /// side of a race — present even if CP won the race).
    pub sat: Option<SatStats>,
}

/// Resource-based lower bound on II: for each unit,
/// `ceil(Σ req·dur / capacity)`, tightened by the vector-memory port
/// bound. (The recurrence bound is 0 — the paper's kernels are
/// feedback-free DAGs.)
///
/// **Port bound.** In steady state every II-cycle window issues exactly
/// one instance of each operation, so the window must stream one
/// iteration's working set through the memory crossbar: each *distinct*
/// vector datum some vector-core op consumes is read at least once, and
/// each vector datum a vector-core op produces is written once. The
/// crossbar sustains at most `max_vector_reads` element reads and
/// `max_vector_writes` element writes per cycle (§2, constraints (8)/(9)),
/// hence `II ≥ ceil(reads / read_ports)` and likewise for writes. Distinct
/// data conservatively under-count the traffic (two ops reading the same
/// datum in different stages touch different iteration instances), so the
/// bound is sound; it already prunes whole candidate IIs from the sweep on
/// port-narrow machine configurations.
pub fn ii_lower_bound(g: &Graph, spec: &ArchSpec) -> i32 {
    // Per-unit work bound, from the unit table: each op contributes
    // width·duration to the unit serving its class, and the unit clears
    // at most `count` of that per cycle.
    let mut unit_bound = 0i64;
    for unit in &spec.units.units {
        let classes: Vec<OpClass> = unit.ops.iter().map(|o| o.class).collect();
        let work: i64 = g
            .ids()
            .filter_map(|n| {
                let c = OpClass::of(&g.node(n).kind)?;
                classes.contains(&c).then(|| {
                    spec.duration(&g.node(n).kind) as i64
                        * spec.units.class_width(c).unwrap_or(1) as i64
                })
            })
            .sum();
        let cap = (unit.count as i64).max(1);
        unit_bound = unit_bound.max((work + cap - 1) / cap);
    }

    let mut consumed = vec![false; g.len()];
    let mut produced = vec![false; g.len()];
    for n in g.ids() {
        if matches!(g.category(n), Category::VectorOp | Category::MatrixOp) {
            for &d in g.preds(n) {
                if g.category(d) == Category::VectorData {
                    consumed[d.idx()] = true;
                }
            }
            for &d in g.succs(n) {
                if g.category(d) == Category::VectorData {
                    produced[d.idx()] = true;
                }
            }
        }
    }
    let reads = consumed.iter().filter(|&&b| b).count() as i64;
    let writes = produced.iter().filter(|&&b| b).count() as i64;
    let rp = (spec.max_vector_reads as i64).max(1);
    let wp = (spec.max_vector_writes as i64).max(1);
    let port_bound = ((reads + rp - 1) / rp).max((writes + wp - 1) / wp);

    unit_bound.max(port_bound).max(1) as i32
}

/// The vector-core configuration groups of a graph, in first-appearance
/// order.
pub fn config_groups(g: &Graph) -> Vec<(VectorConfig, Vec<NodeId>)> {
    let mut groups: Vec<(VectorConfig, Vec<NodeId>)> = Vec::new();
    for n in g.ids() {
        if let Some(cfg) = g.opcode(n).and_then(|o| o.config()) {
            match groups.iter_mut().find(|(c, _)| *c == cfg) {
                Some((_, v)) => v.push(n),
                None => groups.push((cfg, vec![n])),
            }
        }
    }
    groups
}

/// Count steady-state configuration switches of a window assignment:
/// walk the issuing window slots in order (cyclically) and count config
/// changes.
pub fn count_window_switches(g: &Graph, t: &HashMap<NodeId, i32>) -> usize {
    let mut slots: Vec<(i32, VectorConfig)> = t
        .iter()
        .filter_map(|(&n, &tt)| g.opcode(n).and_then(|o| o.config()).map(|c| (tt, c)))
        .collect();
    slots.sort_by_key(|&(tt, _)| tt);
    slots.dedup();
    if slots.len() <= 1 {
        return 0;
    }
    let mut switches = 0;
    for i in 0..slots.len() {
        let next = (i + 1) % slots.len();
        if slots[i].1 != slots[next].1 {
            switches += 1;
        }
    }
    switches
}

/// Outcome of one candidate II.
#[derive(Debug)]
pub enum IiOutcome {
    /// (t, k, s) assignments.
    Feasible(
        HashMap<NodeId, i32>,
        HashMap<NodeId, i32>,
        HashMap<NodeId, i32>,
    ),
    Infeasible,
    Timeout,
    /// The probe's cancellation token was raised before it could decide
    /// the candidate (speculative sweeps only; never a refutation proof).
    Cancelled,
    /// The model could not be built for this candidate (malformed graph
    /// — e.g. a vector op without a configuration). II-independent: the
    /// sweep aborts with the structured error instead of probing on.
    Malformed(ModuloError),
}

/// Attempt one candidate II (public so harnesses can probe specific IIs).
pub fn schedule_at_ii(
    g: &Graph,
    spec: &ArchSpec,
    ii: i32,
    include_reconfig: bool,
    budget: Duration,
) -> IiOutcome {
    probe_ii(
        g,
        spec,
        ii,
        include_reconfig,
        budget,
        None,
        None,
        None,
        None,
        true,
    )
    .0
}

/// The per-candidate-II CSP with its variable handles, ready to solve.
pub struct ProbeModel {
    pub model: Model,
    /// The probe's phased search (bands → op starts → window → stages →
    /// data, or the bandless subset).
    pub phases: Vec<Phase>,
    /// Window position per op node.
    pub t_var: HashMap<NodeId, VarId>,
    /// Stage per op node.
    pub k_var: HashMap<NodeId, VarId>,
    /// Absolute start per node.
    pub s_var: Vec<VarId>,
}

/// Build the CSP for one candidate II. Returns `Ok(None)` when a static
/// capacity cut already refutes the candidate — no search runs, so a
/// recorded probe stream for such a candidate is empty — and `Err` with
/// a named diagnostic when the graph itself is malformed (a model-build
/// failure is a property of the graph, not of the candidate).
pub fn build_probe(
    g: &Graph,
    spec: &ArchSpec,
    ii: i32,
    include_reconfig: bool,
) -> Result<Option<ProbeModel>, ModuloError> {
    build_probe_with(g, spec, ii, include_reconfig, true)
}

/// As [`build_probe`], with the hybrid bitset domain representation
/// switchable (`bitset: false` pins every variable to interval lists —
/// the `--no-bitset` A/B baseline; the trajectory is identical either
/// way, only propagation speed changes).
pub fn build_probe_with(
    g: &Graph,
    spec: &ArchSpec,
    ii: i32,
    include_reconfig: bool,
    bitset: bool,
) -> Result<Option<ProbeModel>, ModuloError> {
    let latency = |n: NodeId| spec.latency(&g.node(n).kind);
    let duration = |n: NodeId| spec.duration(&g.node(n).kind);
    let cp = g.critical_path(&latency);
    // Stage bound: latency alone needs cp/ii stages, but the banded model
    // can force a wrap-around (stage increment) at every hop of a
    // dependency chain whose next band lies earlier in the window, so the
    // op-count depth of the graph is the safe additional allowance.
    let op_depth = g.critical_path(&|n| i32::from(g.category(n).is_op()));
    let k_max = cp / ii + if include_reconfig { op_depth } else { 2 };
    let horizon = (k_max + 1) * ii;

    let mut m = Model::new();
    m.store.set_bitset(bitset);
    let mut t_var: HashMap<NodeId, VarId> = HashMap::new();
    let mut k_var: HashMap<NodeId, VarId> = HashMap::new();
    let mut s_var: Vec<VarId> = Vec::with_capacity(g.len());

    for n in g.ids() {
        let cat = g.category(n);
        if cat.is_op() {
            // No window wrap-around: the op's occupancy fits inside one
            // window instance.
            let t = m.new_var_named(0, ii - duration(n).max(1), &format!("t_{}", g.node(n).name));
            let k = m.new_var(0, k_max);
            let s = m.new_var(0, horizon);
            // s = ii·k + t, domain-consistent (bounds-only channeling
            // starves the window Cumulative of pruning).
            m.mod_channel(s, k, t, ii);
            t_var.insert(n, t);
            k_var.insert(n, k);
            s_var.push(s);
        } else if g.producer(n).is_none() {
            s_var.push(m.new_const(0));
        } else {
            s_var.push(m.new_var(0, horizon + spec.pipeline_depth()));
        }
    }

    // Precedence / data-start constraints on s.
    for (from, to) in g.edges() {
        if g.category(from).is_op() && g.category(to).is_data() {
            m.eq_offset(s_var[from.idx()], latency(from), s_var[to.idx()]);
        } else {
            m.precedence(s_var[from.idx()], latency(from), s_var[to.idx()]);
        }
    }

    // Window resource constraints on t: one Cumulative per functional
    // unit of the table, in table order (on the classic table: lanes with
    // matrix req = matrix width, then accelerator and index/merge at
    // capacity 1).
    let vec_core: Vec<NodeId> = g
        .ids()
        .filter(|&n| matches!(g.category(n), Category::VectorOp | Category::MatrixOp))
        .collect();
    for unit in &spec.units.units {
        let classes: Vec<OpClass> = unit.ops.iter().map(|o| o.class).collect();
        let tasks: Vec<CumTask> = g
            .ids()
            .filter(|&n| OpClass::of(&g.node(n).kind).is_some_and(|c| classes.contains(&c)))
            .map(|n| CumTask {
                start: t_var[&n],
                dur: duration(n),
                req: spec
                    .units
                    .class_width(OpClass::of(&g.node(n).kind).unwrap())
                    .unwrap_or(1) as i32,
            })
            .collect();
        if !tasks.is_empty() {
            m.cumulative(tasks, unit.count as i32);
        }
    }

    // One configuration per window slot.
    let vops: Vec<NodeId> = vec_core
        .iter()
        .copied()
        .filter(|&n| g.category(n) == Category::VectorOp)
        .collect();
    // A vector-core op always carries a configuration on a well-formed
    // graph; a graph that violates that is reported as a named
    // model-build diagnostic instead of aborting the scheduler.
    let config_of = |n: NodeId| {
        g.opcode(n)
            .and_then(|o| o.config())
            .ok_or_else(|| ModuloError::ModelBuild {
                node: g.node(n).name.clone(),
                detail: "vector-core op has no configuration entry in its opcode".into(),
            })
    };
    for (a, &i) in vops.iter().enumerate() {
        for &j in &vops[a + 1..] {
            let ci = config_of(i)?;
            let cj = config_of(j)?;
            if ci != cj {
                m.neq(t_var[&i], t_var[&j]);
            }
        }
    }
    // Matrix ops vs differently-configured vector ops are separated by
    // the lane Cumulative (4+1 > 4); matrix ops among themselves share a
    // slot only if identically configured:
    let mops: Vec<NodeId> = vec_core
        .iter()
        .copied()
        .filter(|&n| g.category(n) == Category::MatrixOp)
        .collect();
    for (a, &i) in mops.iter().enumerate() {
        for &j in &mops[a + 1..] {
            // Two matrix ops can never share a cycle (8 lanes needed) —
            // covered by Cumulative. Nothing extra.
            let _ = (i, j);
        }
    }

    // Contiguous configuration bands (the include-reconfig model).
    let mut band_vars: Vec<VarId> = Vec::new();
    if include_reconfig {
        let groups = config_groups(g);
        let mut rects = Vec::new();
        let zero = m.new_const(0);
        let one = m.new_const(1);
        let mut len_terms: Vec<(i64, VarId)> = Vec::new();
        for (cfg, members) in &groups {
            let b = m.new_var(0, ii - 1);
            // Static capacity cut: a band must hold its group's issue
            // work — at least ceil(sum req*dur / lanes) slots (time-table
            // filtering cannot see this while the band is still loose).
            let work: i64 = members
                .iter()
                .map(|&op| {
                    let r = if cfg.matrix { spec.n_lanes as i64 } else { 1 };
                    r * duration(op) as i64
                })
                .sum();
            let lanes = spec.n_lanes as i64;
            let need = ((work + lanes - 1) / lanes).max(1) as i32;
            if need > ii {
                return Ok(None);
            }
            let len = m.new_var(need, ii);
            // b + len <= ii
            m.linear_leq(vec![(1, b), (1, len)], ii as i64);
            for &op in members {
                // b <= t_op <= b + len - 1
                m.linear_leq(vec![(1, b), (-1, t_var[&op])], 0);
                m.linear_leq(vec![(1, t_var[&op]), (-1, b), (-1, len)], -1);
            }
            rects.push(Rect {
                origin: [b, zero],
                len: [len, one],
            });
            len_terms.push((1, len));
            band_vars.push(b);
            band_vars.push(len);
        }
        if rects.len() > 1 {
            m.diff2(rects);
        }
        // Bands partition (a subset of) the window: sum len <= II.
        if !len_terms.is_empty() {
            m.linear_leq(len_terms, ii as i64);
        }
    }

    // Search: configuration bands first (they shape the window), then
    // absolute op starts — list-scheduling style, as in the main model —
    // then any window/stage variables propagation left open, then data.
    let t_list: Vec<VarId> = g.ids().filter_map(|n| t_var.get(&n).copied()).collect();
    let k_list: Vec<VarId> = g.ids().filter_map(|n| k_var.get(&n).copied()).collect();
    let op_s: Vec<VarId> = g
        .ids()
        .filter(|&n| g.category(n).is_op())
        .map(|n| s_var[n.idx()])
        .collect();
    let data_s: Vec<VarId> = g
        .ids()
        .filter(|&n| g.category(n).is_data())
        .map(|n| s_var[n.idx()])
        .collect();
    let mut phases = Vec::new();
    if !band_vars.is_empty() {
        phases.push(Phase::new(band_vars, VarSel::InputOrder, ValSel::Min));
        phases.push(Phase::new(op_s, VarSel::SmallestMin, ValSel::Min));
        phases.push(Phase::new(t_list, VarSel::FirstFail, ValSel::Min));
        phases.push(Phase::new(k_list, VarSel::SmallestMin, ValSel::Min));
    } else {
        phases.push(Phase::new(t_list, VarSel::FirstFail, ValSel::Min));
        phases.push(Phase::new(k_list, VarSel::SmallestMin, ValSel::Min));
    }
    phases.push(Phase::new(data_s, VarSel::SmallestMin, ValSel::Min));

    Ok(Some(ProbeModel {
        model: m,
        phases,
        t_var,
        k_var,
        s_var,
    }))
}

/// As [`schedule_at_ii`], with a cooperative cancellation token, an
/// optional per-probe trace sink, and the probe's search statistics (for
/// sweep accounting).
#[allow(clippy::too_many_arguments)]
pub fn probe_ii(
    g: &Graph,
    spec: &ArchSpec,
    ii: i32,
    include_reconfig: bool,
    budget: Duration,
    cancel: Option<CancelToken>,
    trace: Option<TraceHandle>,
    state_hash_every: Option<u64>,
    restarts: Option<eit_cp::RestartConfig>,
    bitset: bool,
) -> (IiOutcome, SearchStats) {
    let pm = match build_probe_with(g, spec, ii, include_reconfig, bitset) {
        Ok(Some(pm)) => pm,
        Ok(None) => return (IiOutcome::Infeasible, SearchStats::default()),
        Err(e) => return (IiOutcome::Malformed(e), SearchStats::default()),
    };
    let ProbeModel {
        mut model,
        phases,
        t_var,
        k_var,
        s_var,
    } = pm;
    let cfg = SearchConfig {
        phases,
        timeout: Some(budget),
        cancel,
        trace,
        state_hash_every,
        restarts,
        ..Default::default()
    };
    let r = solve(&mut model, &cfg);
    let outcome = match r.status {
        SearchStatus::Optimal | SearchStatus::Feasible => {
            let sol = r.best.unwrap();
            let t_out = t_var.iter().map(|(&n, &v)| (n, sol.value(v))).collect();
            let k_out = k_var.iter().map(|(&n, &v)| (n, sol.value(v))).collect();
            let s_out = g.ids().map(|n| (n, sol.value(s_var[n.idx()]))).collect();
            IiOutcome::Feasible(t_out, k_out, s_out)
        }
        SearchStatus::Infeasible => IiOutcome::Infeasible,
        SearchStatus::Unknown if r.cancelled => IiOutcome::Cancelled,
        SearchStatus::Unknown => IiOutcome::Timeout,
    };
    (outcome, r.stats)
}

/// Count the steady-state switches and assemble a [`ModuloResult`] for a
/// feasible probe at `ii`.
#[allow(clippy::too_many_arguments)]
fn assemble_result(
    g: &Graph,
    spec: &ArchSpec,
    opts: &ModuloOptions,
    ii: i32,
    (t, k, s): (
        HashMap<NodeId, i32>,
        HashMap<NodeId, i32>,
        HashMap<NodeId, i32>,
    ),
    opt_time: Duration,
    timed_out: bool,
    probes: Vec<ProbeStat>,
    backend: &'static str,
    sat: Option<SatStats>,
) -> ModuloResult {
    let switches = if opts.include_reconfig {
        let groups = config_groups(g).len();
        if groups > 1 {
            groups
        } else {
            0
        }
    } else {
        count_window_switches(g, &t)
    };
    let actual = ii + switches as i32 * spec.reconfig_cost;
    ModuloResult {
        ii_issue: ii,
        switches,
        actual_ii: actual,
        throughput: 1.0 / actual as f64,
        t,
        k,
        s,
        opt_time,
        timed_out,
        probes,
        jobs: opts.jobs.max(1),
        backend,
        sat,
    }
}

fn outcome_str(o: &IiOutcome) -> &'static str {
    match o {
        IiOutcome::Feasible(..) => "feasible",
        IiOutcome::Infeasible => "infeasible",
        IiOutcome::Timeout => "timeout",
        IiOutcome::Cancelled => "cancelled",
        IiOutcome::Malformed(_) => "malformed",
    }
}

/// Forward buffered per-probe event streams to the sweep's sink, each
/// prefixed with a `Stream` marker carrying the candidate II. The caller
/// passes only candidates up to and including the winner, in II order,
/// so the merged stream is identical under any `jobs`.
fn forward_probe_streams<'a>(
    handle: &TraceHandle,
    streams: impl IntoIterator<Item = (i32, &'a [SearchEvent])>,
) {
    for (ii, events) in streams {
        handle.emit(&SearchEvent::Stream { id: ii as u32 });
        for e in events {
            handle.emit(e);
        }
    }
    handle.flush();
}

/// Sweep II upward from the resource bound; return the first feasible
/// modulo schedule under the chosen reconfiguration model.
///
/// With `opts.jobs > 1` the sweep is *speculative*: workers claim
/// candidate IIs bottom-up and probe them concurrently; a feasible probe
/// at II = v cancels every probe above v (they can no longer win), while
/// candidates *below* a feasible one are always resolved genuinely —
/// feasibility is not monotone in II for this CSP (a banded window can
/// admit II = v yet refute II = v+1), so an infeasible probe never
/// cancels anything. The winning II is therefore the minimum feasible
/// candidate exactly as in the sequential sweep, and the winning probe's
/// schedule is bit-identical (its CSP ran to a natural stop under its own
/// deterministic DFS — cancellation only ever hits candidates above the
/// winner).
///
/// This is the `Option`-shaped convenience wrapper around
/// [`modulo_schedule_checked`]: structured failures (malformed graph,
/// unsupported backend, backend disagreement) collapse into `None`.
/// Call the checked variant when the diagnostic matters.
pub fn modulo_schedule(g: &Graph, spec: &ArchSpec, opts: &ModuloOptions) -> Option<ModuloResult> {
    modulo_schedule_checked(g, spec, opts).ok().flatten()
}

/// As [`modulo_schedule`], with structured errors kept apart from the
/// ordinary "no schedule within budget" (`Ok(None)`) outcome, and with
/// the backend dispatch: CP sweep, SAT sweep, or a race of the two.
pub fn modulo_schedule_checked(
    g: &Graph,
    spec: &ArchSpec,
    opts: &ModuloOptions,
) -> Result<Option<ModuloResult>, ModuloError> {
    match opts.backend {
        Backend::Cp => modulo_schedule_cp(g, spec, opts),
        Backend::Sat => {
            check_sat_supported(opts)?;
            modulo_schedule_sat(g, spec, opts).map(|(r, _)| r)
        }
        Backend::Race => {
            check_sat_supported(opts)?;
            modulo_schedule_race(g, spec, opts)
        }
    }
}

fn check_sat_supported(opts: &ModuloOptions) -> Result<(), ModuloError> {
    if opts.include_reconfig {
        return Err(ModuloError::UnsupportedBackend(
            "the SAT encoding covers the exclude-reconfig modulo model only; \
             use the cp backend for --modulo incl"
                .into(),
        ));
    }
    Ok(())
}

/// The `--emit cnf` escape hatch: render the first encodable candidate
/// II of the sweep as a DIMACS problem (with the sweep position recorded
/// in comment lines) so the instance can be handed to an external SAT
/// solver. Returns `Ok(None)` when every candidate in the sweep range is
/// statically refuted before encoding.
pub fn modulo_cnf_dimacs(
    g: &Graph,
    spec: &ArchSpec,
    opts: &ModuloOptions,
) -> Result<Option<(i32, String)>, ModuloError> {
    check_sat_supported(opts)?;
    let lb = ii_lower_bound(g, spec);
    let ub = opts
        .max_ii
        .unwrap_or_else(|| crate::model::serial_horizon(g, spec));
    for ii in lb..=ub {
        let enc = eit_sat::encode_modulo(g, spec, ii).map_err(|e| ModuloError::ModelBuild {
            node: e.node.clone(),
            detail: e.detail,
        })?;
        if let Some(enc) = enc {
            let comments = [
                format!("eit modulo model (sec 4.3), candidate II {ii}"),
                format!("sweep range {lb}..={ub}; first encodable candidate"),
                format!("graph {}, {} nodes", g.name, g.len()),
            ];
            return Ok(Some((ii, enc.cnf.to_dimacs(&comments))));
        }
    }
    Ok(None)
}

fn modulo_schedule_cp(
    g: &Graph,
    spec: &ArchSpec,
    opts: &ModuloOptions,
) -> Result<Option<ModuloResult>, ModuloError> {
    if opts.jobs > 1 {
        modulo_schedule_parallel(g, spec, opts)
    } else {
        modulo_schedule_sequential(g, spec, opts)
    }
}

/// The SAT sweep: encode each candidate II to CNF, solve it with the
/// CDCL engine, and — before accepting — decode the model and run it
/// through **both** independent verifiers ([`eit_arch::verify_modulo`]
/// on the steady-state window and [`validate_modulo`] on the unrolled
/// schedule). A verifier rejection is a structured
/// [`ModuloError::BackendDisagreement`], never a panic and never a
/// silently-wrong schedule. Returns the solver counters alongside so a
/// race can report them even when CP wins.
fn modulo_schedule_sat(
    g: &Graph,
    spec: &ArchSpec,
    opts: &ModuloOptions,
) -> Result<(Option<ModuloResult>, SatStats), ModuloError> {
    let t0 = Instant::now();
    let lb = ii_lower_bound(g, spec);
    let ub = opts
        .max_ii
        .unwrap_or_else(|| crate::model::serial_horizon(g, spec));
    let mut agg = SatStats::default();
    let mut timed_out_any = false;
    let mut probes: Vec<ProbeStat> = Vec::new();

    for ii in lb..=ub {
        if t0.elapsed() >= opts.total_timeout {
            break;
        }
        if opts.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            break;
        }
        let budget = opts
            .timeout_per_ii
            .min(opts.total_timeout.saturating_sub(t0.elapsed()));
        let tp = Instant::now();
        let enc = match eit_sat::encode_modulo(g, spec, ii) {
            Ok(Some(enc)) => enc,
            Ok(None) => {
                probes.push(sat_probe_stat(ii, "infeasible", None, tp.elapsed()));
                continue;
            }
            Err(e) => {
                return Err(ModuloError::ModelBuild {
                    node: e.node,
                    detail: e.detail,
                })
            }
        };
        agg.vars += enc.cnf.n_vars as u64;
        agg.clauses += enc.cnf.clauses.len() as u64;
        let mut solver = eit_sat::Solver::new();
        for _ in 0..enc.cnf.n_vars {
            solver.new_var();
        }
        for c in &enc.cnf.clauses {
            solver.add_clause(c);
        }
        let deadline = tp + budget;
        let cancel = opts.cancel.clone();
        let mut stop =
            || Instant::now() >= deadline || cancel.as_ref().is_some_and(|c| c.is_cancelled());
        let out = solver.solve(&mut stop);
        agg.decisions += solver.stats.decisions;
        agg.conflicts += solver.stats.conflicts;
        agg.propagations += solver.stats.propagations;
        agg.restarts += solver.stats.restarts;
        match out {
            eit_sat::SolveOutcome::Sat => {
                probes.push(sat_probe_stat(
                    ii,
                    "feasible",
                    Some(&solver.stats),
                    tp.elapsed(),
                ));
                let (t, k, s) = enc.decode(g, spec, &|v| solver.model_value(v));
                let violations = eit_arch::verify_modulo(g, spec, &s, ii);
                if !violations.is_empty() {
                    return Err(ModuloError::BackendDisagreement(format!(
                        "sat schedule at II={ii} rejected by verify_modulo: {:?}",
                        violations.first()
                    )));
                }
                let r = assemble_result(
                    g,
                    spec,
                    opts,
                    ii,
                    (t, k, s),
                    t0.elapsed(),
                    timed_out_any,
                    probes,
                    "sat",
                    Some(agg),
                );
                let structural = validate_modulo(g, spec, &r, 3);
                if !structural.is_empty() {
                    return Err(ModuloError::BackendDisagreement(format!(
                        "sat schedule at II={ii} rejected by the structural validator: {:?}",
                        structural.first()
                    )));
                }
                return Ok((Some(r), agg));
            }
            eit_sat::SolveOutcome::Unsat => {
                probes.push(sat_probe_stat(
                    ii,
                    "infeasible",
                    Some(&solver.stats),
                    tp.elapsed(),
                ));
            }
            eit_sat::SolveOutcome::Stopped => {
                let cancelled = opts.cancel.as_ref().is_some_and(|c| c.is_cancelled());
                let outcome = if cancelled { "cancelled" } else { "timeout" };
                timed_out_any |= !cancelled;
                probes.push(sat_probe_stat(
                    ii,
                    outcome,
                    Some(&solver.stats),
                    tp.elapsed(),
                ));
            }
        }
    }
    Ok((None, agg))
}

/// Map one SAT probe onto the sweep's [`ProbeStat`] shape: decisions
/// count as nodes, conflicts as fails.
fn sat_probe_stat(
    ii: i32,
    outcome: &'static str,
    stats: Option<&eit_sat::SolverStats>,
    time: Duration,
) -> ProbeStat {
    ProbeStat {
        ii,
        outcome,
        nodes: stats.map_or(0, |s| s.decisions),
        fails: stats.map_or(0, |s| s.conflicts),
        time,
        worker: 0,
    }
}

/// Race the CP and SAT sweeps under child cancellation tokens: both
/// probe the same bottom-up candidate order, the first to return a
/// schedule cancels the other. Because both sweeps start at the same
/// resource lower bound and stop at their first feasible candidate, the
/// winning II is the same either way (absent timeouts) — the race only
/// decides *which backend* gets there first, reported in
/// [`ModuloResult::backend`].
fn modulo_schedule_race(
    g: &Graph,
    spec: &ArchSpec,
    opts: &ModuloOptions,
) -> Result<Option<ModuloResult>, ModuloError> {
    let mk_child = || {
        opts.cancel
            .as_ref()
            .map_or_else(CancelToken::new, |c| c.child())
    };
    let cp_token = mk_child();
    let sat_token = mk_child();
    let finish_order = AtomicUsize::new(0);

    type Arm = (Result<Option<ModuloResult>, ModuloError>, SatStats, usize);
    let run = |backend: Backend, token: CancelToken, other: CancelToken| -> Arm {
        let sub = ModuloOptions {
            cancel: Some(token),
            backend,
            // Racing is untraced: per-backend streams would interleave
            // nondeterministically (the cp backend keeps full tracing).
            trace: None,
            ..opts.clone()
        };
        let (res, sat) = match backend {
            Backend::Sat => match modulo_schedule_sat(g, spec, &sub) {
                Ok((r, stats)) => (Ok(r), stats),
                Err(e) => (Err(e), SatStats::default()),
            },
            _ => (modulo_schedule_cp(g, spec, &sub), SatStats::default()),
        };
        let seq = finish_order.fetch_add(1, Ordering::AcqRel);
        if matches!(res, Ok(Some(_))) {
            other.cancel();
        }
        (res, sat, seq)
    };

    let ((cp_res, _, cp_seq), (sat_res, sat_stats, sat_seq)) = std::thread::scope(|scope| {
        let cp = scope.spawn(|| run(Backend::Cp, cp_token.clone(), sat_token.clone()));
        let sat = scope.spawn(|| run(Backend::Sat, sat_token.clone(), cp_token.clone()));
        (
            cp.join().expect("cp racer panicked"),
            sat.join().expect("sat racer panicked"),
        )
    });

    // First finisher with a schedule wins; a structured error surfaces
    // only when neither side produced one.
    let mut arms: Vec<Arm> = vec![
        (cp_res, SatStats::default(), cp_seq),
        (sat_res, sat_stats, sat_seq),
    ];
    arms.sort_by_key(|&(_, _, seq)| seq);
    let mut first_err = None;
    for (res, _, _) in arms {
        match res {
            Ok(Some(mut r)) => {
                if r.sat.is_none() {
                    r.sat = Some(sat_stats);
                }
                return Ok(Some(r));
            }
            Ok(None) => {}
            Err(e) => {
                first_err.get_or_insert(e);
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(None),
    }
}

fn modulo_schedule_sequential(
    g: &Graph,
    spec: &ArchSpec,
    opts: &ModuloOptions,
) -> Result<Option<ModuloResult>, ModuloError> {
    let t0 = Instant::now();
    let lb = ii_lower_bound(g, spec);
    let ub = opts
        .max_ii
        .unwrap_or_else(|| crate::model::serial_horizon(g, spec));
    let mut timed_out_any = false;
    let mut probes: Vec<ProbeStat> = Vec::new();
    let mut streams: Vec<(i32, Vec<SearchEvent>)> = Vec::new();

    for ii in lb..=ub {
        if t0.elapsed() >= opts.total_timeout {
            break;
        }
        if opts.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            break;
        }
        let budget = opts
            .timeout_per_ii
            .min(opts.total_timeout.saturating_sub(t0.elapsed()));
        let tp = Instant::now();
        let buffer = opts
            .trace
            .as_ref()
            .map(|_| Arc::new(Mutex::new(MemorySink::unbounded())));
        let probe_trace = buffer.as_ref().map(|s| TraceHandle::new(Arc::clone(s)));
        let (outcome, stats) = probe_ii(
            g,
            spec,
            ii,
            opts.include_reconfig,
            budget,
            opts.cancel.clone(),
            probe_trace,
            opts.state_hash_every,
            opts.restarts,
            opts.bitset,
        );
        if let Some(sink) = buffer {
            let events: Vec<SearchEvent> = sink
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .events
                .drain(..)
                .collect();
            streams.push((ii, events));
        }
        probes.push(ProbeStat {
            ii,
            outcome: outcome_str(&outcome),
            nodes: stats.nodes,
            fails: stats.fails,
            time: tp.elapsed(),
            worker: 0,
        });
        match outcome {
            IiOutcome::Timeout => {
                // This II was undecided — move on, remember the hole.
                timed_out_any = true;
                continue;
            }
            IiOutcome::Feasible(t, k, s) => {
                if let Some(handle) = &opts.trace {
                    // Every buffered stream is at a candidate ≤ the
                    // winner: the sweep stops at the first feasible II.
                    forward_probe_streams(
                        handle,
                        streams.iter().map(|(pii, ev)| (*pii, ev.as_slice())),
                    );
                }
                return Ok(Some(assemble_result(
                    g,
                    spec,
                    opts,
                    ii,
                    (t, k, s),
                    t0.elapsed(),
                    timed_out_any,
                    probes,
                    "cp",
                    None,
                )));
            }
            IiOutcome::Malformed(e) => return Err(e),
            IiOutcome::Infeasible | IiOutcome::Cancelled => continue,
        }
    }
    Ok(None)
}

/// The speculative parallel II sweep (see [`modulo_schedule`]).
fn modulo_schedule_parallel(
    g: &Graph,
    spec: &ArchSpec,
    opts: &ModuloOptions,
) -> Result<Option<ModuloResult>, ModuloError> {
    let t0 = Instant::now();
    let lb = ii_lower_bound(g, spec);
    let ub = opts
        .max_ii
        .unwrap_or_else(|| crate::model::serial_horizon(g, spec));
    if ub < lb {
        return Ok(None);
    }
    let candidates: Vec<i32> = (lb..=ub).collect();
    // Per-probe tokens; children of the sweep-level token (when present)
    // so a request deadline stops every probe, while a feasible probe
    // still cancels only the candidates above it.
    let tokens: Vec<CancelToken> = candidates
        .iter()
        .map(|_| {
            opts.cancel
                .as_ref()
                .map_or_else(CancelToken::new, |c| c.child())
        })
        .collect();
    let next = AtomicUsize::new(0);
    // Index of the lowest candidate known feasible so far.
    let winner = AtomicUsize::new(usize::MAX);
    type Entry = (
        usize,
        usize,
        IiOutcome,
        SearchStats,
        Duration,
        Vec<SearchEvent>,
    );
    let entries: Mutex<Vec<Entry>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for w in 0..opts.jobs {
            let next = &next;
            let winner = &winner;
            let entries = &entries;
            let tokens = &tokens;
            let candidates = &candidates;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= candidates.len() {
                    return;
                }
                let push = |o: IiOutcome, st: SearchStats, el: Duration, ev: Vec<SearchEvent>| {
                    entries
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((idx, w, o, st, el, ev));
                };
                if idx > winner.load(Ordering::Acquire) || tokens[idx].is_cancelled() {
                    push(
                        IiOutcome::Cancelled,
                        SearchStats::default(),
                        Duration::ZERO,
                        Vec::new(),
                    );
                    continue;
                }
                let remaining = opts.total_timeout.saturating_sub(t0.elapsed());
                if remaining.is_zero() {
                    push(
                        IiOutcome::Timeout,
                        SearchStats::default(),
                        Duration::ZERO,
                        Vec::new(),
                    );
                    continue;
                }
                let budget = opts.timeout_per_ii.min(remaining);
                let tp = Instant::now();
                let buffer = opts
                    .trace
                    .as_ref()
                    .map(|_| Arc::new(Mutex::new(MemorySink::unbounded())));
                let probe_trace = buffer.as_ref().map(|s| TraceHandle::new(Arc::clone(s)));
                let (outcome, stats) = probe_ii(
                    g,
                    spec,
                    candidates[idx],
                    opts.include_reconfig,
                    budget,
                    Some(tokens[idx].clone()),
                    probe_trace,
                    opts.state_hash_every,
                    opts.restarts,
                    opts.bitset,
                );
                if matches!(outcome, IiOutcome::Feasible(..)) {
                    // This candidate can only lose to a *lower* feasible
                    // one, so everything above it is dead — cancel it.
                    // Lower in-flight probes keep running: they must be
                    // genuinely refuted for the merge to pick the true
                    // minimum.
                    let prev = winner.fetch_min(idx, Ordering::AcqRel);
                    if idx < prev {
                        for t in &tokens[idx + 1..] {
                            t.cancel();
                        }
                    }
                }
                let events = buffer
                    .map(|s| {
                        s.lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .events
                            .drain(..)
                            .collect()
                    })
                    .unwrap_or_default();
                push(outcome, stats, tp.elapsed(), events);
            });
        }
    });

    let mut entries = entries.into_inner().unwrap_or_else(|e| e.into_inner());
    entries.sort_by_key(|(i, ..)| *i);
    // A malformed model is a property of the graph, not of a candidate:
    // surface the structured diagnostic instead of an empty sweep.
    if let Some(pos) = entries
        .iter()
        .position(|(_, _, o, _, _, _)| matches!(o, IiOutcome::Malformed(_)))
    {
        let (_, _, outcome, _, _, _) = entries.swap_remove(pos);
        let IiOutcome::Malformed(e) = outcome else {
            unreachable!("pos indexes a malformed entry");
        };
        return Err(e);
    }
    let Some(wpos) = entries
        .iter()
        .position(|(_, _, o, _, _, _)| matches!(o, IiOutcome::Feasible(..)))
    else {
        return Ok(None);
    };
    let timed_out_any = entries[..wpos]
        .iter()
        .any(|(_, _, o, _, _, _)| matches!(o, IiOutcome::Timeout));
    let probes: Vec<ProbeStat> = entries
        .iter()
        .map(|(i, w, o, st, el, _)| ProbeStat {
            ii: candidates[*i],
            outcome: outcome_str(o),
            nodes: st.nodes,
            fails: st.fails,
            time: *el,
            worker: *w,
        })
        .collect();
    if let Some(handle) = &opts.trace {
        // Candidates below the winner are always genuinely resolved
        // (cancellation only hits candidates above it), so this prefix —
        // and hence the merged trace — matches the sequential sweep's.
        forward_probe_streams(
            handle,
            entries[..=wpos]
                .iter()
                .map(|(i, _, _, _, _, ev)| (candidates[*i], ev.as_slice())),
        );
    }
    let (widx, _, outcome, _, _, _) = entries.swap_remove(wpos);
    let IiOutcome::Feasible(t, k, s) = outcome else {
        unreachable!("wpos indexes a feasible entry");
    };
    Ok(Some(assemble_result(
        g,
        spec,
        opts,
        candidates[widx],
        (t, k, s),
        t0.elapsed(),
        timed_out_any,
        probes,
        "cp",
        None,
    )))
}

/// Unroll `n_iters` iterations at the issue II and validate the combined
/// schedule structurally (memory excluded — the paper assumes sufficient
/// memory for modulo schedules and repeats the allocation per iteration
/// with an offset).
pub fn validate_modulo(
    g: &Graph,
    spec: &ArchSpec,
    r: &ModuloResult,
    n_iters: usize,
) -> Vec<eit_arch::Violation> {
    let (big, map) = crate::replicate::replicate(g, n_iters);
    let mut sched = Schedule::new(big.len());
    for (it, ids) in map.iter().enumerate() {
        for n in g.ids() {
            sched.start[ids[n.idx()].idx()] = r.s[&n] + it as i32 * r.ii_issue;
        }
    }
    sched.compute_makespan(&big, &spec.latency_of(&big));
    eit_arch::validate_structure_with(&big, spec, &sched, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eit_dsl::Ctx;

    fn matmul() -> Graph {
        eit_apps_matmul()
    }

    /// Local mini-matmul to avoid a circular dev-dependency: 8 dotp ops
    /// of one config + merges.
    fn eit_apps_matmul() -> Graph {
        let ctx = Ctx::new("mm");
        let a = [
            ctx.vector([1.0, 2.0, 3.0, 4.0]),
            ctx.vector([2.0, 3.0, 4.0, 5.0]),
            ctx.vector([3.0, 4.0, 5.0, 6.0]),
            ctx.vector([4.0, 5.0, 6.0, 7.0]),
        ];
        for row in &a {
            let s: Vec<_> = a.iter().map(|c| row.v_dotp(c)).collect();
            let _ = ctx.merge([&s[0], &s[1], &s[2], &s[3]]);
        }
        ctx.finish()
    }

    #[test]
    fn lower_bound_counts_all_units() {
        let g = matmul();
        let spec = eit_arch::ArchSpec::eit();
        // 16 dotp on 4 lanes → 4; 4 merges on the unit-capacity im unit →
        // 4. Bound = 4.
        assert_eq!(ii_lower_bound(&g, &spec), 4);
    }

    #[test]
    fn port_bound_tightens_lower_bound_on_narrow_ports() {
        // One v_add: 2 distinct vectors read, 1 written per steady-state
        // window. Wide stock ports leave the bound at the lane bound (1);
        // a single-read-port machine needs 2 cycles just to stream the
        // inputs, so the port bound must lift the lower bound to 2.
        let ctx = Ctx::new("pb");
        let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
        let b = ctx.vector([0.0, 1.0, 0.0, 0.0]);
        let _ = a.v_add(&b);
        let g = ctx.finish();
        let wide = eit_arch::ArchSpec::eit();
        assert_eq!(ii_lower_bound(&g, &wide), 1);
        let mut narrow = eit_arch::ArchSpec::eit();
        narrow.max_vector_reads = 1;
        assert_eq!(ii_lower_bound(&g, &narrow), 2);
    }

    #[test]
    fn expired_deadline_cancels_the_sweep_quickly() {
        // Both sweep flavors must honour an already-expired wall-clock
        // deadline: no probe runs to completion, so no schedule comes
        // back, and the call returns promptly.
        let g = matmul();
        let spec = eit_arch::ArchSpec::eit();
        for jobs in [1, 4] {
            let token = CancelToken::with_deadline(std::time::Instant::now());
            let t0 = std::time::Instant::now();
            let r = modulo_schedule(
                &g,
                &spec,
                &ModuloOptions {
                    jobs,
                    cancel: Some(token),
                    ..Default::default()
                },
            );
            assert!(r.is_none(), "jobs={jobs}: cancelled sweep found {r:?}");
            assert!(
                t0.elapsed() < std::time::Duration::from_secs(5),
                "jobs={jobs}: cancelled sweep took {:?}",
                t0.elapsed()
            );
        }
    }

    #[test]
    fn parallel_sweep_matches_sequential_schedule() {
        let g = matmul();
        let spec = eit_arch::ArchSpec::eit();
        let seq = modulo_schedule(&g, &spec, &ModuloOptions::default()).unwrap();
        let par = modulo_schedule(
            &g,
            &spec,
            &ModuloOptions {
                jobs: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(par.ii_issue, seq.ii_issue);
        assert_eq!(par.switches, seq.switches);
        assert_eq!(par.actual_ii, seq.actual_ii);
        // Byte-identical schedules: the winning probe is never cancelled,
        // so its deterministic DFS reproduces the sequential assignment.
        assert_eq!(par.t, seq.t);
        assert_eq!(par.k, seq.k);
        assert_eq!(par.s, seq.s);
        // Probe records at or below the winner agree modulo timing and
        // worker attribution.
        let key = |r: &ModuloResult| {
            r.probes
                .iter()
                .filter(|p| p.ii <= r.ii_issue)
                .map(|p| (p.ii, p.outcome, p.nodes, p.fails))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&par), key(&seq));
        assert_eq!(par.jobs, 4);
        assert_eq!(seq.jobs, 1);
    }

    #[test]
    fn sat_backend_matches_cp_ii_on_matmul() {
        let g = matmul();
        let spec = eit_arch::ArchSpec::eit();
        let cp = modulo_schedule(&g, &spec, &ModuloOptions::default()).unwrap();
        let sat = modulo_schedule(
            &g,
            &spec,
            &ModuloOptions {
                backend: Backend::Sat,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(sat.ii_issue, cp.ii_issue);
        assert_eq!(sat.backend, "sat");
        let stats = sat.sat.expect("sat result must carry solver stats");
        assert!(stats.vars > 0 && stats.clauses > 0);
        // The SAT schedule is independently decoded; both verifiers have
        // already run inside modulo_schedule_sat, but check the public one
        // again from the outside.
        assert!(eit_arch::verify_modulo(&g, &spec, &sat.s, sat.ii_issue).is_empty());
    }

    #[test]
    fn race_backend_reports_winner_and_matches_ii() {
        let g = matmul();
        let spec = eit_arch::ArchSpec::eit();
        let cp = modulo_schedule(&g, &spec, &ModuloOptions::default()).unwrap();
        let race = modulo_schedule(
            &g,
            &spec,
            &ModuloOptions {
                backend: Backend::Race,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(race.ii_issue, cp.ii_issue);
        assert!(
            race.backend == "cp" || race.backend == "sat",
            "race winner must be attributed, got {:?}",
            race.backend
        );
        // SAT counters ride along even when CP wins the race.
        assert!(race.sat.is_some());
        assert!(eit_arch::verify_modulo(&g, &spec, &race.s, race.ii_issue).is_empty());
    }

    #[test]
    fn sat_backend_rejects_include_reconfig() {
        let g = matmul();
        let spec = eit_arch::ArchSpec::eit();
        for backend in [Backend::Sat, Backend::Race] {
            let r = modulo_schedule_checked(
                &g,
                &spec,
                &ModuloOptions {
                    backend,
                    include_reconfig: true,
                    ..Default::default()
                },
            );
            assert!(
                matches!(r, Err(ModuloError::UnsupportedBackend(_))),
                "{backend:?} must reject include_reconfig, got {r:?}"
            );
        }
    }

    #[test]
    fn sat_backend_honours_expired_deadline() {
        let g = matmul();
        let spec = eit_arch::ArchSpec::eit();
        for backend in [Backend::Sat, Backend::Race] {
            let token = CancelToken::with_deadline(std::time::Instant::now());
            let t0 = std::time::Instant::now();
            let r = modulo_schedule(
                &g,
                &spec,
                &ModuloOptions {
                    backend,
                    cancel: Some(token),
                    ..Default::default()
                },
            );
            assert!(r.is_none(), "{backend:?}: cancelled sweep found {r:?}");
            assert!(
                t0.elapsed() < std::time::Duration::from_secs(5),
                "{backend:?}: cancelled sweep took {:?}",
                t0.elapsed()
            );
        }
    }

    #[test]
    fn traced_sweep_is_identical_across_jobs() {
        // Two configurations, banded model: band length minima force the
        // resource-bound candidate infeasible, so the sweep records more
        // than one probe stream before the winner.
        let ctx = Ctx::new("bands");
        let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
        let b = ctx.vector([0.0, 1.0, 0.0, 0.0]);
        for _ in 0..5 {
            let x = a.v_add(&b);
            let _ = x.v_mul(&b);
        }
        let g = ctx.finish();
        let spec = eit_arch::ArchSpec::eit();
        let run = |jobs: usize| {
            let sink = Arc::new(Mutex::new(MemorySink::unbounded()));
            let opts = ModuloOptions {
                include_reconfig: true,
                jobs,
                trace: Some(TraceHandle::new(Arc::clone(&sink))),
                state_hash_every: Some(16),
                ..Default::default()
            };
            let r = modulo_schedule(&g, &spec, &opts).unwrap();
            let events: Vec<SearchEvent> = sink.lock().unwrap().events.iter().cloned().collect();
            (r.ii_issue, events)
        };
        let (ii1, ev1) = run(1);
        let (ii4, ev4) = run(4);
        assert_eq!(ii1, ii4);
        assert_eq!(ev1, ev4, "merged probe trace must not depend on jobs");
        // One Stream marker per candidate from the resource bound up to
        // and including the winner, in II order.
        let ids: Vec<u32> = ev1
            .iter()
            .filter_map(|e| match e {
                SearchEvent::Stream { id } => Some(*id),
                _ => None,
            })
            .collect();
        let lb = ii_lower_bound(&g, &spec) as u32;
        assert_eq!(ids, (lb..=ii1 as u32).collect::<Vec<_>>());
        // Untraced runs are unaffected and agree on the answer.
        let plain = modulo_schedule(
            &g,
            &spec,
            &ModuloOptions {
                include_reconfig: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(plain.ii_issue, ii1);
    }

    #[test]
    fn matmul_reaches_resource_bound_ii() {
        let g = matmul();
        let spec = eit_arch::ArchSpec::eit();
        let r = modulo_schedule(&g, &spec, &ModuloOptions::default()).unwrap();
        assert_eq!(r.ii_issue, 4);
        // Single configuration → no steady-state switch; actual II = 4.
        assert_eq!(r.switches, 0);
        assert_eq!(r.actual_ii, 4);
        assert!((r.throughput - 0.25).abs() < 1e-9);
        let v = validate_modulo(&g, &spec, &r, 6);
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn include_reconfig_never_beats_exclude_on_issue_ii() {
        let ctx = Ctx::new("two-type");
        let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
        let b = ctx.vector([0.0, 1.0, 0.0, 0.0]);
        for _ in 0..3 {
            let x = a.v_add(&b);
            let _ = x.v_mul(&b);
        }
        let g = ctx.finish();
        let spec = eit_arch::ArchSpec::eit();
        let excl = modulo_schedule(&g, &spec, &ModuloOptions::default()).unwrap();
        let incl = modulo_schedule(
            &g,
            &spec,
            &ModuloOptions {
                include_reconfig: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(incl.ii_issue >= excl.ii_issue);
        // Two configurations → the banded window switches exactly twice
        // (once into mul, once wrapping back to add).
        assert_eq!(incl.switches, 2);
        let v = validate_modulo(&g, &spec, &incl, 5);
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn window_switch_counting_is_cyclic() {
        let ctx = Ctx::new("t");
        let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
        let b = ctx.vector([0.0, 1.0, 0.0, 0.0]);
        let x = a.v_add(&b); // config A
        let _y = x.v_mul(&b); // config B
        let g = ctx.finish();
        let ops: Vec<NodeId> = g
            .ids()
            .filter(|&n| g.category(n) == Category::VectorOp)
            .collect();
        let mut t = HashMap::new();
        t.insert(ops[0], 0);
        t.insert(ops[1], 1);
        // A at slot 0, B at slot 1: A→B and (cyclically) B→A = 2 switches.
        assert_eq!(count_window_switches(&g, &t), 2);
        // Same config everywhere → 0.
        let mut t1 = HashMap::new();
        t1.insert(ops[0], 0);
        assert_eq!(count_window_switches(&g, &t1), 0);
    }

    #[test]
    fn throughput_is_inverse_actual_ii() {
        let g = matmul();
        let spec = eit_arch::ArchSpec::eit();
        let r = modulo_schedule(&g, &spec, &ModuloOptions::default()).unwrap();
        assert!((r.throughput * r.actual_ii as f64 - 1.0).abs() < 1e-12);
    }
}

/// Memory allocation for a modulo schedule — the step the paper leaves as
/// "with the assumption that there is enough memory … repeating the
/// allocation of the original schedule for each iteration, with a certain
/// offset". A naive fixed offset breaks the bank/page rules as soon as
/// two iterations co-issue (same banks at the same cycle), so this solves
/// the allocation *properly*: unroll `n_iters` iterations at the issue
/// II, fix every start time, and run the memory constraints (6)–(11) as a
/// satisfaction problem over the slot variables only.
///
/// Returns the unrolled graph and a complete schedule (starts + slots);
/// `None` when the slot budget cannot hold the steady-state working set
/// (or the default 60 s budget ran out undecided).
pub fn allocate_modulo_memory(
    g: &Graph,
    spec: &ArchSpec,
    r: &ModuloResult,
    n_iters: usize,
) -> Option<(Graph, Schedule)> {
    match allocate_modulo_memory_with(g, spec, r, n_iters, &AllocOptions::default()) {
        AllocOutcome::Allocated(big, sched) => Some((big, sched)),
        AllocOutcome::Infeasible | AllocOutcome::Unknown => None,
    }
}

/// Tuning knobs for [`allocate_modulo_memory_with`].
#[derive(Clone, Debug)]
pub struct AllocOptions {
    /// Wall-clock budget for the slot-assignment search.
    pub timeout: Duration,
    /// Worker threads; `> 1` solves the allocation CSP with
    /// embarrassingly-parallel search ([`eit_cp::eps_solve`]).
    pub jobs: usize,
    /// EPS subproblems per worker (ignored for `jobs <= 1`).
    pub split_factor: usize,
    /// First-SAT racing ([`eit_cp::EpsConfig::race`]): the first valid
    /// allocation found anywhere wins immediately instead of waiting for
    /// every lower-numbered subtree to be refuted. The allocation is
    /// still validated downstream; only *which* of the equally-valid
    /// assignments is returned varies run-to-run. Off by default.
    pub race: bool,
    /// Cooperative cancellation / wall-clock deadline, polled by every
    /// worker's search (the EPS subproblem configs inherit it).
    pub cancel: Option<CancelToken>,
    /// Restart policy for the allocation search (`None` = plain DFS).
    pub restarts: Option<eit_cp::RestartConfig>,
    /// Hybrid bitset/interval domains in the allocation model (default).
    pub bitset: bool,
}

impl Default for AllocOptions {
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(60),
            jobs: 1,
            split_factor: 30,
            race: false,
            cancel: None,
            restarts: None,
            bitset: true,
        }
    }
}

/// Outcome of the slot-assignment satisfaction solve.
#[derive(Debug)]
pub enum AllocOutcome {
    /// Unrolled graph + complete schedule (starts and slots).
    Allocated(Graph, Schedule),
    /// Proven: the slot budget cannot hold the steady-state working set.
    Infeasible,
    /// Budget exhausted before a solution or a proof either way.
    Unknown,
}

/// [`allocate_modulo_memory`] with explicit budget and parallelism. The
/// allocation CSP (slot variables only, starts fixed) is exactly the
/// shape EPS likes: one hard satisfaction instance with no objective, so
/// subproblem subtrees share nothing but the model.
pub fn allocate_modulo_memory_with(
    g: &Graph,
    spec: &ArchSpec,
    r: &ModuloResult,
    n_iters: usize,
    opts: &AllocOptions,
) -> AllocOutcome {
    use eit_cp::props::diff2::Rect;
    use eit_cp::props::reify::GuardedPair;

    // A partial start map (e.g. a hand-built or truncated result from a
    // foreign decode path) must degrade to a structured no-answer, never
    // a panic mid-build.
    if g.ids().any(|n| !r.s.contains_key(&n)) {
        return AllocOutcome::Unknown;
    }
    let (big, map) = crate::replicate::replicate(g, n_iters);
    let mut sched = Schedule::new(big.len());
    for (it, ids) in map.iter().enumerate() {
        for n in g.ids() {
            sched.start[ids[n.idx()].idx()] = r.s[&n] + it as i32 * r.ii_issue;
        }
    }
    sched.compute_makespan(&big, &spec.latency_of(&big));

    let vdata: Vec<eit_ir::NodeId> = big
        .ids()
        .filter(|&n| big.category(n) == Category::VectorData)
        .collect();

    // Memory model with fixed starts. Building it is fully deterministic,
    // so the slot variable ids are identical across builds — EPS rebuilds
    // the model per worker and the ids captured from any one build stay
    // valid for solution extraction.
    let build = || -> (Model, Vec<(eit_ir::NodeId, VarId)>) {
        let mut m = Model::new();
        m.store.set_bitset(opts.bitset);
        let n_slots = spec.n_slots() as i32;
        let n_lines = spec.slots_per_bank as i32;
        let n_pages = spec.n_pages() as i32;

        // (slot, line, page) variable triple per vector datum. Every
        // consumer below *looks up* the triple and skips nodes without
        // one — a vector datum the decode missed degrades to a weaker
        // model (caught by downstream validation), never to a panic.
        let mut geo: Vec<Option<(VarId, VarId, VarId)>> = vec![None; big.len()];
        for &d in &vdata {
            let s = m.new_var(0, n_slots - 1);
            let l = m.new_var(0, n_lines - 1);
            let p = m.new_var(0, n_pages - 1);
            m.slot_geometry(s, l, p, spec.n_banks as i32, spec.page_size as i32);
            geo[d.idx()] = Some((s, l, p));
        }

        let vec_core: Vec<eit_ir::NodeId> = big
            .ids()
            .filter(|&n| matches!(big.category(n), Category::VectorOp | Category::MatrixOp))
            .collect();
        // (7): same-instruction inputs and outputs.
        for &op in &vec_core {
            for group in [big.preds(op), big.succs(op)] {
                let vd: Vec<(VarId, VarId)> = group
                    .iter()
                    .filter_map(|&d| geo[d.idx()].map(|(_, l, p)| (l, p)))
                    .collect();
                for (x, &(ld, pd)) in vd.iter().enumerate() {
                    for &(le, pe) in &vd[x + 1..] {
                        m.page_line_implies(pd, ld, pe, le);
                    }
                }
            }
        }
        // (8)/(9): starts are fixed, so co-issue is a static fact — post
        // the implications directly for pairs sharing a cycle.
        for (a, &i) in vec_core.iter().enumerate() {
            for &j in &vec_core[a + 1..] {
                if sched.start_of(i) != sched.start_of(j) {
                    continue;
                }
                let pairs = |xs: &[eit_ir::NodeId], ys: &[eit_ir::NodeId]| -> Vec<GuardedPair> {
                    let with_geo = |ds: &[eit_ir::NodeId]| -> Vec<(eit_ir::NodeId, VarId, VarId)> {
                        ds.iter()
                            .filter_map(|&d| geo[d.idx()].map(|(_, l, p)| (d, l, p)))
                            .collect()
                    };
                    let fx = with_geo(xs);
                    let fy = with_geo(ys);
                    let mut out = Vec::new();
                    for &(d, line_d, page_d) in &fx {
                        for &(e, line_e, page_e) in &fy {
                            if d != e {
                                out.push(GuardedPair {
                                    page_d,
                                    line_d,
                                    page_e,
                                    line_e,
                                });
                            }
                        }
                    }
                    out
                };
                for gp in pairs(big.preds(i), big.preds(j))
                    .into_iter()
                    .chain(pairs(big.succs(i), big.succs(j)))
                {
                    m.page_line_implies(gp.page_d, gp.line_d, gp.page_e, gp.line_e);
                }
            }
        }
        // (10)/(11): lifetimes are constants now.
        let one = m.new_const(1);
        let mut rects = Vec::with_capacity(vdata.len());
        let mut slot_vars: Vec<(eit_ir::NodeId, VarId)> = Vec::with_capacity(vdata.len());
        for &d in &vdata {
            let Some((sv, _, _)) = geo[d.idx()] else {
                continue;
            };
            let (s0, s1) = sched.lifetime(&big, d);
            let x = m.new_const(s0);
            let life = m.new_const((s1 - s0).max(1));
            rects.push(Rect {
                origin: [x, sv],
                len: [life, one],
            });
            slot_vars.push((d, sv));
        }
        m.diff2(rects);

        (m, slot_vars)
    };

    let mk_cfg = |slot_vars: &[(eit_ir::NodeId, VarId)]| SearchConfig {
        phases: vec![Phase::new(
            slot_vars.iter().map(|&(_, v)| v).collect(),
            VarSel::FirstFail,
            ValSel::Min,
        )],
        timeout: Some(opts.timeout),
        cancel: opts.cancel.clone(),
        restarts: opts.restarts,
        ..Default::default()
    };

    let (res, slot_vars) = if opts.jobs > 1 {
        let (_, slot_vars) = build();
        let builder = || {
            let (m, sv) = build();
            let cfg = mk_cfg(&sv);
            (m, cfg)
        };
        let eps = eit_cp::EpsConfig {
            jobs: opts.jobs,
            split_factor: opts.split_factor,
            race: opts.race,
            ..Default::default()
        };
        let (res, _report) = eit_cp::eps_solve(&builder, &eps);
        (res, slot_vars)
    } else {
        let (mut m, sv) = build();
        let cfg = mk_cfg(&sv);
        (solve(&mut m, &cfg), sv)
    };

    match res.status {
        SearchStatus::Optimal | SearchStatus::Feasible => {
            let Some(sol) = res.best else {
                return AllocOutcome::Unknown;
            };
            for &(d, sv) in &slot_vars {
                sched.slot[d.idx()] = Some(sol.value(sv) as u32);
            }
            AllocOutcome::Allocated(big, sched)
        }
        SearchStatus::Infeasible => AllocOutcome::Infeasible,
        SearchStatus::Unknown => AllocOutcome::Unknown,
    }
}

#[cfg(test)]
mod memory_tests {
    use super::*;
    use eit_dsl::Ctx;

    #[test]
    fn modulo_allocation_passes_full_memory_validation() {
        // Two-type kernel pipelined, then allocated — validated with the
        // memory checks ON (unlike validate_modulo, which skips them).
        let ctx = Ctx::new("k");
        let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
        let b = ctx.vector([0.0, 1.0, 0.0, 0.0]);
        for _ in 0..2 {
            let x = a.v_add(&b);
            let _ = x.v_mul(&b);
        }
        let g = ctx.finish();
        let spec = ArchSpec::eit();
        let r = modulo_schedule(&g, &spec, &ModuloOptions::default()).unwrap();
        let (big, sched) = allocate_modulo_memory(&g, &spec, &r, 4)
            .expect("steady-state allocation must fit 64 slots");
        let v = eit_arch::validate_structure(&big, &spec, &sched);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn partial_schedule_map_yields_unknown_not_panic() {
        // Shrunk reproducer for the decode-path hardening: a ModuloResult
        // whose `s` map is missing nodes (as a buggy or interrupted
        // backend could produce) used to panic inside the allocator —
        // first at `r.s[&n]` during replication, then at the
        // slot/line/page `.unwrap()`s while building memory constraints.
        // A partial assignment must surface structurally as Unknown.
        let ctx = Ctx::new("k");
        let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
        let b = ctx.vector([0.0, 1.0, 0.0, 0.0]);
        let x = a.v_add(&b);
        let _ = x.v_mul(&b);
        let g = ctx.finish();
        let spec = ArchSpec::eit();
        let mut r = modulo_schedule(&g, &spec, &ModuloOptions::default()).unwrap();
        // Drop one node from every per-node map to simulate a truncated
        // decode.
        let victim = g.ids().last().unwrap();
        r.s.remove(&victim);
        r.t.remove(&victim);
        r.k.remove(&victim);
        let out = allocate_modulo_memory_with(&g, &spec, &r, 4, &AllocOptions::default());
        assert!(
            matches!(out, AllocOutcome::Unknown),
            "partial assignment must be Unknown, got a different outcome"
        );
    }

    #[test]
    fn tiny_memory_rejects_steady_state() {
        let ctx = Ctx::new("k");
        let a = ctx.vector([1.0, 0.0, 0.0, 0.0]);
        let b = ctx.vector([0.0, 1.0, 0.0, 0.0]);
        let x = a.v_add(&b);
        let _ = x.v_mul(&b);
        let g = ctx.finish();
        let spec = ArchSpec::eit().with_slots(2);
        let r = modulo_schedule(&g, &spec, &ModuloOptions::default()).unwrap();
        // 4 in-flight iterations × (2 inputs + intermediates) >> 2 slots.
        assert!(allocate_modulo_memory(&g, &spec, &r, 4).is_none());
    }
}
