//! Text Gantt rendering of schedules — one row per resource, one column
//! per cycle, for eyeballing pipelines, gaps and reconfigurations.
//!
//! ```text
//! lane0 |AAAA....BBBB|
//! lane1 |AAAA........|
//! accel |....ss......|
//! ```

use crate::code::ConfigStream;
use crate::schedule::Schedule;
use crate::spec::ArchSpec;
use eit_ir::{Category, Graph};
use std::fmt::Write as _;

/// Render a schedule as a text Gantt chart. Rows: vector lanes (ops are
/// drawn with letters cycling per configuration, `#` for matrix ops
/// across all lanes), the scalar accelerator, and the index/merge unit.
/// `.` is idle; the occupancy of multi-cycle ops is drawn with `-`.
pub fn render_gantt(g: &Graph, spec: &ArchSpec, sched: &Schedule) -> String {
    let lat = &spec.latencies;
    let n = (sched.makespan + 1).max(1) as usize;
    let lanes = spec.n_lanes as usize;
    let mut lane_rows = vec![vec!['.'; n]; lanes];
    let mut accel_row = vec!['.'; n];
    let mut im_row = vec!['.'; n];

    // Stable letter per vector configuration.
    let cs = ConfigStream::from_schedule(g, spec, sched);
    let mut seen_cfgs: Vec<eit_ir::VectorConfig> = Vec::new();
    let mut letter_of = |cfg: eit_ir::VectorConfig| -> char {
        let idx = match seen_cfgs.iter().position(|&c| c == cfg) {
            Some(i) => i,
            None => {
                seen_cfgs.push(cfg);
                seen_cfgs.len() - 1
            }
        };
        (b'A' + (idx % 26) as u8) as char
    };

    for (t, c) in cs.cycles.iter().enumerate() {
        if let Some(cfg) = c.vector_config {
            let ch = if cfg.matrix { '#' } else { letter_of(cfg) };
            let count = if cfg.matrix {
                lanes
            } else {
                c.vector_ops.len().min(lanes)
            };
            for row in lane_rows.iter_mut().take(count) {
                row[t] = ch;
            }
        }
    }

    for node in g.ids() {
        let cat = g.category(node);
        let t = sched.start_of(node);
        if t < 0 || t as usize >= n {
            continue;
        }
        let dur = lat.duration(&g.node(node).kind).max(1) as usize;
        match cat {
            Category::ScalarOp => {
                accel_row[t as usize] = 's';
                for dt in 1..dur.min(n - t as usize) {
                    accel_row[t as usize + dt] = '-';
                }
            }
            Category::Index => im_row[t as usize] = 'i',
            Category::Merge => im_row[t as usize] = 'm',
            _ => {}
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "cycles 0..{} (one column per cc)", sched.makespan);
    for (k, row) in lane_rows.iter().enumerate() {
        let _ = writeln!(out, "lane{k} |{}|", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "accel |{}|", accel_row.iter().collect::<String>());
    let _ = writeln!(out, "idxmg |{}|", im_row.iter().collect::<String>());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eit_ir::{CoreOp, DataKind, Opcode, ScalarOp};

    #[test]
    fn gantt_shows_all_units() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (o, d) = g.add_op_with_output(
            Opcode::vector(CoreOp::DotP),
            &[a, b],
            DataKind::Scalar,
            "dot",
        );
        let (sq, dq) = g.add_op_with_output(
            Opcode::Scalar(ScalarOp::Sqrt),
            &[d],
            DataKind::Scalar,
            "sqrt",
        );
        let spec = ArchSpec::eit();
        let mut s = Schedule::new(g.len());
        s.start[o.idx()] = 0;
        s.start[d.idx()] = 7;
        s.start[sq.idx()] = 7;
        s.start[dq.idx()] = 15;
        s.slot[a.idx()] = Some(0);
        s.slot[b.idx()] = Some(1);
        s.makespan = 15;
        let txt = render_gantt(&g, &spec, &s);
        assert!(txt.contains("lane0 |A"));
        // sqrt occupies 2 cycles: 's' then '-'.
        assert!(txt.contains("s-"));
        assert_eq!(txt.lines().count(), 1 + 4 + 2);
    }

    #[test]
    fn matrix_ops_fill_all_lanes() {
        let mut g = Graph::new("t");
        let ins: Vec<_> = (0..4)
            .map(|i| g.add_data(DataKind::Vector, &format!("i{i}")))
            .collect();
        let m = g.add_op(Opcode::matrix(CoreOp::SquSum), "m");
        for &i in &ins {
            g.add_edge(i, m);
        }
        let out = g.add_data(DataKind::Vector, "o");
        g.add_edge(m, out);
        let mut s = Schedule::new(g.len());
        s.start[out.idx()] = 7;
        for (k, &i) in ins.iter().enumerate() {
            s.slot[i.idx()] = Some(k as u32);
        }
        s.slot[out.idx()] = Some(4);
        s.makespan = 7;
        let txt = render_gantt(&g, &ArchSpec::eit(), &s);
        for lane in 0..4 {
            assert!(txt.contains(&format!("lane{lane} |#")), "{txt}");
        }
    }
}
