//! Text Gantt rendering of schedules — one row per resource, one column
//! per cycle, for eyeballing pipelines, gaps and reconfigurations.
//!
//! ```text
//! lane0        |AAAA....BBBB|
//! lane1        |AAAA........|
//! scalar-accel |....s-......|
//! ```
//!
//! The row set is derived from the [`ArchSpec`]: one row per vector lane
//! (`n_lanes` of them) and one row per functional unit of the spec's unit
//! table beyond the vector core, labelled with the unit's name — a wide
//! or custom machine renders with its own shape, nothing assumes the
//! 4-lane EIT instance.

use crate::code::ConfigStream;
use crate::schedule::Schedule;
use crate::spec::ArchSpec;
use eit_ir::OpClass;
use std::fmt::Write as _;

/// Render a schedule as a text Gantt chart. Lane rows draw ops with
/// letters cycling per configuration (`#` for matrix ops across the
/// matrix width); unit rows draw `s`/`i`/`m` per op class, `-` for the
/// occupancy of multi-cycle ops, `.` for idle.
pub fn render_gantt(g: &eit_ir::Graph, spec: &ArchSpec, sched: &Schedule) -> String {
    let n = (sched.makespan + 1).max(1) as usize;
    let lanes = spec.n_lanes as usize;
    let mut lane_rows = vec![vec!['.'; n]; lanes];

    // One row per non-vector unit, in table order, labelled by name.
    let unit_defs: Vec<(&str, Vec<OpClass>)> = spec
        .units
        .units
        .iter()
        .filter(|u| {
            !u.ops
                .iter()
                .any(|o| matches!(o.class, OpClass::Vector | OpClass::Matrix))
        })
        .map(|u| {
            (
                u.name.as_str(),
                u.ops.iter().map(|o| o.class).collect::<Vec<_>>(),
            )
        })
        .collect();
    let mut unit_rows = vec![vec!['.'; n]; unit_defs.len()];

    // Stable letter per vector configuration.
    let cs = ConfigStream::from_schedule(g, spec, sched);
    let mut seen_cfgs: Vec<eit_ir::VectorConfig> = Vec::new();
    let mut letter_of = |cfg: eit_ir::VectorConfig| -> char {
        let idx = match seen_cfgs.iter().position(|&c| c == cfg) {
            Some(i) => i,
            None => {
                seen_cfgs.push(cfg);
                seen_cfgs.len() - 1
            }
        };
        (b'A' + (idx % 26) as u8) as char
    };

    for (t, c) in cs.cycles.iter().enumerate() {
        if let Some(cfg) = c.vector_config {
            let ch = if cfg.matrix { '#' } else { letter_of(cfg) };
            let count = if cfg.matrix {
                (spec.matrix_lanes() as usize).min(lanes)
            } else {
                c.vector_ops.len().min(lanes)
            };
            for row in lane_rows.iter_mut().take(count) {
                row[t] = ch;
            }
        }
    }

    for node in g.ids() {
        let Some(class) = OpClass::of(&g.node(node).kind) else {
            continue;
        };
        let Some(row_idx) = unit_defs.iter().position(|(_, cs)| cs.contains(&class)) else {
            continue;
        };
        let t = sched.start_of(node);
        if t < 0 || t as usize >= n {
            continue;
        }
        let ch = match class {
            OpClass::Index => 'i',
            OpClass::Merge => 'm',
            _ => 's',
        };
        let dur = spec.duration(&g.node(node).kind).max(1) as usize;
        let row = &mut unit_rows[row_idx];
        row[t as usize] = ch;
        for dt in 1..dur.min(n - t as usize) {
            row[t as usize + dt] = '-';
        }
    }

    // Align every label to the widest one.
    let label_w = unit_defs
        .iter()
        .map(|(name, _)| name.len())
        .chain(std::iter::once(
            format!("lane{}", lanes.saturating_sub(1)).len(),
        ))
        .max()
        .unwrap_or(5);
    let mut out = String::new();
    let _ = writeln!(out, "cycles 0..{} (one column per cc)", sched.makespan);
    for (k, row) in lane_rows.iter().enumerate() {
        let label = format!("lane{k}");
        let _ = writeln!(
            out,
            "{label:<label_w$} |{}|",
            row.iter().collect::<String>()
        );
    }
    for ((name, _), row) in unit_defs.iter().zip(&unit_rows) {
        let _ = writeln!(out, "{name:<label_w$} |{}|", row.iter().collect::<String>());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eit_ir::{CoreOp, DataKind, Graph, Opcode, ScalarOp};

    #[test]
    fn gantt_shows_all_units() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (o, d) = g.add_op_with_output(
            Opcode::vector(CoreOp::DotP),
            &[a, b],
            DataKind::Scalar,
            "dot",
        );
        let (sq, dq) = g.add_op_with_output(
            Opcode::Scalar(ScalarOp::Sqrt),
            &[d],
            DataKind::Scalar,
            "sqrt",
        );
        let spec = ArchSpec::eit();
        let mut s = Schedule::new(g.len());
        s.start[o.idx()] = 0;
        s.start[d.idx()] = 7;
        s.start[sq.idx()] = 7;
        s.start[dq.idx()] = 15;
        s.slot[a.idx()] = Some(0);
        s.slot[b.idx()] = Some(1);
        s.makespan = 15;
        let txt = render_gantt(&g, &spec, &s);
        assert!(txt.contains("|A"), "{txt}");
        assert!(txt.contains("lane0"), "{txt}");
        // Unit rows carry the spec's unit names.
        assert!(txt.contains("scalar-accel"), "{txt}");
        assert!(txt.contains("index-merge"), "{txt}");
        // sqrt occupies 2 cycles: 's' then '-'.
        assert!(txt.contains("s-"), "{txt}");
        // Header + one row per lane + one per non-vector unit.
        assert_eq!(txt.lines().count(), 1 + 4 + 2);
    }

    #[test]
    fn matrix_ops_fill_all_lanes() {
        let mut g = Graph::new("t");
        let ins: Vec<_> = (0..4)
            .map(|i| g.add_data(DataKind::Vector, &format!("i{i}")))
            .collect();
        let m = g.add_op(Opcode::matrix(CoreOp::SquSum), "m");
        for &i in &ins {
            g.add_edge(i, m);
        }
        let out = g.add_data(DataKind::Vector, "o");
        g.add_edge(m, out);
        let mut s = Schedule::new(g.len());
        s.start[out.idx()] = 7;
        for (k, &i) in ins.iter().enumerate() {
            s.slot[i.idx()] = Some(k as u32);
        }
        s.slot[out.idx()] = Some(4);
        s.makespan = 7;
        let txt = render_gantt(&g, &ArchSpec::eit(), &s);
        for lane in 0..4 {
            assert!(
                txt.lines()
                    .any(|l| l.starts_with(&format!("lane{lane}")) && l.contains('#')),
                "{txt}"
            );
        }
    }

    #[test]
    fn row_shape_follows_the_spec() {
        let g = Graph::new("t");
        let s = Schedule::new(0);
        // The wide machine renders 8 lane rows without touching the code.
        let txt = render_gantt(&g, &ArchSpec::wide(), &s);
        assert_eq!(txt.lines().count(), 1 + 8 + 2);
        assert!(txt.contains("lane7"), "{txt}");
    }
}
