//! Machine code as a per-cycle configuration stream.
//!
//! The EIT's "instructions" are configuration words loaded into the
//! resource elements' configuration memories, re-loadable every cycle
//! (§1.1). A [`ConfigStream`] is the schedule rendered into that form:
//! for every cycle, the vector core's configuration and issued ops, the
//! accelerator op, the index/merge op, and the memory reads/writes with
//! their slots. This is the artifact a code generator would emit, and it
//! is where reconfigurations become countable: a reconfiguration happens
//! when two *consecutive issuing cycles* carry different vector-core
//! configurations.

use crate::schedule::Schedule;
use crate::spec::ArchSpec;
use eit_ir::{Category, Graph, NodeId, VectorConfig};
use std::fmt;

/// One cycle of the configuration stream.
#[derive(Clone, Debug, Default)]
pub struct Cycle {
    /// Vector-core configuration, if any vector/matrix op issues.
    pub vector_config: Option<VectorConfig>,
    /// Vector/matrix ops issued this cycle (≤ 4 vector ops or 1 matrix op).
    pub vector_ops: Vec<NodeId>,
    /// Scalar-accelerator op issued this cycle.
    pub scalar_op: Option<NodeId>,
    /// Index/merge op issued this cycle.
    pub index_merge_op: Option<NodeId>,
    /// Vector memory reads `(datum, slot)` of this cycle.
    pub reads: Vec<(NodeId, u32)>,
    /// Vector memory writes `(datum, slot)` of this cycle.
    pub writes: Vec<(NodeId, u32)>,
}

impl Cycle {
    pub fn is_idle(&self) -> bool {
        self.vector_ops.is_empty() && self.scalar_op.is_none() && self.index_merge_op.is_none()
    }
}

/// A schedule rendered cycle-by-cycle.
#[derive(Clone, Debug)]
pub struct ConfigStream {
    pub cycles: Vec<Cycle>,
}

impl ConfigStream {
    /// Render `sched` into a configuration stream. Reads are attributed to
    /// the issue cycle of the consuming vector-core op; writes to its
    /// write-back cycle (`issue + pipeline`, the cycle the output datum
    /// starts — within a cycle reads precede writes, so a lifetime ending
    /// exactly where another begins is hazard-free, matching the Diff2
    /// touching-rectangles semantics of constraint (11)).
    pub fn from_schedule(g: &Graph, spec: &ArchSpec, sched: &Schedule) -> Self {
        let n_cycles = (sched.makespan + 1).max(0) as usize;
        let mut cycles = vec![Cycle::default(); n_cycles];

        for id in g.ids() {
            let cat = g.category(id);
            if !cat.is_op() {
                continue;
            }
            let t = sched.start_of(id) as usize;
            if t >= cycles.len() {
                continue;
            }
            match cat {
                Category::VectorOp | Category::MatrixOp => {
                    let op = g.opcode(id).unwrap();
                    cycles[t].vector_config = op.config();
                    cycles[t].vector_ops.push(id);
                    // Reads: vector operands, at issue.
                    for &d in g.preds(id) {
                        if g.category(d) == Category::VectorData {
                            if let Some(slot) = sched.slot_of(d) {
                                cycles[t].reads.push((d, slot));
                            }
                        }
                    }
                    // Writes: vector outputs, at write-back.
                    let wb = t + spec.latency(&g.node(id).kind) as usize;
                    if wb < cycles.len() {
                        for &d in g.succs(id) {
                            if g.category(d) == Category::VectorData {
                                if let Some(slot) = sched.slot_of(d) {
                                    cycles[wb].writes.push((d, slot));
                                }
                            }
                        }
                    }
                }
                Category::ScalarOp => cycles[t].scalar_op = Some(id),
                Category::Index | Category::Merge => cycles[t].index_merge_op = Some(id),
                _ => unreachable!(),
            }
        }
        ConfigStream { cycles }
    }

    /// Number of configuration *switches*: issuing cycles whose vector
    /// configuration differs from the previous issuing cycle's.
    pub fn reconfig_switches(&self) -> usize {
        let mut prev: Option<VectorConfig> = None;
        let mut switches = 0;
        for c in &self.cycles {
            if let Some(cfg) = c.vector_config {
                if let Some(p) = prev {
                    if p != cfg {
                        switches += 1;
                    }
                }
                prev = Some(cfg);
            }
        }
        switches
    }

    /// Number of configuration *loads*, counting the initial one — the
    /// quantity Table 3 reports as `# rec.` (MATMUL: 1).
    pub fn config_loads(&self) -> usize {
        let any_issue = self.cycles.iter().any(|c| c.vector_config.is_some());
        self.reconfig_switches() + usize::from(any_issue)
    }

    /// Lane-cycles actually used by the vector core (a matrix op uses the
    /// spec's full matrix width).
    pub fn lane_cycles_used(&self, g: &Graph, spec: &ArchSpec) -> u64 {
        self.cycles
            .iter()
            .flat_map(|c| &c.vector_ops)
            .map(|&op| {
                if g.category(op) == Category::MatrixOp {
                    spec.matrix_lanes() as u64
                } else {
                    1
                }
            })
            .sum()
    }

    /// Vector-core utilisation: used lane-cycles over available ones.
    pub fn utilization(&self, g: &Graph, spec: &ArchSpec) -> f64 {
        if self.cycles.is_empty() {
            return 0.0;
        }
        self.lane_cycles_used(g, spec) as f64
            / (spec.n_lanes as u64 * self.cycles.len() as u64) as f64
    }
}

impl fmt::Display for ConfigStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, c) in self.cycles.iter().enumerate() {
            if c.is_idle() && c.writes.is_empty() {
                continue;
            }
            write!(f, "cc {t:4}: ")?;
            if let Some(cfg) = &c.vector_config {
                write!(f, "V[{:?}×{}] ", cfg.core, c.vector_ops.len())?;
            }
            if c.scalar_op.is_some() {
                write!(f, "A[1] ")?;
            }
            if c.index_merge_op.is_some() {
                write!(f, "IM[1] ")?;
            }
            if !c.reads.is_empty() {
                write!(
                    f,
                    "R{:?} ",
                    c.reads.iter().map(|&(_, s)| s).collect::<Vec<_>>()
                )?;
            }
            if !c.writes.is_empty() {
                write!(
                    f,
                    "W{:?}",
                    c.writes.iter().map(|&(_, s)| s).collect::<Vec<_>>()
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eit_ir::{CoreOp, DataKind, Opcode};

    /// Two different op types back to back → 1 switch, 2 loads.
    #[test]
    fn reconfig_counting() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (o1, _) =
            g.add_op_with_output(Opcode::vector(CoreOp::Add), &[a, b], DataKind::Vector, "x");
        let (o2, _) =
            g.add_op_with_output(Opcode::vector(CoreOp::Mul), &[a, b], DataKind::Vector, "y");
        let (o3, _) =
            g.add_op_with_output(Opcode::vector(CoreOp::Mul), &[a, b], DataKind::Vector, "z");
        let mut s = Schedule::new(g.len());
        s.start[o1.idx()] = 0;
        s.start[o2.idx()] = 1;
        s.start[o3.idx()] = 5; // idle gap does not reconfigure
        s.slot[a.idx()] = Some(0);
        s.slot[b.idx()] = Some(1);
        s.makespan = 12;
        let cs = ConfigStream::from_schedule(&g, &ArchSpec::eit(), &s);
        assert_eq!(cs.reconfig_switches(), 1);
        assert_eq!(cs.config_loads(), 2);
    }

    #[test]
    fn single_config_app_has_one_load() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (o1, _) =
            g.add_op_with_output(Opcode::vector(CoreOp::DotP), &[a, b], DataKind::Scalar, "x");
        let (o2, _) =
            g.add_op_with_output(Opcode::vector(CoreOp::DotP), &[b, a], DataKind::Scalar, "y");
        let mut s = Schedule::new(g.len());
        s.start[o1.idx()] = 0;
        s.start[o2.idx()] = 1;
        s.slot[a.idx()] = Some(0);
        s.slot[b.idx()] = Some(1);
        s.makespan = 8;
        let cs = ConfigStream::from_schedule(&g, &ArchSpec::eit(), &s);
        assert_eq!(cs.reconfig_switches(), 0);
        assert_eq!(cs.config_loads(), 1);
    }

    #[test]
    fn reads_at_issue_writes_at_writeback() {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (o, out) =
            g.add_op_with_output(Opcode::vector(CoreOp::Add), &[a, b], DataKind::Vector, "x");
        let mut s = Schedule::new(g.len());
        s.start[o.idx()] = 2;
        s.start[out.idx()] = 9;
        s.slot[a.idx()] = Some(0);
        s.slot[b.idx()] = Some(1);
        s.slot[out.idx()] = Some(2);
        s.makespan = 9;
        let cs = ConfigStream::from_schedule(&g, &ArchSpec::eit(), &s);
        assert_eq!(cs.cycles[2].reads.len(), 2);
        assert_eq!(cs.cycles[9].writes, vec![(out, 2)]); // 2 + 7
    }

    #[test]
    fn utilization_counts_matrix_as_four_lanes() {
        let mut g = Graph::new("t");
        let ins: Vec<NodeId> = (0..4)
            .map(|i| g.add_data(DataKind::Vector, &format!("i{i}")))
            .collect();
        let m = g.add_op(Opcode::matrix(CoreOp::SquSum), "m");
        for &i in &ins {
            g.add_edge(i, m);
        }
        let out = g.add_data(DataKind::Vector, "o");
        g.add_edge(m, out);
        let mut s = Schedule::new(g.len());
        s.makespan = 1;
        let cs = ConfigStream::from_schedule(&g, &ArchSpec::eit(), &s);
        assert_eq!(cs.lane_cycles_used(&g, &ArchSpec::eit()), 4);
        assert_eq!(cs.utilization(&g, &ArchSpec::eit()), 0.5); // 4 of 8
    }
}
