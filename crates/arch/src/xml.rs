//! The versioned XML architecture-description format (`eit-arch/1`).
//!
//! [`to_arch_xml`] renders an [`ArchSpec`] — geometry attributes on the
//! `<arch>` root, one `<unit>` element per functional unit, one `<op>`
//! row per opcode class the unit serves:
//!
//! ```xml
//! <arch version="1" lanes="4" banks="16" page_size="4" slots_per_bank="4"
//!       max_vector_reads="8" max_vector_writes="4" reconfig_cost="1">
//!   <unit name="vector-core" count="4">
//!     <op class="vector" latency="7" occupancy="1" width="1"/>
//!     <op class="matrix" latency="7" occupancy="1" width="0"/>
//!   </unit>
//! </arch>
//! ```
//!
//! [`from_arch_xml`] reads one back and **validates it on load** — a
//! description that parses but describes an impossible machine (a page
//! larger than the bank array, a port budget the banks cannot serve, an
//! op class no unit implements) is rejected with the attribute-named
//! message from [`ArchSpec::validate`], never handed to the scheduler.
//! The builtin presets render to this same format and reload equal to
//! themselves, so `--arch eit-rendered.xml` is byte-identical to the
//! builtin path by construction.
//!
//! The parser is hand-rolled in the same style as `eit-ir::xml`: no
//! external dependencies, attribute-named numeric errors distinguishing
//! overflow from garbage, comments and the five standard entities.

use crate::spec::{ArchSpec, FuncUnit, UnitOp, UnitTable};
use eit_ir::{OpClass, XmlError};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Format version written by [`to_arch_xml`] and required on load.
pub const ARCH_XML_VERSION: u32 = 1;

// ---- writing ----------------------------------------------------------------

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(ch),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, XmlError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch != '&' {
            out.push(ch);
            continue;
        }
        let mut ent = String::new();
        for c in chars.by_ref() {
            if c == ';' {
                break;
            }
            ent.push(c);
        }
        out.push(match ent.as_str() {
            "amp" => '&',
            "lt" => '<',
            "gt" => '>',
            "quot" => '"',
            "apos" => '\'',
            other => return Err(XmlError::BadValue(format!("&{other};"))),
        });
    }
    Ok(out)
}

/// Render an architecture description to the versioned XML format.
pub fn to_arch_xml(spec: &ArchSpec) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        r#"<arch version="{ARCH_XML_VERSION}" lanes="{}" banks="{}" page_size="{}" slots_per_bank="{}" max_vector_reads="{}" max_vector_writes="{}" reconfig_cost="{}""#,
        spec.n_lanes,
        spec.n_banks,
        spec.page_size,
        spec.slots_per_bank,
        spec.max_vector_reads,
        spec.max_vector_writes,
        spec.reconfig_cost,
    );
    if let Some(cap) = spec.slot_cap {
        let _ = write!(out, r#" slot_cap="{cap}""#);
    }
    out.push_str(">\n");
    for u in &spec.units.units {
        let _ = writeln!(
            out,
            r#"  <unit name="{}" count="{}">"#,
            escape(&u.name),
            u.count
        );
        for op in &u.ops {
            let _ = writeln!(
                out,
                r#"    <op class="{}" latency="{}" occupancy="{}" width="{}"/>"#,
                op.class, op.latency, op.occupancy, op.width
            );
        }
        out.push_str("  </unit>\n");
    }
    out.push_str("</arch>\n");
    out
}

// ---- parsing ----------------------------------------------------------------

struct Element {
    name: String,
    attrs: HashMap<String, String>,
    closing: bool,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            let r = self.rest();
            let trimmed = r.trim_start();
            self.pos += r.len() - trimmed.len();
            if let Some(after) = self.rest().strip_prefix("<!--") {
                match after.find("-->") {
                    Some(k) => self.pos += 4 + k + 3,
                    None => {
                        self.pos = self.src.len();
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn next_element(&mut self) -> Result<Option<Element>, XmlError> {
        self.skip_ws_and_comments();
        if self.rest().is_empty() {
            return Ok(None);
        }
        if !self.rest().starts_with('<') {
            return Err(XmlError::Syntax(format!(
                "expected '<' at byte {}",
                self.pos
            )));
        }
        let end = self
            .rest()
            .find('>')
            .ok_or_else(|| XmlError::Syntax("unterminated tag".into()))?;
        let tag = &self.rest()[1..end];
        self.pos += end + 1;

        let closing = tag.starts_with('/');
        let tag = tag.trim_start_matches('/');
        let tag = tag.trim_end_matches('/').trim();

        let (name, attr_src) = match tag.find(char::is_whitespace) {
            Some(k) => (&tag[..k], tag[k..].trim()),
            None => (tag, ""),
        };
        let mut attrs = HashMap::new();
        let mut rest = attr_src;
        while !rest.is_empty() {
            let eq = rest
                .find('=')
                .ok_or_else(|| XmlError::Syntax(format!("attribute without '=': {rest}")))?;
            let key = rest[..eq].trim().to_string();
            let after = rest[eq + 1..].trim_start();
            if !after.starts_with('"') {
                return Err(XmlError::Syntax(format!("unquoted attribute {key}")));
            }
            let close = after[1..]
                .find('"')
                .ok_or_else(|| XmlError::Syntax(format!("unterminated value for {key}")))?;
            let val = &after[1..1 + close];
            attrs.insert(key, unescape(val)?);
            rest = after[close + 2..].trim_start();
        }
        Ok(Some(Element {
            name: name.to_string(),
            attrs,
            closing,
        }))
    }
}

fn req<'e>(e: &'e Element, key: &'static str) -> Result<&'e str, XmlError> {
    e.attrs
        .get(key)
        .map(String::as_str)
        .ok_or(XmlError::MissingAttr(key))
}

fn parse_u32(attr: &'static str, s: &str) -> Result<u32, XmlError> {
    use std::num::IntErrorKind;
    s.parse::<u32>().map_err(|e| match e.kind() {
        IntErrorKind::PosOverflow => {
            XmlError::BadValue(format!("{attr}=\"{s}\": overflows u32 (max {})", u32::MAX))
        }
        _ => XmlError::BadValue(format!("{attr}=\"{s}\": not a non-negative integer")),
    })
}

fn parse_i32(attr: &'static str, s: &str) -> Result<i32, XmlError> {
    use std::num::IntErrorKind;
    s.parse::<i32>().map_err(|e| match e.kind() {
        IntErrorKind::PosOverflow | IntErrorKind::NegOverflow => {
            XmlError::BadValue(format!("{attr}=\"{s}\": overflows i32"))
        }
        _ => XmlError::BadValue(format!("{attr}=\"{s}\": not an integer")),
    })
}

/// Parse (and [`ArchSpec::validate`]) an architecture description.
pub fn from_arch_xml(src: &str) -> Result<ArchSpec, XmlError> {
    let mut lex = Lexer::new(src);
    let root = lex
        .next_element()?
        .ok_or_else(|| XmlError::Syntax("empty document".into()))?;
    if root.name != "arch" || root.closing {
        return Err(XmlError::Syntax("expected <arch> root".into()));
    }
    let version = parse_u32("version", req(&root, "version")?)?;
    if version != ARCH_XML_VERSION {
        return Err(XmlError::BadValue(format!(
            "version=\"{version}\": unsupported (this build reads eit-arch/{ARCH_XML_VERSION})"
        )));
    }
    let slot_cap = root
        .attrs
        .get("slot_cap")
        .map(|v| parse_u32("slot_cap", v))
        .transpose()?;
    let mut spec = ArchSpec {
        n_lanes: parse_u32("lanes", req(&root, "lanes")?)?,
        n_banks: parse_u32("banks", req(&root, "banks")?)?,
        page_size: parse_u32("page_size", req(&root, "page_size")?)?,
        slots_per_bank: parse_u32("slots_per_bank", req(&root, "slots_per_bank")?)?,
        max_vector_reads: parse_u32("max_vector_reads", req(&root, "max_vector_reads")?)?,
        max_vector_writes: parse_u32("max_vector_writes", req(&root, "max_vector_writes")?)?,
        reconfig_cost: parse_i32("reconfig_cost", req(&root, "reconfig_cost")?)?,
        slot_cap,
        units: UnitTable { units: Vec::new() },
    };

    let mut current: Option<FuncUnit> = None;
    while let Some(el) = lex.next_element()? {
        if el.closing {
            match el.name.as_str() {
                "arch" => break,
                "unit" => {
                    if let Some(u) = current.take() {
                        spec.units.units.push(u);
                    }
                }
                _ => {}
            }
            continue;
        }
        match el.name.as_str() {
            "unit" => {
                // A self-closing or re-opened <unit> ends the previous one.
                if let Some(u) = current.take() {
                    spec.units.units.push(u);
                }
                current = Some(FuncUnit {
                    name: req(&el, "name")?.to_string(),
                    count: parse_u32("count", req(&el, "count")?)?,
                    ops: Vec::new(),
                });
            }
            "op" => {
                let class_s = req(&el, "class")?;
                let class = OpClass::parse(class_s).ok_or_else(|| {
                    XmlError::BadValue(format!(
                        "class=\"{class_s}\": not an op class (expected one of {})",
                        OpClass::ALL.map(|c| c.name()).join(", ")
                    ))
                })?;
                let op = UnitOp {
                    class,
                    latency: parse_i32("latency", req(&el, "latency")?)?,
                    occupancy: parse_i32("occupancy", req(&el, "occupancy")?)?,
                    width: parse_u32("width", req(&el, "width")?)?,
                };
                match current.as_mut() {
                    Some(u) => u.ops.push(op),
                    None => {
                        return Err(XmlError::Syntax("<op> outside of a <unit> element".into()))
                    }
                }
            }
            other => return Err(XmlError::Syntax(format!("unexpected <{other}>"))),
        }
    }
    if let Some(u) = current.take() {
        spec.units.units.push(u);
    }

    spec.validate().map_err(XmlError::BadValue)?;
    Ok(spec)
}

/// Resolve an `--arch` argument that is already in memory: a builtin
/// preset name, or an inline XML document (anything starting with `<`).
/// File loading is the caller's job — this layer stays I/O-free.
pub fn resolve_arch(arg: &str) -> Result<ArchSpec, String> {
    let trimmed = arg.trim_start();
    if trimmed.starts_with('<') {
        return from_arch_xml(arg).map_err(|e| format!("invalid arch xml: {e}"));
    }
    ArchSpec::preset(arg).ok_or_else(|| {
        format!(
            "unknown arch '{arg}' (expected a preset — {} — a file path, or inline XML)",
            ArchSpec::preset_names().join(", ")
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_roundtrip_exactly() {
        for name in ArchSpec::preset_names() {
            let spec = ArchSpec::preset(name).unwrap();
            let xml = to_arch_xml(&spec);
            let back = from_arch_xml(&xml).unwrap();
            assert_eq!(back, spec, "{name} did not survive the roundtrip");
            // Roundtrip twice is the identity on the rendered bytes.
            assert_eq!(to_arch_xml(&back), xml);
        }
    }

    #[test]
    fn slot_cap_is_preserved() {
        let spec = ArchSpec::eit().with_slots(33);
        let xml = to_arch_xml(&spec);
        assert!(xml.contains(r#"slot_cap="33""#), "{xml}");
        assert_eq!(from_arch_xml(&xml).unwrap(), spec);
    }

    #[test]
    fn validation_runs_on_load() {
        // Parses fine, but the page is larger than the bank array.
        let xml = to_arch_xml(&ArchSpec::eit()).replace(r#"page_size="4""#, r#"page_size="32""#);
        let err = from_arch_xml(&xml).unwrap_err();
        assert!(
            matches!(&err, XmlError::BadValue(m) if m.starts_with("page_size=\"32\"")),
            "{err}"
        );

        // A machine missing a whole unit is rejected too.
        let mut spec = ArchSpec::eit();
        spec.units.units.pop();
        let xml = to_arch_xml(&spec);
        assert!(from_arch_xml(&xml).is_err());
    }

    #[test]
    fn numeric_attr_errors_name_the_attribute() {
        let xml = to_arch_xml(&ArchSpec::eit()).replace(r#"lanes="4""#, r#"lanes="many""#);
        let Err(XmlError::BadValue(msg)) = from_arch_xml(&xml) else {
            panic!()
        };
        assert!(msg.contains("lanes=\"many\""), "{msg}");
        assert!(msg.contains("not a non-negative integer"), "{msg}");

        let xml = to_arch_xml(&ArchSpec::eit()).replace(r#"banks="16""#, r#"banks="99999999999""#);
        let Err(XmlError::BadValue(msg)) = from_arch_xml(&xml) else {
            panic!()
        };
        assert!(msg.contains("overflows u32"), "{msg}");
    }

    #[test]
    fn version_is_enforced() {
        let xml = to_arch_xml(&ArchSpec::eit()).replace(r#"version="1""#, r#"version="2""#);
        let Err(XmlError::BadValue(msg)) = from_arch_xml(&xml) else {
            panic!()
        };
        assert!(msg.contains("version=\"2\""), "{msg}");
        let xml = to_arch_xml(&ArchSpec::eit()).replace(r#" version="1""#, "");
        assert!(matches!(
            from_arch_xml(&xml),
            Err(XmlError::MissingAttr("version"))
        ));
    }

    #[test]
    fn bad_structure_reported() {
        assert!(matches!(from_arch_xml(""), Err(XmlError::Syntax(_))));
        assert!(matches!(from_arch_xml("<nope/>"), Err(XmlError::Syntax(_))));
        let orphan_op = r#"<arch version="1" lanes="4" banks="16" page_size="4"
            slots_per_bank="4" max_vector_reads="8" max_vector_writes="4"
            reconfig_cost="1"><op class="vector" latency="7" occupancy="1"
            width="1"/></arch>"#;
        assert!(matches!(from_arch_xml(orphan_op), Err(XmlError::Syntax(_))));
        let bad_class = to_arch_xml(&ArchSpec::eit()).replace("\"vector\"", "\"warp\"");
        assert!(matches!(
            from_arch_xml(&bad_class),
            Err(XmlError::BadValue(_))
        ));
    }

    #[test]
    fn resolve_arch_handles_presets_and_inline_xml() {
        assert_eq!(resolve_arch("eit").unwrap(), ArchSpec::eit());
        assert_eq!(resolve_arch("wide").unwrap(), ArchSpec::wide());
        let inline = to_arch_xml(&ArchSpec::wide());
        assert_eq!(resolve_arch(&inline).unwrap(), ArchSpec::wide());
        assert!(resolve_arch("weird").unwrap_err().contains("eit, wide"));
    }

    #[test]
    fn comments_and_whitespace_tolerated() {
        let xml = format!("<!-- my machine -->\n{}", to_arch_xml(&ArchSpec::eit()));
        assert!(from_arch_xml(&xml).is_ok());
    }
}
