//! VCD (Value Change Dump) export of schedules: view a schedule's
//! resource activity as waveforms in GTKWave or any VCD viewer — the
//! hardware-native rendition of the Gantt chart.
//!
//! Signals emitted:
//! - `lane0..laneN` (wire 1): vector-lane occupancy, one per spec lane;
//! - `vconfig` (wire 8): the vector core's configuration index
//!   (0 = idle, k = the k-th distinct configuration in issue order);
//! - one wire-1 occupancy signal per non-vector functional unit of the
//!   spec's unit table, named after the unit (non-alphanumeric characters
//!   become `_`, so the EIT preset emits `scalar_accel` and `index_merge`);
//! - `mem_reads`, `mem_writes` (wire 8): vector-memory port activity.

use crate::code::ConfigStream;
use crate::schedule::Schedule;
use crate::spec::ArchSpec;
use eit_ir::{Graph, OpClass, VectorConfig};
use std::fmt::Write as _;

fn ident(i: usize) -> String {
    // Printable VCD identifier characters ! .. ~
    let mut n = i;
    let mut s = String::new();
    loop {
        s.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

fn signal_name(unit: &str) -> String {
    unit.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Render a schedule as a VCD document.
pub fn to_vcd(g: &Graph, spec: &ArchSpec, sched: &Schedule) -> String {
    let cs = ConfigStream::from_schedule(g, spec, sched);
    let lanes = spec.n_lanes as usize;

    // Non-vector functional units, in table order.
    let unit_defs: Vec<(&str, Vec<OpClass>)> = spec
        .units
        .units
        .iter()
        .filter(|u| {
            !u.ops
                .iter()
                .any(|o| matches!(o.class, OpClass::Vector | OpClass::Matrix))
        })
        .map(|u| {
            (
                u.name.as_str(),
                u.ops.iter().map(|o| o.class).collect::<Vec<_>>(),
            )
        })
        .collect();

    let mut out = String::new();
    let _ = writeln!(out, "$date eit-vector schedule dump $end");
    let _ = writeln!(out, "$version eit-arch vcd exporter $end");
    let _ = writeln!(out, "$timescale 1ns $end");
    let _ = writeln!(
        out,
        "$scope module {} $end",
        if g.name.is_empty() { "kernel" } else { &g.name }
    );

    let mut ids = Vec::new();
    let mut next_id = 0usize;
    let mut declare = |out: &mut String, width: u32, name: &str| -> String {
        let id = ident(next_id);
        next_id += 1;
        let _ = writeln!(out, "$var wire {width} {id} {name} $end");
        ids.push(id.clone());
        id
    };

    let lane_ids: Vec<String> = (0..lanes)
        .map(|k| declare(&mut out, 1, &format!("lane{k}")))
        .collect();
    let cfg_id = declare(&mut out, 8, "vconfig");
    let unit_ids: Vec<String> = unit_defs
        .iter()
        .map(|(name, _)| declare(&mut out, 1, &signal_name(name)))
        .collect();
    let rd_id = declare(&mut out, 8, "mem_reads");
    let wr_id = declare(&mut out, 8, "mem_writes");
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // Per-unit occupancy per cycle (durations matter).
    let n = cs.cycles.len();
    let mut unit_busy = vec![vec![false; n]; unit_defs.len()];
    for node in g.ids() {
        let t = sched.start_of(node);
        if t < 0 {
            continue;
        }
        let Some(class) = OpClass::of(&g.node(node).kind) else {
            continue;
        };
        let Some(u) = unit_defs.iter().position(|(_, cs)| cs.contains(&class)) else {
            continue;
        };
        let d = spec.duration(&g.node(node).kind).max(1);
        for dt in 0..d {
            if ((t + dt) as usize) < n {
                unit_busy[u][(t + dt) as usize] = true;
            }
        }
    }

    // Distinct-config numbering.
    let mut seen: Vec<VectorConfig> = Vec::new();
    let mut cfg_index = |c: VectorConfig| -> usize {
        match seen.iter().position(|&x| x == c) {
            Some(i) => i + 1,
            None => {
                seen.push(c);
                seen.len()
            }
        }
    };

    // Emit changes only when a value differs from the previous cycle:
    // (lane busy bits, config number, unit busy bits, reads, writes).
    type CycleState = (Vec<bool>, usize, Vec<bool>, usize, usize);
    let mut prev: Option<CycleState> = None;
    for (t, c) in cs.cycles.iter().enumerate() {
        let mut lanes_now = vec![false; lanes];
        let active = c
            .vector_ops
            .iter()
            .map(|&op| {
                if g.category(op) == eit_ir::Category::MatrixOp {
                    spec.matrix_lanes() as usize
                } else {
                    1
                }
            })
            .sum::<usize>()
            .min(lanes);
        for l in lanes_now.iter_mut().take(active) {
            *l = true;
        }
        let cfg_now = c.vector_config.map_or(0, &mut cfg_index);
        let units_now: Vec<bool> = unit_busy.iter().map(|b| b[t]).collect();
        let state = (
            lanes_now.clone(),
            cfg_now,
            units_now.clone(),
            c.reads.len(),
            c.writes.len(),
        );
        if prev.as_ref() != Some(&state) {
            let _ = writeln!(out, "#{t}");
            let dump_all = prev.is_none();
            let p = prev.as_ref();
            for k in 0..lanes {
                if dump_all || p.map(|p| p.0[k]) != Some(lanes_now[k]) {
                    let _ = writeln!(out, "{}{}", u8::from(lanes_now[k]), lane_ids[k]);
                }
            }
            if dump_all || p.map(|p| p.1) != Some(cfg_now) {
                let _ = writeln!(out, "b{cfg_now:b} {cfg_id}");
            }
            for (u, id) in unit_ids.iter().enumerate() {
                if dump_all || p.map(|p| p.2[u]) != Some(units_now[u]) {
                    let _ = writeln!(out, "{}{}", u8::from(units_now[u]), id);
                }
            }
            if dump_all || p.map(|p| p.3) != Some(c.reads.len()) {
                let _ = writeln!(out, "b{:b} {rd_id}", c.reads.len());
            }
            if dump_all || p.map(|p| p.4) != Some(c.writes.len()) {
                let _ = writeln!(out, "b{:b} {wr_id}", c.writes.len());
            }
            prev = Some(state);
        }
    }
    let _ = writeln!(out, "#{}", n.max(1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eit_ir::{CoreOp, DataKind, Opcode};

    fn scheduled() -> (Graph, ArchSpec, Schedule) {
        let mut g = Graph::new("wave");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (o1, d1) =
            g.add_op_with_output(Opcode::vector(CoreOp::Add), &[a, b], DataKind::Vector, "x");
        let (o2, d2) =
            g.add_op_with_output(Opcode::vector(CoreOp::Mul), &[d1, b], DataKind::Vector, "y");
        let mut s = Schedule::new(g.len());
        s.start[o1.idx()] = 0;
        s.start[d1.idx()] = 7;
        s.start[o2.idx()] = 7;
        s.start[d2.idx()] = 14;
        s.slot[a.idx()] = Some(0);
        s.slot[b.idx()] = Some(1);
        s.slot[d1.idx()] = Some(2);
        s.slot[d2.idx()] = Some(3);
        s.makespan = 14;
        (g, ArchSpec::eit(), s)
    }

    #[test]
    fn vcd_structure_is_wellformed() {
        let (g, spec, s) = scheduled();
        let vcd = to_vcd(&g, &spec, &s);
        assert!(vcd.contains("$timescale"));
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains("$var wire 8"));
        // Two issue points → at least timestamps #0 and #7.
        assert!(vcd.contains("#0\n"));
        assert!(vcd.contains("#7\n"));
    }

    #[test]
    fn config_indices_distinguish_ops() {
        let (g, spec, s) = scheduled();
        let vcd = to_vcd(&g, &spec, &s);
        // Config 1 (add) at t=0, config 2 (mul) at t=7.
        assert!(vcd.contains("b1 "));
        assert!(vcd.contains("b10 ")); // 2 in binary
    }

    #[test]
    fn unit_signals_carry_spec_names() {
        let (g, spec, s) = scheduled();
        let vcd = to_vcd(&g, &spec, &s);
        // The EIT preset's unit names, sanitised for VCD identifiers.
        assert!(vcd.contains(" scalar_accel $end"), "{vcd}");
        assert!(vcd.contains(" index_merge $end"), "{vcd}");
        // A wide machine declares all eight lanes.
        let vcd = to_vcd(&g, &ArchSpec::wide(), &s);
        assert!(vcd.contains(" lane7 $end"), "{vcd}");
    }

    #[test]
    fn idents_are_unique_and_printable() {
        let ids: Vec<String> = (0..200).map(ident).collect();
        let mut uniq = ids.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), ids.len());
        for id in ids {
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
        }
    }
}
