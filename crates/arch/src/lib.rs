//! # eit-arch — machine model and cycle-accurate simulator
//!
//! The EIT architecture (§1.1 of the paper) as an executable model:
//!
//! - [`spec::ArchSpec`] — every architectural parameter (4-lane CMAC
//!   vector core behind a 7-stage pipeline, scalar accelerator,
//!   index/merge unit, 16-bank paged vector memory, reconfiguration
//!   cost);
//! - [`memory`] — slot/line/page geometry, the fig. 8 access-legality
//!   rules, and value-carrying memory for functional replay;
//! - [`schedule::Schedule`] — the scheduler's output: start times plus
//!   memory allocation;
//! - [`code::ConfigStream`] — machine code as a per-cycle configuration
//!   stream, where reconfigurations are counted;
//! - [`sim`] — structural validation and functional replay of schedules
//!   against all of the above;
//! - [`verify`] — a second, solver-independent verifier that re-derives
//!   every timing rule from the spec with its own algorithms (including
//!   modulo wraparound), never panicking on malformed input.
//!
//! The paper's own evaluation never runs on silicon — it is analytic over
//! the architecture's published timing rules; the simulator enforces
//! those same rules and additionally executes every schedule, which is
//! the substitution documented in DESIGN.md.

pub mod code;
pub mod gantt;
pub mod memory;
pub mod persist;
pub mod schedule;
pub mod sim;
pub mod spec;
pub mod vcd;
pub mod verify;
pub mod xml;

pub use code::{ConfigStream, Cycle};
pub use gantt::render_gantt;
pub use memory::{
    check_access, matrix_accessible_in_one_cycle, AccessViolation, Geometry, VectorMemory,
};
pub use persist::{schedule_from_text, schedule_to_text, PersistError};
pub use schedule::Schedule;
pub use sim::{
    simulate, validate_structure, validate_structure_with, SimCounters, SimReport, UnitUtilization,
    Violation,
};
pub use spec::{ArchSpec, FuncUnit, UnitOp, UnitTable};
pub use vcd::to_vcd;
pub use verify::{verify_modulo, verify_overlapped, verify_schedule};
pub use xml::{from_arch_xml, resolve_arch, to_arch_xml, ARCH_XML_VERSION};
