//! Solver-independent schedule/allocation verification.
//!
//! The simulator ([`crate::sim`]) is the reproduction's first safety net,
//! but it shares helper code (geometry, access checks, lifetime
//! bookkeeping) with the rest of the stack. This module is the *second*,
//! adversarial net: it re-derives every timing rule directly from the
//! [`ArchSpec`] with its own arithmetic and its own algorithms — per-cycle
//! occupancy maps instead of sorted interval sweeps, inline `slot %
//! n_banks` geometry instead of [`crate::memory::Geometry`] — so a bug in
//! one implementation cannot silently excuse the same bug in the other.
//! The differential fuzzer (`eit-core::fuzz`) cross-checks the two on
//! every generated schedule.
//!
//! Rules enforced (straight-line, [`verify_schedule`]):
//!
//! 1. precedence `s_i + l_i ≤ s_j` and exact data availability
//!    `s_data = s_op + l_op` (paper constraints (1)/(4), 7-cc pipeline);
//! 2. lane capacity (a matrix op takes four lanes) and a single
//!    vector-core configuration per cycle ((2)/(3));
//! 3. unit-capacity scalar accelerator and index/merge unit, including
//!    multi-cycle occupancies;
//! 4. memory (§3.4): every vector datum in an in-range slot, exclusive
//!    slot lifetimes ((10)/(11)), ≤ `max_vector_reads` reads and
//!    ≤ `max_vector_writes` writes per cycle (two matrix reads + one
//!    matrix write on the EIT instance), one read and one write per bank
//!    per cycle, and one line per page per direction (fig. 8). As in the
//!    simulator, only vector-core accesses count against the ports; reads
//!    happen at issue, writes at write-back.
//!
//! For software-pipelined kernels, [`verify_modulo`] checks the same
//! resource rules folded modulo the initiation interval — the steady
//! state where every window cycle hosts work from several iterations at
//! once — plus intra-iteration precedence on the absolute starts.
//!
//! Both entry points *never panic*: malformed input (wrong-length
//! schedule vectors, cyclic graphs, missing start entries, a nonsensical
//! spec) degrades to [`Violation::MalformedSchedule`].

use crate::memory::AccessViolation;
use crate::schedule::Schedule;
use crate::sim::Violation;
use crate::spec::ArchSpec;
use eit_ir::{Category, Graph, NodeId, OpClass, VectorConfig};
use std::collections::HashMap;

/// Lanes an op occupies: a matrix op takes the spec's full matrix width
/// (all four lanes on EIT); a vector op takes one.
fn lanes_of(spec: &ArchSpec, cat: Category) -> u32 {
    if cat == Category::MatrixOp {
        spec.matrix_lanes()
    } else {
        1
    }
}

/// Per-cycle occupancy check for every capacity-limited unit beyond the
/// vector core, in table order, honouring replication (`count`) and
/// per-class widths. `fold` maps an absolute cycle into the window the
/// occupancy is accounted in (identity for straight-line schedules,
/// `t mod ii` for modulo ones).
fn check_units(
    g: &Graph,
    spec: &ArchSpec,
    start: &dyn Fn(NodeId) -> i32,
    duration: &dyn Fn(NodeId) -> i32,
    fold: &dyn Fn(i32) -> i32,
    out: &mut Vec<Violation>,
) {
    for unit in &spec.units.units {
        let classes: Vec<OpClass> = unit.ops.iter().map(|o| o.class).collect();
        if classes.contains(&OpClass::Vector) || classes.contains(&OpClass::Matrix) {
            continue; // the lane rule covers the vector core
        }
        let is_accel = classes
            .iter()
            .any(|c| matches!(c, OpClass::ScalarIterative | OpClass::ScalarSimple));
        let mut nodes: Vec<(NodeId, u32)> = g
            .ids()
            .filter_map(|n| {
                let c = OpClass::of(&g.node(n).kind)?;
                if !classes.contains(&c) {
                    return None;
                }
                Some((n, spec.units.class_width(c).unwrap_or(1)))
            })
            .collect();
        nodes.sort_by_key(|&(n, _)| (start(n), n.idx()));
        let mut busy: HashMap<i32, (u32, NodeId)> = HashMap::new();
        let mut reported: Vec<(NodeId, NodeId)> = Vec::new();
        for (n, w) in nodes {
            for dt in 0..duration(n).max(1) {
                let t = fold(start(n).saturating_add(dt));
                let e = busy.entry(t).or_insert((0, n));
                if e.0 + w > unit.count {
                    let prev = e.1;
                    if !reported.contains(&(prev, n)) {
                        reported.push((prev, n));
                        out.push(if is_accel {
                            Violation::AcceleratorOverlap { a: prev, b: n }
                        } else {
                            Violation::IndexMergeOverlap { a: prev, b: n }
                        });
                    }
                } else {
                    e.0 += w;
                }
            }
        }
    }
}

/// Verify a straight-line schedule against every architectural rule,
/// re-derived from `spec`. `check_memory = false` skips §3.4 (the paper's
/// manual baseline and modulo schedules assume sufficient memory).
///
/// Returns all violations found; an empty vector means the schedule is
/// proven legal under the documented machine model. Never panics.
pub fn verify_schedule(
    g: &Graph,
    spec: &ArchSpec,
    sched: &Schedule,
    check_memory: bool,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if let Err(e) = spec.validate() {
        out.push(Violation::MalformedSchedule {
            detail: format!("invalid ArchSpec: {e}"),
        });
        return out;
    }
    if sched.start.len() != g.len() || sched.slot.len() != g.len() {
        out.push(Violation::MalformedSchedule {
            detail: format!(
                "schedule covers {} starts / {} slots for a {}-node graph",
                sched.start.len(),
                sched.slot.len(),
                g.len()
            ),
        });
        return out;
    }
    let start = |n: NodeId| sched.start[n.idx()];
    let latency = |n: NodeId| spec.latency(&g.node(n).kind);
    let duration = |n: NodeId| spec.duration(&g.node(n).kind);

    // Starts are cycles of a real execution: non-negative.
    for n in g.ids() {
        if start(n) < 0 {
            out.push(Violation::NegativeStart { node: n });
        }
    }

    // A schedule claiming to finish before its own last write-back is
    // lying about the makespan (persistence corruption shows up here).
    let completion = g
        .ids()
        .map(|n| start(n).saturating_add(latency(n)))
        .max()
        .unwrap_or(0);
    if sched.makespan < completion {
        out.push(Violation::MalformedSchedule {
            detail: format!(
                "declared makespan {} < latest completion {completion}",
                sched.makespan
            ),
        });
    }

    // (1)/(4): the 7-cycle pipeline — a consumer may not start before its
    // operand's write-back, and a produced datum starts *exactly* at it.
    for (f, t) in g.edges() {
        if start(f).saturating_add(latency(f)) > start(t) {
            out.push(Violation::Precedence { from: f, to: t });
        }
        if g.category(f).is_op()
            && g.category(t).is_data()
            && start(t) != start(f).saturating_add(latency(f))
        {
            out.push(Violation::DataStart { op: f, data: t });
        }
    }

    // (2)/(3): per-cycle lane budget and configuration uniqueness.
    type CoreCycle = (u32, Vec<(NodeId, Option<VectorConfig>)>);
    let mut core_cycles: HashMap<i32, CoreCycle> = HashMap::new();
    for n in g.ids() {
        let cat = g.category(n);
        if matches!(cat, Category::VectorOp | Category::MatrixOp) {
            let e = core_cycles.entry(start(n)).or_default();
            e.0 += lanes_of(spec, cat);
            e.1.push((n, g.opcode(n).and_then(|o| o.config())));
        }
    }
    let mut cycles: Vec<i32> = core_cycles.keys().copied().collect();
    cycles.sort_unstable();
    for cycle in cycles {
        let (used, ops) = &core_cycles[&cycle];
        if *used > spec.n_lanes {
            out.push(Violation::LaneOverflow { cycle, used: *used });
        }
        let mut cfg = None;
        let mut conflict = false;
        for (n, c) in ops {
            match c {
                None => out.push(Violation::MalformedSchedule {
                    detail: format!("node {n:?} on the vector core has no configuration"),
                }),
                Some(c) => {
                    conflict |= cfg.is_some_and(|prev: VectorConfig| prev != *c);
                    cfg = Some(*c);
                }
            }
        }
        if conflict {
            out.push(Violation::ConfigConflict { cycle });
        }
    }

    // Capacity-limited units beyond the vector core: per-cycle occupancy
    // maps (the simulator uses a sorted interval sweep — different
    // algorithm, same rule), driven by the spec's unit table.
    check_units(g, spec, &start, &duration, &|t| t, &mut out);

    if !check_memory {
        return out;
    }

    // §3.4 — memory. Geometry from first principles over the linear slot
    // enumeration: bank = slot mod n_banks, line = slot / n_banks,
    // page = bank / page_size.
    let n_slots = spec.n_slots();
    let bank = |slot: u32| slot % spec.n_banks;
    let line = |slot: u32| slot / spec.n_banks;
    let page = |slot: u32| bank(slot) / spec.page_size;

    let vdata: Vec<NodeId> = g
        .ids()
        .filter(|&n| g.category(n) == Category::VectorData)
        .collect();
    for &d in &vdata {
        match sched.slot[d.idx()] {
            None => out.push(Violation::MissingSlot { data: d }),
            Some(s) if s >= n_slots => out.push(Violation::SlotOutOfRange { data: d, slot: s }),
            _ => {}
        }
    }

    // (10)/(11): a slot holds one live datum at a time. Lifetime re-derived
    // from the paper's (10): own start to latest consumer start (min one
    // cycle, long enough to be written).
    let life = |d: NodeId| {
        let s = start(d);
        let e = g
            .succs(d)
            .iter()
            .map(|&c| start(c))
            .max()
            .unwrap_or(s + 1)
            .max(s + 1);
        (s, e)
    };
    let mut by_slot: HashMap<u32, Vec<NodeId>> = HashMap::new();
    for &d in &vdata {
        if let Some(s) = sched.slot[d.idx()] {
            by_slot.entry(s).or_default().push(d);
        }
    }
    let mut slots: Vec<u32> = by_slot.keys().copied().collect();
    slots.sort_unstable();
    for slot in slots {
        let ds = &by_slot[&slot];
        for (i, &a) in ds.iter().enumerate() {
            for &b in &ds[i + 1..] {
                let (a0, a1) = life(a);
                let (b0, b1) = life(b);
                if a0 < b1 && b0 < a1 {
                    out.push(Violation::SlotLifetimeOverlap { a, b, slot });
                }
            }
        }
    }

    // Port budgets, 1R/1W per bank, one line per page per direction — all
    // per cycle, reads at issue (broadcast-deduplicated) and writes at
    // write-back, vector-core accesses only.
    let mut reads_at: HashMap<i32, Vec<u32>> = HashMap::new();
    let mut writes_at: HashMap<i32, Vec<u32>> = HashMap::new();
    for n in g.ids() {
        if !matches!(g.category(n), Category::VectorOp | Category::MatrixOp) {
            continue;
        }
        for &d in g.preds(n) {
            if g.category(d) == Category::VectorData {
                if let Some(s) = sched.slot[d.idx()] {
                    reads_at.entry(start(n)).or_default().push(s);
                }
            }
        }
        let wb = start(n).saturating_add(latency(n));
        for &d in g.succs(n) {
            if g.category(d) == Category::VectorData {
                if let Some(s) = sched.slot[d.idx()] {
                    writes_at.entry(wb).or_default().push(s);
                }
            }
        }
    }
    let mut cycles: Vec<i32> = reads_at.keys().chain(writes_at.keys()).copied().collect();
    cycles.sort_unstable();
    cycles.dedup();
    for t in cycles {
        let mut push = |d| {
            out.push(Violation::Memory {
                cycle: t,
                detail: d,
            })
        };
        let mut reads = reads_at.remove(&t).unwrap_or_default();
        reads.sort_unstable();
        reads.dedup(); // same slot twice in one cycle = one broadcast read
        let writes = writes_at.remove(&t).unwrap_or_default();
        if reads.len() > spec.max_vector_reads as usize {
            push(AccessViolation::TooManyReads {
                count: reads.len(),
                max: spec.max_vector_reads,
            });
        }
        if writes.len() > spec.max_vector_writes as usize {
            push(AccessViolation::TooManyWrites {
                count: writes.len(),
                max: spec.max_vector_writes,
            });
        }
        for (slots, write) in [(&reads, false), (&writes, true)] {
            let mut by_bank: HashMap<u32, Vec<u32>> = HashMap::new();
            let mut by_page: HashMap<u32, Vec<u32>> = HashMap::new();
            for s in slots.iter().copied() {
                by_bank.entry(bank(s)).or_default().push(s);
                by_page.entry(page(s)).or_default().push(line(s));
            }
            let mut banks: Vec<u32> = by_bank.keys().copied().collect();
            banks.sort_unstable();
            for b in banks {
                let ss = by_bank.remove(&b).unwrap_or_default();
                if ss.len() > 1 {
                    push(if write {
                        AccessViolation::BankWriteConflict { bank: b, slots: ss }
                    } else {
                        AccessViolation::BankReadConflict { bank: b, slots: ss }
                    });
                }
            }
            let mut pages: Vec<u32> = by_page.keys().copied().collect();
            pages.sort_unstable();
            for p in pages {
                let mut lines = by_page.remove(&p).unwrap_or_default();
                lines.sort_unstable();
                lines.dedup();
                if lines.len() > 1 {
                    push(AccessViolation::PageLineConflict { page: p, lines });
                }
            }
        }
    }

    out
}

/// Verify an overlapped-execution schedule (§4.3, Table 2): the
/// replicated `M`-iteration graph with the bundle-interleaved schedule
/// produced by `overlapped_execution`.
///
/// Overlapped execution assumes sufficient memory (as the paper's manual
/// baseline does), so the §3.4 memory rules are skipped; everything else
/// from [`verify_schedule`] applies — precedence and exact data starts
/// across the *replicated* graph, per-cycle lane budget, one vector-core
/// configuration per cycle, and unit occupancies. On top of those, the
/// defining rule of the technique is enforced: the core reconfigures
/// only **between** issue cycles, and every switch costs
/// `spec.reconfig_cost` idle cycles — two consecutive core-issue cycles
/// with different configurations closer than `reconfig_cost + 1` apart
/// are a [`Violation::ReconfigStall`]. Never panics.
pub fn verify_overlapped(g: &Graph, spec: &ArchSpec, sched: &Schedule) -> Vec<Violation> {
    let mut out = verify_schedule(g, spec, sched, false);
    if out
        .iter()
        .any(|v| matches!(v, Violation::MalformedSchedule { .. }))
    {
        return out;
    }
    // Issue cycles of the vector core, with the configuration each one
    // carries (uniqueness per cycle is already checked above; on a
    // conflicting cycle any one of its configs serves for the gap rule).
    let mut cfg_at: HashMap<i32, VectorConfig> = HashMap::new();
    for n in g.ids() {
        if matches!(g.category(n), Category::VectorOp | Category::MatrixOp) {
            if let Some(c) = g.opcode(n).and_then(|o| o.config()) {
                cfg_at.insert(sched.start[n.idx()], c);
            }
        }
    }
    let mut cycles: Vec<i32> = cfg_at.keys().copied().collect();
    cycles.sort_unstable();
    for w in cycles.windows(2) {
        let (prev, cur) = (w[0], w[1]);
        if cfg_at[&prev] != cfg_at[&cur] {
            let gap = cur - prev;
            let need = spec.reconfig_cost + 1;
            if gap < need {
                out.push(Violation::ReconfigStall {
                    prev_cycle: prev,
                    cycle: cur,
                    gap,
                    need,
                });
            }
        }
    }
    out
}

/// Verify a modulo (software-pipelined) schedule: the same resource rules
/// folded modulo the initiation interval `ii`, so the steady state —
/// where cycle `c` hosts work from every iteration with the same
/// `s mod ii` — respects the machine over *all* kernel iterations, plus
/// intra-iteration precedence on the absolute starts. Memory ports are
/// not checked (the paper's modulo model assumes sufficient memory; the
/// allocator's output is verified separately as a straight-line
/// schedule). Never panics.
pub fn verify_modulo(
    g: &Graph,
    spec: &ArchSpec,
    starts: &HashMap<NodeId, i32>,
    ii: i32,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if let Err(e) = spec.validate() {
        out.push(Violation::MalformedSchedule {
            detail: format!("invalid ArchSpec: {e}"),
        });
        return out;
    }
    if ii < 1 {
        out.push(Violation::MalformedSchedule {
            detail: format!("initiation interval {ii} < 1"),
        });
        return out;
    }
    for n in g.ids() {
        if !starts.contains_key(&n) {
            out.push(Violation::MalformedSchedule {
                detail: format!("node {n:?} has no start in the modulo schedule"),
            });
        }
    }
    if !out.is_empty() {
        return out;
    }
    let start = |n: NodeId| starts[&n];
    let latency = |n: NodeId| spec.latency(&g.node(n).kind);
    let duration = |n: NodeId| spec.duration(&g.node(n).kind);

    for n in g.ids() {
        if start(n) < 0 {
            out.push(Violation::NegativeStart { node: n });
        }
    }

    // Intra-iteration precedence (the kernels are feedback-free DAGs, so
    // there are no loop-carried edges to offset by II).
    for (f, t) in g.edges() {
        if start(f).saturating_add(latency(f)) > start(t) {
            out.push(Violation::Precedence { from: f, to: t });
        }
        if g.category(f).is_op()
            && g.category(t).is_data()
            && start(t) != start(f).saturating_add(latency(f))
        {
            out.push(Violation::DataStart { op: f, data: t });
        }
    }

    // Steady-state lane budget and config uniqueness per window cycle
    // t = s mod ii: iterations k and k+1 co-issue whatever folds together.
    let mut lanes_at: HashMap<i32, u32> = HashMap::new();
    let mut cfg_at: HashMap<i32, VectorConfig> = HashMap::new();
    let mut conflict_at: Vec<i32> = Vec::new();
    let mut core_ops: Vec<NodeId> = g
        .ids()
        .filter(|&n| matches!(g.category(n), Category::VectorOp | Category::MatrixOp))
        .collect();
    core_ops.sort_by_key(|&n| (start(n), n.idx()));
    for n in core_ops {
        let cat = g.category(n);
        for dt in 0..duration(n).max(1) {
            let t = (start(n).saturating_add(dt)).rem_euclid(ii);
            *lanes_at.entry(t).or_default() += lanes_of(spec, cat);
            match g.opcode(n).and_then(|o| o.config()) {
                None => out.push(Violation::MalformedSchedule {
                    detail: format!("node {n:?} on the vector core has no configuration"),
                }),
                Some(c) => match cfg_at.get(&t) {
                    Some(&prev) if prev != c => {
                        if !conflict_at.contains(&t) {
                            conflict_at.push(t);
                            out.push(Violation::ConfigConflict { cycle: t });
                        }
                    }
                    _ => {
                        cfg_at.insert(t, c);
                    }
                },
            }
        }
    }
    let mut windows: Vec<i32> = lanes_at.keys().copied().collect();
    windows.sort_unstable();
    for t in windows {
        let used = lanes_at[&t];
        if used > spec.n_lanes {
            out.push(Violation::LaneOverflow { cycle: t, used });
        }
    }

    // Capacity-limited units with wraparound: an occupancy longer than II
    // collides with the next iteration's own instance of the same op.
    check_units(g, spec, &start, &duration, &|t| t.rem_euclid(ii), &mut out);

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eit_ir::{CoreOp, DataKind, Opcode};

    fn tiny() -> (Graph, Schedule) {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (o, out) = g.add_op_with_output(
            Opcode::vector(CoreOp::Add),
            &[a, b],
            DataKind::Vector,
            "add",
        );
        let mut s = Schedule::new(g.len());
        s.start[o.idx()] = 0;
        s.start[out.idx()] = 7;
        s.slot[a.idx()] = Some(0);
        s.slot[b.idx()] = Some(1);
        s.slot[out.idx()] = Some(2);
        s.makespan = 7;
        (g, s)
    }

    #[test]
    fn legal_schedule_verifies_clean() {
        let (g, s) = tiny();
        let v = verify_schedule(&g, &ArchSpec::eit(), &s, true);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn understated_makespan_flagged() {
        let (g, mut s) = tiny();
        s.makespan = 3;
        let v = verify_schedule(&g, &ArchSpec::eit(), &s, true);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::MalformedSchedule { .. })));
    }

    #[test]
    fn short_vectors_degrade_to_diagnostic() {
        let (g, _) = tiny();
        let s = Schedule::new(1);
        let v = verify_schedule(&g, &ArchSpec::eit(), &s, true);
        assert!(
            matches!(v.as_slice(), [Violation::MalformedSchedule { .. }]),
            "{v:?}"
        );
    }

    #[test]
    fn bank_conflict_found_independently() {
        let (g, mut s) = tiny();
        let ins = g.inputs();
        s.slot[ins[0].idx()] = Some(0);
        s.slot[ins[1].idx()] = Some(16); // same bank, different line
        let v = verify_schedule(&g, &ArchSpec::eit(), &s, true);
        assert!(v.iter().any(|x| matches!(
            x,
            Violation::Memory {
                detail: AccessViolation::BankReadConflict { .. },
                ..
            }
        )));
        // Same page, different lines: also the fig. 8 page rule.
        assert!(v.iter().any(|x| matches!(
            x,
            Violation::Memory {
                detail: AccessViolation::PageLineConflict { .. },
                ..
            }
        )));
    }

    #[test]
    fn modulo_wraparound_catches_folded_lane_overflow() {
        // Five single-lane ops spread over 5 cycles: fine at II=5 (one op
        // per window cycle folds to ≤4 lanes... actually 1 each), but at
        // II=1 all five fold onto window cycle 0 → 5 > 4 lanes.
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let mut starts = HashMap::new();
        starts.insert(a, 0);
        for i in 0..5 {
            let (o, d) = g.add_op_with_output(
                Opcode::vector(CoreOp::Add),
                &[a, a],
                DataKind::Vector,
                &format!("o{i}"),
            );
            starts.insert(o, 7 * (i + 1));
            starts.insert(d, 7 * (i + 1) + 7);
        }
        let spec = ArchSpec::eit();
        assert!(verify_modulo(&g, &spec, &starts, 5)
            .iter()
            .all(|v| !matches!(v, Violation::LaneOverflow { .. })));
        assert!(verify_modulo(&g, &spec, &starts, 1)
            .iter()
            .any(|v| matches!(v, Violation::LaneOverflow { used: 5, .. })));
    }

    /// Two dependent vector ops of different configurations (add → mul),
    /// with data starts pinned to the pipeline write-back. `gap` is the
    /// extra space between the first op's write-back and the second op's
    /// issue.
    fn two_config_chain(spec: &ArchSpec, gap: i32) -> (Graph, Schedule) {
        let mut g = Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (o1, d1) = g.add_op_with_output(
            Opcode::vector(CoreOp::Add),
            &[a, b],
            DataKind::Vector,
            "add",
        );
        let (o2, d2) = g.add_op_with_output(
            Opcode::vector(CoreOp::Mul),
            &[d1, b],
            DataKind::Vector,
            "mul",
        );
        let l = spec.latency(&g.node(o1).kind);
        let mut s = Schedule::new(g.len());
        s.start[o1.idx()] = 0;
        s.start[d1.idx()] = l;
        s.start[o2.idx()] = l + gap;
        s.start[d2.idx()] = 2 * l + gap;
        s.makespan = 2 * l + gap;
        (g, s)
    }

    #[test]
    fn overlapped_schedule_with_stalls_verifies_clean() {
        let spec = ArchSpec::eit();
        // The pipeline latency (7) already exceeds reconfig_cost (1), so
        // a dependence-legal schedule has the stall built in.
        let (g, s) = two_config_chain(&spec, spec.reconfig_cost);
        let v = verify_overlapped(&g, &spec, &s);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn missing_reconfig_stall_is_flagged() {
        // Force the two configurations onto adjacent cycles on a machine
        // whose reconfiguration costs more than one idle cycle.
        let mut spec = ArchSpec::eit();
        spec.reconfig_cost = 10;
        let (g, s) = two_config_chain(&spec, 0);
        let v = verify_overlapped(&g, &spec, &s);
        assert!(
            v.iter().any(|x| matches!(
                x,
                Violation::ReconfigStall {
                    gap: 7,
                    need: 11,
                    ..
                }
            )),
            "{v:?}"
        );
        // With the stall restored the same machine accepts it.
        let (g, s) = two_config_chain(&spec, spec.reconfig_cost);
        let v = verify_overlapped(&g, &spec, &s);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn overlapped_inherits_straight_line_rules() {
        let spec = ArchSpec::eit();
        let (g, mut s) = two_config_chain(&spec, spec.reconfig_cost);
        // Break precedence: consumer op before its operand's write-back.
        let ops: Vec<_> = g.ids().filter(|&n| g.category(n).is_op()).collect();
        s.start[ops[1].idx()] = 1;
        let v = verify_overlapped(&g, &spec, &s);
        assert!(v.iter().any(|x| matches!(x, Violation::Precedence { .. })));
    }

    #[test]
    fn modulo_bad_ii_and_missing_starts_are_diagnostics() {
        let (g, _) = tiny();
        let v = verify_modulo(&g, &ArchSpec::eit(), &HashMap::new(), 0);
        assert!(
            matches!(v.as_slice(), [Violation::MalformedSchedule { .. }]),
            "{v:?}"
        );
        let v = verify_modulo(&g, &ArchSpec::eit(), &HashMap::new(), 4);
        assert!(!v.is_empty());
        assert!(v
            .iter()
            .all(|x| matches!(x, Violation::MalformedSchedule { .. })));
    }
}
