//! The machine model (§1.1 of the paper), lifted into data.
//!
//! One struct gathers every architectural parameter the scheduler and the
//! simulator need: the lane geometry of the CMAC vector core, the paged
//! vector memory, and — new since the parametric-architecture refactor —
//! a data-driven [`UnitTable`] describing the functional units themselves
//! (name, opcode classes served, latency, occupancy, replication count).
//! Nothing downstream assumes the EIT's fixed three-unit mix any more;
//! [`ArchSpec::eit`] is merely the paper's instance of the table, and
//! [`ArchSpec::wide`] a doubled design-space variant. Both render to the
//! versioned XML format in [`crate::xml`] and reload bit-for-bit.

use eit_ir::{LatencyModel, NodeKind, OpClass};

/// One opcode class served by a functional unit: how long it takes, how
/// long it blocks the unit, and how many replicas it consumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitOp {
    /// Which op class this row prices.
    pub class: OpClass,
    /// `l_i`: cycles from issue until the result is usable.
    pub latency: i32,
    /// `d_i`: cycles the op occupies the unit (initiation interval of the
    /// unit for this class).
    pub occupancy: i32,
    /// Replicas of the unit one op consumes; `0` means *all* of them
    /// (e.g. a matrix op takes the whole lane group).
    pub width: u32,
}

/// A replicated functional unit and the opcode classes it serves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuncUnit {
    /// Stable name, used for XML, hashing, and render row labels.
    pub name: String,
    /// Number of identical replicas (lanes for the vector core).
    pub count: u32,
    /// The classes this unit serves, with per-class timing.
    pub ops: Vec<UnitOp>,
}

/// The functional-unit table of one architecture. Unit order is
/// significant: resource constraints are posted in table order, so two
/// specs with the same units in a different order are different machines
/// as far as trace determinism is concerned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitTable {
    pub units: Vec<FuncUnit>,
}

impl UnitTable {
    /// The paper's three-unit mix, priced by a [`LatencyModel`]: an
    /// `n_lanes`-wide vector core (matrix ops take every lane), a
    /// unit-capacity scalar accelerator with split iterative/simple
    /// timing, and a unit-capacity index/merge unit.
    pub fn classic(m: &LatencyModel, n_lanes: u32) -> UnitTable {
        UnitTable {
            units: vec![
                FuncUnit {
                    name: "vector-core".into(),
                    count: n_lanes,
                    ops: vec![
                        UnitOp {
                            class: OpClass::Vector,
                            latency: m.vector_pipeline,
                            occupancy: m.vector_duration,
                            width: 1,
                        },
                        UnitOp {
                            class: OpClass::Matrix,
                            latency: m.vector_pipeline,
                            occupancy: m.vector_duration,
                            width: 0,
                        },
                    ],
                },
                FuncUnit {
                    name: "scalar-accel".into(),
                    count: 1,
                    ops: vec![
                        UnitOp {
                            class: OpClass::ScalarIterative,
                            latency: m.accel_iterative,
                            occupancy: m.accel_duration_iterative,
                            width: 1,
                        },
                        UnitOp {
                            class: OpClass::ScalarSimple,
                            latency: m.accel_simple,
                            occupancy: m.accel_duration_simple,
                            width: 1,
                        },
                    ],
                },
                FuncUnit {
                    name: "index-merge".into(),
                    count: 1,
                    ops: vec![
                        UnitOp {
                            class: OpClass::Index,
                            latency: m.index_merge,
                            occupancy: m.index_merge,
                            width: 1,
                        },
                        UnitOp {
                            class: OpClass::Merge,
                            latency: m.index_merge,
                            occupancy: m.index_merge,
                            width: 1,
                        },
                    ],
                },
            ],
        }
    }

    /// The unit serving `class` (first match) and its pricing row.
    pub fn lookup(&self, class: OpClass) -> Option<(&FuncUnit, &UnitOp)> {
        self.units
            .iter()
            .find_map(|u| u.ops.iter().find(|op| op.class == class).map(|op| (u, op)))
    }

    /// Latency of one op class; `None` if no unit serves it.
    pub fn class_latency(&self, class: OpClass) -> Option<i32> {
        self.lookup(class).map(|(_, op)| op.latency)
    }

    /// Occupancy of one op class; `None` if no unit serves it.
    pub fn class_occupancy(&self, class: OpClass) -> Option<i32> {
        self.lookup(class).map(|(_, op)| op.occupancy)
    }

    /// Replicas one op of `class` consumes, with `width = 0` resolved to
    /// the unit's full replica count.
    pub fn class_width(&self, class: OpClass) -> Option<u32> {
        self.lookup(class)
            .map(|(u, op)| if op.width == 0 { u.count } else { op.width })
    }

    /// `l_i` for a node kind (0 for data nodes and unserved classes —
    /// [`ArchSpec::validate`] guarantees the latter never happens on a
    /// spec the pipeline accepted).
    pub fn latency(&self, kind: &NodeKind) -> i32 {
        OpClass::of(kind)
            .and_then(|c| self.class_latency(c))
            .unwrap_or(0)
    }

    /// `d_i` for a node kind (0 for data nodes and unserved classes).
    pub fn duration(&self, kind: &NodeKind) -> i32 {
        OpClass::of(kind)
            .and_then(|c| self.class_occupancy(c))
            .unwrap_or(0)
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArchSpec {
    /// Parallel processing lanes in PE3 (each four CMACs). A vector op
    /// occupies one lane, a matrix op all of them.
    pub n_lanes: u32,
    /// Memory banks of the vector memory.
    pub n_banks: u32,
    /// Banks per page (pages share one access descriptor).
    pub page_size: u32,
    /// Slots (vector-sized words) per bank — the paper's "memory size"
    /// sweep of Table 1 varies the total slot count.
    pub slots_per_bank: u32,
    /// Vectors readable from the whole memory per cycle (two 4×4
    /// matrices).
    pub max_vector_reads: u32,
    /// Vectors writable per cycle (one 4×4 matrix).
    pub max_vector_writes: u32,
    /// Cycles lost when the vector core's configuration changes between
    /// two consecutive (issuing) instructions.
    pub reconfig_cost: i32,
    /// Optional cap on the usable slot count (the paper's Table 1 sweeps
    /// budgets like 10 that are not multiples of the bank count); slots
    /// `0..cap` of the linear enumeration remain usable.
    pub slot_cap: Option<u32>,
    /// The functional-unit table: which units exist, what they serve, and
    /// at what latency/occupancy. Shared by the scheduler, simulator and
    /// both verifiers.
    pub units: UnitTable,
}

impl ArchSpec {
    /// The EIT instance: 4 lanes, 7-stage pipeline, 16 banks in 4-bank
    /// pages, 8 reads + 4 writes per cycle, 1-cycle reconfiguration.
    pub fn eit() -> Self {
        ArchSpec {
            n_lanes: 4,
            n_banks: 16,
            page_size: 4,
            slots_per_bank: 4, // 64 slots by default; Table 1 sweeps this
            max_vector_reads: 8,
            max_vector_writes: 4,
            reconfig_cost: 1,
            slot_cap: None,
            units: UnitTable::classic(&LatencyModel::default(), 4),
        }
    }

    /// A wider hypothetical machine for design-space studies: double the
    /// EIT everywhere — 8 lanes, 32 banks (still 4-bank pages), 8 slots
    /// per bank (256 slots), double the port budgets.
    pub fn wide() -> Self {
        let mut s = Self::eit();
        s.n_lanes = 8;
        s.n_banks = 32;
        s.slots_per_bank = 8;
        s.max_vector_reads = 16;
        s.max_vector_writes = 8;
        s.units = UnitTable::classic(&LatencyModel::default(), 8);
        s
    }

    /// The builtin presets by name; these are the values `--arch eit` /
    /// `--arch wide` load, and they render to the same XML format as any
    /// custom machine.
    pub fn preset(name: &str) -> Option<ArchSpec> {
        match name {
            "eit" => Some(Self::eit()),
            "wide" => Some(Self::wide()),
            _ => None,
        }
    }

    /// Names accepted by [`ArchSpec::preset`].
    pub fn preset_names() -> &'static [&'static str] {
        &["eit", "wide"]
    }

    /// Same machine with a different total slot budget. `n_slots` need not
    /// be a multiple of the bank count; the scheduler simply caps the
    /// linear slot enumeration at `n_slots`.
    pub fn with_slots(mut self, n_slots: u32) -> Self {
        self.slots_per_bank = n_slots.div_ceil(self.n_banks);
        self.slot_cap = Some(n_slots);
        self
    }

    /// Total number of usable memory slots.
    pub fn n_slots(&self) -> u32 {
        let physical = self.n_banks * self.slots_per_bank;
        self.slot_cap.map_or(physical, |c| c.min(physical))
    }

    /// Number of pages.
    pub fn n_pages(&self) -> u32 {
        self.n_banks / self.page_size
    }

    /// Pipeline depth in cycles (= vector-op latency).
    pub fn pipeline_depth(&self) -> i32 {
        self.units.class_latency(OpClass::Vector).unwrap_or(0)
    }

    /// Lanes a matrix op occupies on this machine (the resolved width of
    /// the matrix class — all lanes on the classic table).
    pub fn matrix_lanes(&self) -> u32 {
        self.units
            .class_width(OpClass::Matrix)
            .unwrap_or(self.n_lanes)
    }

    /// `l_i` for a node kind, from the unit table.
    pub fn latency(&self, kind: &NodeKind) -> i32 {
        self.units.latency(kind)
    }

    /// `d_i` for a node kind, from the unit table.
    pub fn duration(&self, kind: &NodeKind) -> i32 {
        self.units.duration(kind)
    }

    /// Latency function over a graph, for `Graph` analyses.
    pub fn latency_of<'g>(&'g self, g: &'g eit_ir::Graph) -> impl Fn(eit_ir::NodeId) -> i32 + 'g {
        move |id| self.latency(&g.node(id).kind)
    }

    /// Sanity-check the parameter set; returns a description of the first
    /// inconsistency found. Error messages name the XML attribute they
    /// refer to, in the same style as the parsers.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_lanes == 0 {
            return Err("lanes=\"0\": must be positive".into());
        }
        if self.n_banks == 0 {
            return Err("banks=\"0\": must be positive".into());
        }
        if self.page_size == 0 {
            return Err("page_size=\"0\": must be positive".into());
        }
        if self.page_size > self.n_banks {
            return Err(format!(
                "page_size=\"{}\": exceeds the bank count (banks=\"{}\")",
                self.page_size, self.n_banks
            ));
        }
        if !self.n_banks.is_multiple_of(self.page_size) {
            return Err(format!(
                "banks=\"{}\": not a multiple of page_size=\"{}\"",
                self.n_banks, self.page_size
            ));
        }
        if self.slots_per_bank == 0 {
            return Err("slots_per_bank=\"0\": memory needs at least one slot per bank".into());
        }
        if self.max_vector_reads == 0 {
            return Err("max_vector_reads=\"0\": must be positive".into());
        }
        if self.max_vector_writes == 0 {
            return Err("max_vector_writes=\"0\": must be positive".into());
        }
        // Each bank serves at most one read and one write per cycle
        // (§3.4), so a port budget beyond the bank count can never be
        // reached — reject it as a description error.
        if self.max_vector_reads > self.n_banks {
            return Err(format!(
                "max_vector_reads=\"{}\": exceeds what the bank geometry can serve \
                 (one read per bank per cycle, banks=\"{}\")",
                self.max_vector_reads, self.n_banks
            ));
        }
        if self.max_vector_writes > self.n_banks {
            return Err(format!(
                "max_vector_writes=\"{}\": exceeds what the bank geometry can serve \
                 (one write per bank per cycle, banks=\"{}\")",
                self.max_vector_writes, self.n_banks
            ));
        }
        if self.reconfig_cost < 0 {
            return Err(format!(
                "reconfig_cost=\"{}\": cannot be negative",
                self.reconfig_cost
            ));
        }
        if self.slot_cap == Some(0) {
            return Err("slot_cap=\"0\": must be positive when present".into());
        }

        // Unit table.
        if self.units.units.is_empty() {
            return Err("arch: needs at least one <unit>".into());
        }
        let mut seen_names: Vec<&str> = Vec::new();
        let mut seen_classes: Vec<OpClass> = Vec::new();
        for u in &self.units.units {
            if u.name.is_empty() {
                return Err("unit name=\"\": must be non-empty".into());
            }
            if seen_names.contains(&u.name.as_str()) {
                return Err(format!("unit name=\"{}\": duplicate unit name", u.name));
            }
            seen_names.push(&u.name);
            if u.count == 0 {
                return Err(format!(
                    "unit name=\"{}\" count=\"0\": must be positive",
                    u.name
                ));
            }
            if u.ops.is_empty() {
                return Err(format!(
                    "unit name=\"{}\": serves no op class (needs at least one <op>)",
                    u.name
                ));
            }
            for op in &u.ops {
                if seen_classes.contains(&op.class) {
                    return Err(format!(
                        "op class=\"{}\": served by more than one unit",
                        op.class
                    ));
                }
                seen_classes.push(op.class);
                if op.latency < 1 {
                    return Err(format!(
                        "op class=\"{}\" latency=\"{}\": must be at least 1",
                        op.class, op.latency
                    ));
                }
                if op.occupancy < 1 {
                    return Err(format!(
                        "op class=\"{}\" occupancy=\"{}\": must be at least 1",
                        op.class, op.occupancy
                    ));
                }
                if op.width > u.count {
                    return Err(format!(
                        "op class=\"{}\" width=\"{}\": exceeds unit count=\"{}\"",
                        op.class, op.width, u.count
                    ));
                }
            }
        }
        for c in OpClass::ALL {
            if !seen_classes.contains(&c) {
                return Err(format!("arch: no unit serves op class=\"{c}\""));
            }
        }
        // The lane budget and the vector-core replica count are the same
        // physical thing; keep them in lock-step so the memory rules
        // (keyed on n_lanes) and the unit constraints cannot drift apart.
        for c in [OpClass::Vector, OpClass::Matrix] {
            if let Some((u, _)) = self.units.lookup(c) {
                if u.count != self.n_lanes {
                    return Err(format!(
                        "unit name=\"{}\" count=\"{}\": the unit serving class=\"{}\" \
                         must have count equal to lanes=\"{}\"",
                        u.name, u.count, c, self.n_lanes
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Default for ArchSpec {
    fn default() -> Self {
        Self::eit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eit_instance_matches_paper() {
        let a = ArchSpec::eit();
        assert_eq!(a.n_lanes, 4);
        assert_eq!(a.n_banks, 16);
        assert_eq!(a.page_size, 4);
        assert_eq!(a.n_pages(), 4);
        assert_eq!(a.max_vector_reads, 8);
        assert_eq!(a.max_vector_writes, 4);
        assert_eq!(a.pipeline_depth(), 7);
        assert_eq!(a.matrix_lanes(), 4);
        assert_eq!(a.n_slots(), 64);
    }

    #[test]
    fn presets_validate() {
        ArchSpec::eit().validate().unwrap();
        ArchSpec::wide().validate().unwrap();
        assert_eq!(ArchSpec::wide().n_lanes, 8);
        assert_eq!(ArchSpec::wide().n_pages(), 8);
        assert_eq!(ArchSpec::preset("eit"), Some(ArchSpec::eit()));
        assert_eq!(ArchSpec::preset("wide"), Some(ArchSpec::wide()));
        assert_eq!(ArchSpec::preset("weird"), None);
    }

    #[test]
    fn wide_doubles_the_memory_too() {
        // Regression: wide() used to leave slots_per_bank at the EIT
        // default, silently giving the "double everything" machine only
        // 128 slots.
        let w = ArchSpec::wide();
        assert_eq!(w.slots_per_bank, 8);
        assert_eq!(w.n_slots(), 256);
        assert_eq!(w.matrix_lanes(), 8);
        w.validate().unwrap();
    }

    #[test]
    fn invalid_parameter_sets_are_rejected() {
        let mut s = ArchSpec::eit();
        s.page_size = 3; // 16 % 3 != 0
        assert!(s.validate().unwrap_err().starts_with("banks=\"16\""));
        let mut s = ArchSpec::eit();
        s.n_lanes = 0;
        assert!(s.validate().is_err());
        let mut s = ArchSpec::eit();
        s.reconfig_cost = -1;
        assert!(s.validate().is_err());
    }

    #[test]
    fn strengthened_validation_names_the_attribute() {
        let mut s = ArchSpec::eit();
        s.page_size = 32; // > n_banks
        assert!(s.validate().unwrap_err().starts_with("page_size=\"32\""));

        let mut s = ArchSpec::eit();
        s.slot_cap = Some(0);
        assert!(s.validate().unwrap_err().starts_with("slot_cap=\"0\""));

        let mut s = ArchSpec::eit();
        s.max_vector_reads = 17; // 16 banks serve at most 16 reads
        assert!(s
            .validate()
            .unwrap_err()
            .starts_with("max_vector_reads=\"17\""));

        let mut s = ArchSpec::eit();
        s.max_vector_writes = 17;
        assert!(s
            .validate()
            .unwrap_err()
            .starts_with("max_vector_writes=\"17\""));
    }

    #[test]
    fn unit_table_inconsistencies_are_rejected() {
        // Lane count and vector-core replica count must agree.
        let mut s = ArchSpec::eit();
        s.n_lanes = 2;
        assert!(s.validate().unwrap_err().contains("count"));

        // A class served twice is ambiguous.
        let mut s = ArchSpec::eit();
        let extra = s.units.units[1].clone();
        s.units.units.push(FuncUnit {
            name: "accel2".into(),
            ..extra
        });
        assert!(s.validate().unwrap_err().contains("more than one unit"));

        // Every class must be served.
        let mut s = ArchSpec::eit();
        s.units.units.pop();
        assert!(s.validate().unwrap_err().contains("no unit serves"));

        // Width cannot exceed the replica count.
        let mut s = ArchSpec::eit();
        s.units.units[1].ops[0].width = 5;
        assert!(s.validate().unwrap_err().contains("width=\"5\""));
    }

    #[test]
    fn unit_table_lookups_price_the_classic_mix() {
        let s = ArchSpec::eit();
        assert_eq!(s.units.class_latency(OpClass::Vector), Some(7));
        assert_eq!(s.units.class_latency(OpClass::Matrix), Some(7));
        assert_eq!(s.units.class_latency(OpClass::ScalarIterative), Some(8));
        assert_eq!(s.units.class_latency(OpClass::ScalarSimple), Some(2));
        assert_eq!(s.units.class_latency(OpClass::Index), Some(1));
        assert_eq!(s.units.class_occupancy(OpClass::ScalarIterative), Some(2));
        assert_eq!(s.units.class_width(OpClass::Vector), Some(1));
        assert_eq!(s.units.class_width(OpClass::Matrix), Some(4)); // width 0 = all
    }

    #[test]
    fn slot_budget_caps_exactly() {
        let a = ArchSpec::eit().with_slots(33);
        assert_eq!(a.slots_per_bank, 3);
        assert_eq!(a.n_slots(), 33);
        let b = ArchSpec::eit().with_slots(64);
        assert_eq!(b.n_slots(), 64);
        let c = ArchSpec::eit().with_slots(10);
        assert_eq!(c.n_slots(), 10);
    }
}
