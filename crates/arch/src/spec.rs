//! The EIT machine model (§1.1 of the paper).
//!
//! One struct gathers every architectural parameter the scheduler and the
//! simulator need: the four-lane CMAC vector core behind a seven-stage
//! pipeline, the scalar accelerator (divide/√/CORDIC), the index/merge
//! unit, and the 16-bank paged vector memory. Everything is
//! parameterisable; [`ArchSpec::eit`] is the paper's instance.

use eit_ir::LatencyModel;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArchSpec {
    /// Parallel processing lanes in PE3 (each four CMACs). A vector op
    /// occupies one lane, a matrix op all of them.
    pub n_lanes: u32,
    /// Memory banks of the vector memory.
    pub n_banks: u32,
    /// Banks per page (pages share one access descriptor).
    pub page_size: u32,
    /// Slots (vector-sized words) per bank — the paper's "memory size"
    /// sweep of Table 1 varies the total slot count.
    pub slots_per_bank: u32,
    /// Vectors readable from the whole memory per cycle (two 4×4
    /// matrices).
    pub max_vector_reads: u32,
    /// Vectors writable per cycle (one 4×4 matrix).
    pub max_vector_writes: u32,
    /// Cycles lost when the vector core's configuration changes between
    /// two consecutive (issuing) instructions.
    pub reconfig_cost: i32,
    /// Optional cap on the usable slot count (the paper's Table 1 sweeps
    /// budgets like 10 that are not multiples of the bank count); slots
    /// `0..cap` of the linear enumeration remain usable.
    pub slot_cap: Option<u32>,
    /// Latency/duration table shared with the scheduler.
    pub latencies: LatencyModel,
}

impl ArchSpec {
    /// The EIT instance: 4 lanes, 7-stage pipeline, 16 banks in 4-bank
    /// pages, 8 reads + 4 writes per cycle, 1-cycle reconfiguration.
    pub fn eit() -> Self {
        ArchSpec {
            n_lanes: 4,
            n_banks: 16,
            page_size: 4,
            slots_per_bank: 4, // 64 slots by default; Table 1 sweeps this
            max_vector_reads: 8,
            max_vector_writes: 4,
            reconfig_cost: 1,
            slot_cap: None,
            latencies: LatencyModel::default(),
        }
    }

    /// Same machine with a different total slot budget. `n_slots` need not
    /// be a multiple of the bank count; the scheduler simply caps the
    /// linear slot enumeration at `n_slots`.
    pub fn with_slots(mut self, n_slots: u32) -> Self {
        self.slots_per_bank = n_slots.div_ceil(self.n_banks);
        self.slot_cap = Some(n_slots);
        self
    }

    /// Total number of usable memory slots.
    pub fn n_slots(&self) -> u32 {
        let physical = self.n_banks * self.slots_per_bank;
        self.slot_cap.map_or(physical, |c| c.min(physical))
    }

    /// Number of pages.
    pub fn n_pages(&self) -> u32 {
        self.n_banks / self.page_size
    }

    /// Pipeline depth in cycles (= vector-op latency).
    pub fn pipeline_depth(&self) -> i32 {
        self.latencies.vector_pipeline
    }

    /// A wider hypothetical machine for design-space studies: 8 lanes,
    /// 32 banks in 4-bank pages, double the port budgets.
    pub fn wide() -> Self {
        let mut s = Self::eit();
        s.n_lanes = 8;
        s.n_banks = 32;
        s.max_vector_reads = 16;
        s.max_vector_writes = 8;
        s
    }

    /// Sanity-check the parameter set; returns a description of the first
    /// inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_lanes == 0 {
            return Err("n_lanes must be positive".into());
        }
        if self.n_banks == 0 || self.page_size == 0 {
            return Err("banks and page size must be positive".into());
        }
        if !self.n_banks.is_multiple_of(self.page_size) {
            return Err(format!(
                "bank count {} is not a multiple of the page size {}",
                self.n_banks, self.page_size
            ));
        }
        if self.slots_per_bank == 0 {
            return Err("memory needs at least one slot per bank".into());
        }
        if self.max_vector_writes == 0 || self.max_vector_reads == 0 {
            return Err("port budgets must be positive".into());
        }
        if self.reconfig_cost < 0 {
            return Err("reconfiguration cost cannot be negative".into());
        }
        if self.latencies.vector_pipeline < 1 || self.latencies.vector_duration < 1 {
            return Err("the vector pipeline needs positive latency/duration".into());
        }
        Ok(())
    }
}

impl Default for ArchSpec {
    fn default() -> Self {
        Self::eit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eit_instance_matches_paper() {
        let a = ArchSpec::eit();
        assert_eq!(a.n_lanes, 4);
        assert_eq!(a.n_banks, 16);
        assert_eq!(a.page_size, 4);
        assert_eq!(a.n_pages(), 4);
        assert_eq!(a.max_vector_reads, 8);
        assert_eq!(a.max_vector_writes, 4);
        assert_eq!(a.pipeline_depth(), 7);
    }

    #[test]
    fn presets_validate() {
        ArchSpec::eit().validate().unwrap();
        ArchSpec::wide().validate().unwrap();
        assert_eq!(ArchSpec::wide().n_lanes, 8);
        assert_eq!(ArchSpec::wide().n_pages(), 8);
    }

    #[test]
    fn invalid_parameter_sets_are_rejected() {
        let mut s = ArchSpec::eit();
        s.page_size = 3; // 16 % 3 != 0
        assert!(s.validate().is_err());
        let mut s = ArchSpec::eit();
        s.n_lanes = 0;
        assert!(s.validate().is_err());
        let mut s = ArchSpec::eit();
        s.reconfig_cost = -1;
        assert!(s.validate().is_err());
    }

    #[test]
    fn slot_budget_caps_exactly() {
        let a = ArchSpec::eit().with_slots(33);
        assert_eq!(a.slots_per_bank, 3);
        assert_eq!(a.n_slots(), 33);
        let b = ArchSpec::eit().with_slots(64);
        assert_eq!(b.n_slots(), 64);
        let c = ArchSpec::eit().with_slots(10);
        assert_eq!(c.n_slots(), 10);
    }
}
