//! Schedule persistence: a line-oriented text format for storing and
//! reloading schedules (golden-schedule tests, caching solver results,
//! shipping a schedule to a code generator out of process).
//!
//! ```text
//! schedule v1 makespan=22 nodes=8
//! 0 start=0 slot=0
//! 1 start=0 slot=1
//! 2 start=0 slot=-
//! …
//! ```

use crate::schedule::Schedule;
use std::fmt::Write as _;

/// Errors from [`schedule_from_text`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistError {
    BadHeader(String),
    BadLine(String),
    WrongCount { expected: usize, got: usize },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadHeader(l) => write!(f, "bad header: {l}"),
            PersistError::BadLine(l) => write!(f, "bad line: {l}"),
            PersistError::WrongCount { expected, got } => {
                write!(f, "expected {expected} node lines, got {got}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Serialise a schedule to the v1 text format.
pub fn schedule_to_text(s: &Schedule) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "schedule v1 makespan={} nodes={}",
        s.makespan,
        s.start.len()
    );
    for i in 0..s.start.len() {
        let slot = match s.slot[i] {
            Some(x) => x.to_string(),
            None => "-".into(),
        };
        let _ = writeln!(out, "{i} start={} slot={slot}", s.start[i]);
    }
    out
}

/// Parse the v1 text format.
pub fn schedule_from_text(src: &str) -> Result<Schedule, PersistError> {
    let mut lines = src.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| PersistError::BadHeader("<empty>".into()))?;
    let mut makespan = None;
    let mut nodes = None;
    if !header.starts_with("schedule v1") {
        return Err(PersistError::BadHeader(header.into()));
    }
    for tok in header.split_whitespace().skip(2) {
        if let Some(v) = tok.strip_prefix("makespan=") {
            makespan = v.parse::<i32>().ok();
        } else if let Some(v) = tok.strip_prefix("nodes=") {
            nodes = v.parse::<usize>().ok();
        }
    }
    let (Some(makespan), Some(nodes)) = (makespan, nodes) else {
        return Err(PersistError::BadHeader(header.into()));
    };

    let mut sched = Schedule::new(nodes);
    sched.makespan = makespan;
    let mut count = 0;
    for line in lines {
        let mut parts = line.split_whitespace();
        let idx: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| PersistError::BadLine(line.into()))?;
        if idx >= nodes {
            return Err(PersistError::BadLine(line.into()));
        }
        for tok in parts {
            if let Some(v) = tok.strip_prefix("start=") {
                sched.start[idx] = v.parse().map_err(|_| PersistError::BadLine(line.into()))?;
            } else if let Some(v) = tok.strip_prefix("slot=") {
                sched.slot[idx] = if v == "-" {
                    None
                } else {
                    Some(v.parse().map_err(|_| PersistError::BadLine(line.into()))?)
                };
            } else {
                return Err(PersistError::BadLine(line.into()));
            }
        }
        count += 1;
    }
    if count != nodes {
        return Err(PersistError::WrongCount {
            expected: nodes,
            got: count,
        });
    }
    Ok(sched)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        let mut s = Schedule::new(4);
        s.start = vec![0, 3, 7, 14];
        s.slot = vec![Some(0), None, Some(17), None];
        s.makespan = 21;
        s
    }

    #[test]
    fn roundtrip_is_identity() {
        let s = sample();
        let txt = schedule_to_text(&s);
        let back = schedule_from_text(&txt).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn header_errors_detected() {
        assert!(matches!(
            schedule_from_text(""),
            Err(PersistError::BadHeader(_))
        ));
        assert!(matches!(
            schedule_from_text("schedule v2 makespan=1 nodes=0"),
            Err(PersistError::BadHeader(_))
        ));
        assert!(matches!(
            schedule_from_text("schedule v1 nodes=2"),
            Err(PersistError::BadHeader(_))
        ));
    }

    #[test]
    fn line_errors_detected() {
        let txt = "schedule v1 makespan=5 nodes=1\n0 start=zero slot=-\n";
        assert!(matches!(
            schedule_from_text(txt),
            Err(PersistError::BadLine(_))
        ));
        let txt = "schedule v1 makespan=5 nodes=2\n0 start=1 slot=-\n";
        assert!(matches!(
            schedule_from_text(txt),
            Err(PersistError::WrongCount {
                expected: 2,
                got: 1
            })
        ));
        let txt = "schedule v1 makespan=5 nodes=1\n7 start=1 slot=-\n";
        assert!(matches!(
            schedule_from_text(txt),
            Err(PersistError::BadLine(_))
        ));
    }

    #[test]
    fn roundtrip_through_real_scheduler_output() {
        // Persist a real schedule and re-validate the reload.
        use eit_ir::{CoreOp, DataKind, Opcode};
        let mut g = eit_ir::Graph::new("t");
        let a = g.add_data(DataKind::Vector, "a");
        let b = g.add_data(DataKind::Vector, "b");
        let (o, out) =
            g.add_op_with_output(Opcode::vector(CoreOp::Add), &[a, b], DataKind::Vector, "x");
        let mut s = Schedule::new(g.len());
        s.start[o.idx()] = 0;
        s.start[out.idx()] = 7;
        s.slot[a.idx()] = Some(0);
        s.slot[b.idx()] = Some(1);
        s.slot[out.idx()] = Some(2);
        s.makespan = 7;
        let reloaded = schedule_from_text(&schedule_to_text(&s)).unwrap();
        let v = crate::sim::validate_structure(&g, &crate::spec::ArchSpec::eit(), &reloaded);
        assert!(v.is_empty());
    }
}
