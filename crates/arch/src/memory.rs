//! Vector-memory geometry and access legality (§3.4, figs. 7 and 8).
//!
//! The memory is 16 banks of vector-sized *slots*; four consecutive banks
//! form a *page* sharing one access descriptor; the k-th slots of all
//! banks form a *line*. Slots are enumerated linearly: slot 0 = first
//! slot of bank 0, slot 1 = first slot of bank 1, …, slot 16 = second
//! slot of bank 0 (for 16 banks).
//!
//! Per-cycle access rules enforced by [`check_access`]:
//! 1. each bank serves at most one read and one write;
//! 2. at most `max_vector_reads` reads and `max_vector_writes` writes in
//!    total;
//! 3. within a page, all slots accessed in one direction must lie in the
//!    same line (the descriptor addresses one line per page).
//!
//! [`VectorMemory`] additionally *stores* values so the simulator can
//! replay a schedule functionally and catch slot-reuse bugs: a read of a
//! slot returns whatever was last written there.

use crate::spec::ArchSpec;
use eit_ir::sem::Value;
use eit_ir::NodeId;
use std::fmt;

/// Geometry helpers over the linear slot enumeration.
#[derive(Clone, Copy, Debug)]
pub struct Geometry {
    pub n_banks: u32,
    pub page_size: u32,
}

impl Geometry {
    pub fn of(spec: &ArchSpec) -> Self {
        Geometry {
            n_banks: spec.n_banks,
            page_size: spec.page_size,
        }
    }

    #[inline]
    pub fn bank(&self, slot: u32) -> u32 {
        slot % self.n_banks
    }

    #[inline]
    pub fn line(&self, slot: u32) -> u32 {
        slot / self.n_banks
    }

    #[inline]
    pub fn page(&self, slot: u32) -> u32 {
        self.bank(slot) / self.page_size
    }
}

/// A violated access rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccessViolation {
    BankReadConflict { bank: u32, slots: Vec<u32> },
    BankWriteConflict { bank: u32, slots: Vec<u32> },
    TooManyReads { count: usize, max: u32 },
    TooManyWrites { count: usize, max: u32 },
    PageLineConflict { page: u32, lines: Vec<u32> },
}

impl fmt::Display for AccessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessViolation::BankReadConflict { bank, slots } => {
                write!(f, "bank {bank} read more than once: slots {slots:?}")
            }
            AccessViolation::BankWriteConflict { bank, slots } => {
                write!(f, "bank {bank} written more than once: slots {slots:?}")
            }
            AccessViolation::TooManyReads { count, max } => {
                write!(f, "{count} reads exceed the {max}-vector read budget")
            }
            AccessViolation::TooManyWrites { count, max } => {
                write!(f, "{count} writes exceed the {max}-vector write budget")
            }
            AccessViolation::PageLineConflict { page, lines } => {
                write!(f, "page {page} accessed on multiple lines {lines:?}")
            }
        }
    }
}

fn check_direction(geo: &Geometry, slots: &[u32], write: bool, out: &mut Vec<AccessViolation>) {
    // Rule 1: one access per bank per direction.
    let mut by_bank: Vec<Vec<u32>> = vec![Vec::new(); geo.n_banks as usize];
    for &s in slots {
        by_bank[geo.bank(s) as usize].push(s);
    }
    for (bank, ss) in by_bank.iter().enumerate() {
        if ss.len() > 1 {
            out.push(if write {
                AccessViolation::BankWriteConflict {
                    bank: bank as u32,
                    slots: ss.clone(),
                }
            } else {
                AccessViolation::BankReadConflict {
                    bank: bank as u32,
                    slots: ss.clone(),
                }
            });
        }
    }
    // Rule 3: one line per page per direction.
    let n_pages = geo.n_banks / geo.page_size;
    let mut by_page: Vec<Vec<u32>> = vec![Vec::new(); n_pages as usize];
    for &s in slots {
        by_page[geo.page(s) as usize].push(geo.line(s));
    }
    for (page, mut lines) in by_page.into_iter().enumerate() {
        lines.sort_unstable();
        lines.dedup();
        if lines.len() > 1 {
            out.push(AccessViolation::PageLineConflict {
                page: page as u32,
                lines,
            });
        }
    }
}

/// Check one cycle's worth of simultaneous accesses.
pub fn check_access(spec: &ArchSpec, reads: &[u32], writes: &[u32]) -> Vec<AccessViolation> {
    let geo = Geometry::of(spec);
    let mut out = Vec::new();
    if reads.len() > spec.max_vector_reads as usize {
        out.push(AccessViolation::TooManyReads {
            count: reads.len(),
            max: spec.max_vector_reads,
        });
    }
    if writes.len() > spec.max_vector_writes as usize {
        out.push(AccessViolation::TooManyWrites {
            count: writes.len(),
            max: spec.max_vector_writes,
        });
    }
    check_direction(&geo, reads, false, &mut out);
    check_direction(&geo, writes, true, &mut out);
    out
}

/// Can the four given slots (a matrix) be accessed in a single cycle?
/// This is exactly the fig. 8 question.
pub fn matrix_accessible_in_one_cycle(spec: &ArchSpec, slots: &[u32; 4]) -> bool {
    check_access(spec, slots, &[]).is_empty()
}

/// Slot-addressed storage with last-writer-wins semantics, tracking which
/// datum currently occupies each slot so stale reads are detectable.
pub struct VectorMemory {
    slots: Vec<Option<(NodeId, Value)>>,
}

impl VectorMemory {
    pub fn new(n_slots: u32) -> Self {
        VectorMemory {
            slots: vec![None; n_slots as usize],
        }
    }

    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// Store `value` of datum `owner` into `slot` (overwrites).
    pub fn write(&mut self, slot: u32, owner: NodeId, value: Value) {
        self.slots[slot as usize] = Some((owner, value));
    }

    /// Read `slot` expecting datum `owner`; `Err` carries the actual
    /// occupant (or `None` if the slot was never written).
    pub fn read(&self, slot: u32, owner: NodeId) -> Result<Value, Option<NodeId>> {
        match &self.slots[slot as usize] {
            Some((o, v)) if *o == owner => Ok(*v),
            Some((o, _)) => Err(Some(*o)),
            None => Err(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eit_ir::Cplx;

    fn spec3() -> ArchSpec {
        // fig. 8: 16 banks, 4-bank pages, 3 slots per bank.
        let mut s = ArchSpec::eit();
        s.slots_per_bank = 3;
        s
    }

    #[test]
    fn geometry_enumeration() {
        let g = Geometry::of(&ArchSpec::eit());
        assert_eq!(g.bank(0), 0);
        assert_eq!(g.bank(1), 1);
        assert_eq!(g.bank(16), 0);
        assert_eq!(g.line(0), 0);
        assert_eq!(g.line(17), 1);
        assert_eq!(g.page(0), 0);
        assert_eq!(g.page(4), 1);
        assert_eq!(g.page(15), 3);
        assert_eq!(g.page(20), 1);
    }

    /// fig. 8 matrix A: two pairs of vectors share banks → not accessible.
    #[test]
    fn fig8_matrix_a_rejected() {
        let s = spec3();
        // A1..A4 in banks 0,1,0,1 (A1,A3 same bank; A2,A4 same bank).
        let slots = [0, 1, 16, 17];
        assert!(!matrix_accessible_in_one_cycle(&s, &slots));
        let v = check_access(&s, &slots, &[]);
        assert!(v
            .iter()
            .any(|x| matches!(x, AccessViolation::BankReadConflict { .. })
                || matches!(x, AccessViolation::PageLineConflict { .. })));
    }

    /// fig. 8 matrix B: same page but different lines → not accessible.
    #[test]
    fn fig8_matrix_b_rejected() {
        let s = spec3();
        // B1,B2 in page 2 line 0 (banks 8,9); B3 page 3 line 0 (bank 12);
        // B4 page 3 line 1 (bank 13+16 = slot 29): page 3 sees lines {0,1}.
        let slots = [8, 9, 12, 29];
        assert!(!matrix_accessible_in_one_cycle(&s, &slots));
        let v = check_access(&s, &slots, &[]);
        assert!(v
            .iter()
            .any(|x| matches!(x, AccessViolation::PageLineConflict { page: 3, .. })));
    }

    /// fig. 8 matrix C: distinct banks, one line per page → accessible.
    #[test]
    fn fig8_matrix_c_accepted() {
        let s = spec3();
        // C spread over banks 2,3 (page 0, line 2) and banks 6,7
        // (page 1, line 1): slots 2+32, 3+32, 6+16, 7+16.
        let slots = [34, 35, 22, 23];
        assert!(matrix_accessible_in_one_cycle(&s, &slots));
    }

    #[test]
    fn read_budget_enforced() {
        let s = ArchSpec::eit();
        // 9 reads from 9 distinct banks, same line: over the 8-read budget.
        let reads: Vec<u32> = (0..9).collect();
        let v = check_access(&s, &reads, &[]);
        assert!(v
            .iter()
            .any(|x| matches!(x, AccessViolation::TooManyReads { count: 9, .. })));
    }

    #[test]
    fn write_budget_enforced() {
        let s = ArchSpec::eit();
        let writes: Vec<u32> = (0..5).collect();
        let v = check_access(&s, &[], &writes);
        assert!(v
            .iter()
            .any(|x| matches!(x, AccessViolation::TooManyWrites { count: 5, .. })));
    }

    #[test]
    fn reads_and_writes_use_separate_ports() {
        let s = ArchSpec::eit();
        // Same bank read and written in one cycle: legal (1R + 1W ports).
        assert!(check_access(&s, &[0], &[16]).is_empty());
    }

    #[test]
    fn two_matrices_readable_per_cycle() {
        let s = ArchSpec::eit();
        // 8 reads across 8 distinct banks, lines consistent per page.
        let reads: Vec<u32> = (0..8).collect(); // banks 0..8, line 0
        assert!(check_access(&s, &reads, &[]).is_empty());
    }

    #[test]
    fn memory_detects_stale_read() {
        let mut m = VectorMemory::new(4);
        let d1 = NodeId(1);
        let d2 = NodeId(2);
        let v = Value::S(Cplx::ONE);
        m.write(2, d1, v);
        assert_eq!(m.read(2, d1), Ok(v));
        m.write(2, d2, v);
        assert_eq!(m.read(2, d1), Err(Some(d2)));
        assert_eq!(m.read(0, d1), Err(None));
    }
}
